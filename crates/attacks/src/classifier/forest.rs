//! Random forests (bagging + per-split feature subsampling) — the
//! paper's DPIA attack model.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gradsec_tensor::Tensor;

use crate::classifier::tree::{DecisionTree, TreeConfig};
use crate::classifier::{check_training_set, AttackModel};
use crate::Result;

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree depth limit.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Candidate thresholds per feature per split.
    pub threshold_candidates: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            trees: 40,
            max_depth: 6,
            min_leaf: 2,
            threshold_candidates: 12,
        }
    }
}

/// A bagged ensemble of CART trees; scores average leaf probabilities.
#[derive(Debug, Clone)]
pub struct RandomForest {
    cfg: ForestConfig,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Creates an untrained forest.
    pub fn new(cfg: ForestConfig, seed: u64) -> Self {
        RandomForest {
            cfg,
            seed,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl AttackModel for RandomForest {
    fn fit(&mut self, x: &Tensor, labels: &[bool]) -> Result<()> {
        let (n, d) = check_training_set(x, labels)?;
        let features_per_split = (d as f32).sqrt().ceil() as usize;
        self.trees.clear();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for t in 0..self.cfg.trees {
            // Bootstrap sample of rows.
            let rows: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            let tree_cfg = TreeConfig {
                max_depth: self.cfg.max_depth,
                min_leaf: self.cfg.min_leaf,
                features_per_split: Some(features_per_split),
                threshold_candidates: self.cfg.threshold_candidates,
            };
            let mut tree = DecisionTree::new(
                tree_cfg,
                self.seed.wrapping_add(1 + t as u64).wrapping_mul(0x9E37),
            );
            tree.fit_rows(x, labels, &rows)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn scores(&self, x: &Tensor) -> Vec<f32> {
        let n = x.dims().first().copied().unwrap_or(0);
        if self.trees.is_empty() {
            return vec![0.5; n];
        }
        let mut acc = vec![0.0f32; n];
        for tree in &self.trees {
            for (a, s) in acc.iter_mut().zip(tree.scores(x)) {
                *a += s;
            }
        }
        for a in &mut acc {
            *a /= self.trees.len() as f32;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;
    use gradsec_tensor::init;

    fn ring_data(n: usize, seed: u64) -> (Tensor, Vec<bool>) {
        // label = inside the ring 0.25 < r² < 1.0 in 2-D; nonlinear.
        let x = init::uniform(&[n, 2], -1.5, 1.5, seed);
        let labels = (0..n)
            .map(|i| {
                let r2 = x.data()[i * 2].powi(2) + x.data()[i * 2 + 1].powi(2);
                (0.25..1.0).contains(&r2)
            })
            .collect();
        (x, labels)
    }

    #[test]
    fn forest_beats_chance_on_nonlinear_task() {
        let (x, y) = ring_data(600, 1);
        let mut f = RandomForest::new(ForestConfig::default(), 7);
        f.fit(&x, &y).unwrap();
        assert_eq!(f.tree_count(), 40);
        let (xt, yt) = ring_data(300, 2);
        let a = auc(&f.scores(&xt), &yt).unwrap();
        assert!(a > 0.85, "auc {a}");
    }

    #[test]
    fn forest_generalizes_better_than_single_tree() {
        let (x, y) = ring_data(200, 3);
        let (xt, yt) = ring_data(300, 4);
        let mut tree = DecisionTree::new(TreeConfig::default(), 1);
        tree.fit(&x, &y).unwrap();
        let tree_auc = auc(&tree.scores(&xt), &yt).unwrap();
        let mut forest = RandomForest::new(ForestConfig::default(), 1);
        forest.fit(&x, &y).unwrap();
        let forest_auc = auc(&forest.scores(&xt), &yt).unwrap();
        assert!(
            forest_auc >= tree_auc - 0.02,
            "forest {forest_auc} vs tree {tree_auc}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = ring_data(100, 5);
        let mut a = RandomForest::new(ForestConfig::default(), 9);
        a.fit(&x, &y).unwrap();
        let mut b = RandomForest::new(ForestConfig::default(), 9);
        b.fit(&x, &y).unwrap();
        assert_eq!(a.scores(&x), b.scores(&x));
    }

    #[test]
    fn untrained_scores_neutral() {
        let f = RandomForest::new(ForestConfig::default(), 1);
        assert_eq!(f.scores(&Tensor::zeros(&[3, 2])), vec![0.5; 3]);
    }

    #[test]
    fn scores_bounded() {
        let (x, y) = ring_data(100, 6);
        let mut f = RandomForest::new(
            ForestConfig {
                trees: 5,
                ..ForestConfig::default()
            },
            2,
        );
        f.fit(&x, &y).unwrap();
        assert!(f.scores(&x).iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
