//! Logistic regression with internal feature standardisation.

use gradsec_tensor::Tensor;

use crate::classifier::{check_training_set, AttackModel};
use crate::Result;

/// L2-regularised logistic regression trained by full-batch gradient
/// descent on standardised features — the MIA attack model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    lr: f32,
    epochs: usize,
    l2: f32,
    seed: u64,
    weights: Vec<f32>,
    bias: f32,
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl LogisticRegression {
    /// Creates an untrained model.
    pub fn new(lr: f32, epochs: usize, l2: f32, seed: u64) -> Self {
        LogisticRegression {
            lr,
            epochs,
            l2,
            seed,
            weights: Vec::new(),
            bias: 0.0,
            means: Vec::new(),
            stds: Vec::new(),
        }
    }

    /// A sensible default for gradient-feature inputs.
    pub fn default_attack_model(seed: u64) -> Self {
        LogisticRegression::new(0.3, 300, 1e-4, seed)
    }

    fn standardize(&self, row: &[f32]) -> Vec<f32> {
        row.iter()
            .enumerate()
            .map(|(j, &v)| (v - self.means[j]) / self.stds[j])
            .collect()
    }

    fn raw_score(&self, row: &[f32]) -> f32 {
        let z: f32 = self
            .standardize(row)
            .iter()
            .zip(&self.weights)
            .map(|(x, w)| x * w)
            .sum::<f32>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }
}

impl AttackModel for LogisticRegression {
    fn fit(&mut self, x: &Tensor, labels: &[bool]) -> Result<()> {
        let (n, d) = check_training_set(x, labels)?;
        // Column statistics for standardisation.
        self.means = vec![0.0; d];
        self.stds = vec![1.0; d];
        for i in 0..n {
            for j in 0..d {
                self.means[j] += x.data()[i * d + j];
            }
        }
        for m in &mut self.means {
            *m /= n as f32;
        }
        let mut vars = vec![0.0f32; d];
        for i in 0..n {
            let row = &x.data()[i * d..(i + 1) * d];
            for ((v, &xi), &m) in vars.iter_mut().zip(row).zip(&self.means) {
                let c = xi - m;
                *v += c * c;
            }
        }
        for (s, v) in self.stds.iter_mut().zip(&vars) {
            *s = (v / n as f32).sqrt().max(1e-6);
        }
        // Deterministic tiny init (seed kept for API parity with the
        // forest; gradient descent from near-zero is convex anyway).
        let scale = 1e-3 * ((self.seed % 7 + 1) as f32);
        self.weights = (0..d).map(|j| scale * ((j % 3) as f32 - 1.0)).collect();
        self.bias = 0.0;
        // Full-batch gradient descent on the standardised matrix.
        let std_x: Vec<Vec<f32>> = (0..n)
            .map(|i| self.standardize(&x.data()[i * d..(i + 1) * d]))
            .collect();
        for _ in 0..self.epochs {
            let mut gw = vec![0.0f32; d];
            let mut gb = 0.0f32;
            for (row, &label) in std_x.iter().zip(labels) {
                let z: f32 = row
                    .iter()
                    .zip(&self.weights)
                    .map(|(x, w)| x * w)
                    .sum::<f32>()
                    + self.bias;
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - if label { 1.0 } else { 0.0 };
                for (g, &xj) in gw.iter_mut().zip(row) {
                    *g += err * xj;
                }
                gb += err;
            }
            let inv_n = 1.0 / n as f32;
            for (w, g) in self.weights.iter_mut().zip(&gw) {
                *w -= self.lr * (g * inv_n + self.l2 * *w);
            }
            self.bias -= self.lr * gb * inv_n;
        }
        Ok(())
    }

    fn scores(&self, x: &Tensor) -> Vec<f32> {
        let d = self.means.len();
        if d == 0 || x.dims().len() != 2 || x.dims()[1] != d {
            return vec![0.5; x.dims().first().copied().unwrap_or(0)];
        }
        let n = x.dims()[0];
        (0..n)
            .map(|i| self.raw_score(&x.data()[i * d..(i + 1) * d]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;
    use gradsec_tensor::init;

    fn separable(n: usize, seed: u64) -> (Tensor, Vec<bool>) {
        // Positive class has +2 shift in feature 0.
        let mut x = init::uniform(&[n, 4], -1.0, 1.0, seed);
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        for (i, &l) in labels.iter().enumerate() {
            if l {
                x.data_mut()[i * 4] += 2.0;
            }
        }
        (x, labels)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable(60, 1);
        let mut m = LogisticRegression::default_attack_model(1);
        m.fit(&x, &y).unwrap();
        let (xt, yt) = separable(40, 2);
        let s = m.scores(&xt);
        let a = auc(&s, &yt).unwrap();
        assert!(a > 0.95, "auc {a}");
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = separable(30, 3);
        let mut m = LogisticRegression::default_attack_model(1);
        m.fit(&x, &y).unwrap();
        assert!(m.scores(&x).iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn untrained_or_mismatched_scores_are_neutral() {
        let m = LogisticRegression::new(0.1, 10, 0.0, 1);
        let x = Tensor::zeros(&[3, 4]);
        assert_eq!(m.scores(&x), vec![0.5; 3]);
    }

    #[test]
    fn constant_features_do_not_break_standardisation() {
        let mut x = Tensor::zeros(&[10, 2]);
        for i in 0..10 {
            x.data_mut()[i * 2] = if i % 2 == 0 { 1.0 } else { -1.0 };
            // Column 1 stays constant.
        }
        let y: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let mut m = LogisticRegression::default_attack_model(1);
        m.fit(&x, &y).unwrap();
        let a = auc(&m.scores(&x), &y).unwrap();
        assert!(a > 0.99);
    }

    #[test]
    fn rejects_single_class() {
        let x = Tensor::zeros(&[4, 2]);
        let mut m = LogisticRegression::default_attack_model(1);
        assert!(m.fit(&x, &[true; 4]).is_err());
    }
}
