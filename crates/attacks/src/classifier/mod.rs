//! Attack models: binary classifiers trained on gradient features.
//!
//! * [`LogisticRegression`] — the MIA attack model,
//! * [`DecisionTree`] / [`RandomForest`] — the DPIA attack model (the
//!   paper's §8.2 trains "different instances of the attack model
//!   (random forest)").

mod forest;
mod logreg;
mod tree;

pub use forest::{ForestConfig, RandomForest};
pub use logreg::LogisticRegression;
pub use tree::{DecisionTree, TreeConfig};

use gradsec_tensor::Tensor;

use crate::Result;

/// A binary classifier over dense feature matrices.
pub trait AttackModel: Send {
    /// Fits the model on `(x, labels)`, where `x` is `(N, D)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AttackError::InsufficientData`] when the training
    /// set is degenerate (empty, single class).
    fn fit(&mut self, x: &Tensor, labels: &[bool]) -> Result<()>;

    /// Positive-class scores for each row of `x`, in `[0, 1]`.
    fn scores(&self, x: &Tensor) -> Vec<f32>;
}

pub(crate) fn check_training_set(x: &Tensor, labels: &[bool]) -> Result<(usize, usize)> {
    let dims = x.dims();
    if dims.len() != 2 {
        return Err(crate::AttackError::BadConfig {
            reason: format!("training matrix must be rank 2, got {dims:?}"),
        });
    }
    let (n, d) = (dims[0], dims[1]);
    if n != labels.len() {
        return Err(crate::AttackError::InsufficientData {
            reason: format!("{n} rows but {} labels", labels.len()),
        });
    }
    let pos = labels.iter().filter(|&&l| l).count();
    if n == 0 || pos == 0 || pos == n {
        return Err(crate::AttackError::InsufficientData {
            reason: format!("degenerate training set: {pos} positive of {n}"),
        });
    }
    Ok((n, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_rejects_degenerate() {
        let x = Tensor::zeros(&[2, 3]);
        assert!(check_training_set(&x, &[true, true]).is_err());
        assert!(check_training_set(&x, &[false, false]).is_err());
        assert!(check_training_set(&x, &[true]).is_err());
        assert!(check_training_set(&Tensor::zeros(&[2]), &[true, false]).is_err());
        assert_eq!(check_training_set(&x, &[true, false]).unwrap(), (2, 3));
    }

    #[test]
    fn models_are_object_safe() {
        fn take(_m: &mut dyn AttackModel) {}
        take(&mut LogisticRegression::new(0.1, 10, 0.0, 1));
        take(&mut RandomForest::new(ForestConfig::default(), 1));
    }
}
