//! CART decision trees (Gini impurity).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gradsec_tensor::Tensor;

use crate::classifier::{check_training_set, AttackModel};
use crate::Result;

/// Decision-tree hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Features examined per split (`None` = all); random forests pass
    /// `Some(√D)`.
    pub features_per_split: Option<usize>,
    /// Candidate thresholds evaluated per feature (quantile midpoints).
    pub threshold_candidates: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_leaf: 2,
            features_per_split: None,
            threshold_candidates: 16,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prob: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A single CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    cfg: TreeConfig,
    seed: u64,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Creates an untrained tree.
    pub fn new(cfg: TreeConfig, seed: u64) -> Self {
        DecisionTree {
            cfg,
            seed,
            nodes: Vec::new(),
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Fits on a row subset (used by bagging); `rows` indexes into `x`.
    ///
    /// # Errors
    ///
    /// Propagates degenerate-set errors from the public `fit`.
    pub fn fit_rows(&mut self, x: &Tensor, labels: &[bool], rows: &[usize]) -> Result<()> {
        let d = x.dims()[1];
        self.nodes.clear();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rows = rows.to_vec();
        self.build(x, labels, rows, d, 0, &mut rng);
        Ok(())
    }

    fn build(
        &mut self,
        x: &Tensor,
        labels: &[bool],
        rows: Vec<usize>,
        d: usize,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let n = rows.len();
        let pos = rows.iter().filter(|&&i| labels[i]).count();
        let prob = if n == 0 { 0.5 } else { pos as f32 / n as f32 };
        let node_gini = gini(pos, n);
        // Stop: pure node, depth limit or too small to split.
        if depth >= self.cfg.max_depth || n < 2 * self.cfg.min_leaf || node_gini == 0.0 {
            self.nodes.push(Node::Leaf { prob });
            return self.nodes.len() - 1;
        }
        // Candidate features.
        let mut features: Vec<usize> = (0..d).collect();
        if let Some(k) = self.cfg.features_per_split {
            features.shuffle(rng);
            features.truncate(k.max(1).min(d));
        }
        let mut best: Option<(usize, f32, f32)> = None; // (feature, threshold, gain)
        for &f in &features {
            let mut vals: Vec<f32> = rows.iter().map(|&i| x.data()[i * d + f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() - 1).div_ceil(self.cfg.threshold_candidates.max(1));
            let mut k = 0;
            while k + 1 < vals.len() {
                let t = 0.5 * (vals[k] + vals[k + 1]);
                let (lp, ln, rp, rn) = split_counts(x, labels, &rows, d, f, t);
                if ln >= self.cfg.min_leaf && rn >= self.cfg.min_leaf {
                    let w = n as f32;
                    let child = (ln as f32 / w) * gini(lp, ln) + (rn as f32 / w) * gini(rp, rn);
                    let gain = node_gini - child;
                    if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 1e-7) {
                        best = Some((f, t, gain));
                    }
                }
                k += step;
            }
        }
        match best {
            None => {
                self.nodes.push(Node::Leaf { prob });
                self.nodes.len() - 1
            }
            Some((feature, threshold, _)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
                    .into_iter()
                    .partition(|&i| x.data()[i * d + feature] <= threshold);
                // Reserve this node's slot before recursing.
                self.nodes.push(Node::Leaf { prob });
                let slot = self.nodes.len() - 1;
                let left = self.build(x, labels, left_rows, d, depth + 1, rng);
                let right = self.build(x, labels, right_rows, d, depth + 1, rng);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }

    fn score_row(&self, row: &[f32]) -> f32 {
        if self.nodes.is_empty() {
            return 0.5;
        }
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

fn gini(pos: usize, n: usize) -> f32 {
    if n == 0 {
        return 0.0;
    }
    let p = pos as f32 / n as f32;
    2.0 * p * (1.0 - p)
}

fn split_counts(
    x: &Tensor,
    labels: &[bool],
    rows: &[usize],
    d: usize,
    feature: usize,
    threshold: f32,
) -> (usize, usize, usize, usize) {
    let mut lp = 0;
    let mut ln = 0;
    let mut rp = 0;
    let mut rn = 0;
    for &i in rows {
        if x.data()[i * d + feature] <= threshold {
            ln += 1;
            lp += usize::from(labels[i]);
        } else {
            rn += 1;
            rp += usize::from(labels[i]);
        }
    }
    (lp, ln, rp, rn)
}

impl AttackModel for DecisionTree {
    fn fit(&mut self, x: &Tensor, labels: &[bool]) -> Result<()> {
        let (n, _) = check_training_set(x, labels)?;
        let rows: Vec<usize> = (0..n).collect();
        self.fit_rows(x, labels, &rows)
    }

    fn scores(&self, x: &Tensor) -> Vec<f32> {
        let d = x.dims().get(1).copied().unwrap_or(0);
        let n = x.dims().first().copied().unwrap_or(0);
        (0..n)
            .map(|i| self.score_row(&x.data()[i * d..(i + 1) * d]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;
    use gradsec_tensor::init;

    fn axis_aligned(n: usize, seed: u64) -> (Tensor, Vec<bool>) {
        // label = feature1 > 0.3 (nonlinear in no way, but needs a split).
        let x = init::uniform(&[n, 3], 0.0, 1.0, seed);
        let labels = (0..n).map(|i| x.data()[i * 3 + 1] > 0.3).collect();
        (x, labels)
    }

    fn xor_data(n: usize, seed: u64) -> (Tensor, Vec<bool>) {
        // label = (f0 > 0.5) XOR (f1 > 0.5): not linearly separable.
        let x = init::uniform(&[n, 2], 0.0, 1.0, seed);
        let labels = (0..n)
            .map(|i| (x.data()[i * 2] > 0.5) != (x.data()[i * 2 + 1] > 0.5))
            .collect();
        (x, labels)
    }

    #[test]
    fn learns_axis_aligned_rule() {
        let (x, y) = axis_aligned(200, 1);
        let mut t = DecisionTree::new(TreeConfig::default(), 1);
        t.fit(&x, &y).unwrap();
        let (xt, yt) = axis_aligned(100, 2);
        let a = auc(&t.scores(&xt), &yt).unwrap();
        assert!(a > 0.95, "auc {a}");
    }

    #[test]
    fn learns_xor_unlike_linear_models() {
        let (x, y) = xor_data(400, 3);
        let mut t = DecisionTree::new(
            TreeConfig {
                max_depth: 4,
                ..TreeConfig::default()
            },
            1,
        );
        t.fit(&x, &y).unwrap();
        let (xt, yt) = xor_data(200, 4);
        let a = auc(&t.scores(&xt), &yt).unwrap();
        assert!(a > 0.9, "auc {a}");
    }

    #[test]
    fn depth_zero_gives_single_leaf() {
        let (x, y) = axis_aligned(50, 5);
        let mut t = DecisionTree::new(
            TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
            1,
        );
        t.fit(&x, &y).unwrap();
        assert_eq!(t.node_count(), 1);
        let s = t.scores(&x);
        assert!(s.windows(2).all(|w| w[0] == w[1]), "constant prediction");
    }

    #[test]
    fn min_leaf_is_respected() {
        let (x, y) = axis_aligned(20, 6);
        let mut t = DecisionTree::new(
            TreeConfig {
                min_leaf: 10,
                ..TreeConfig::default()
            },
            1,
        );
        t.fit(&x, &y).unwrap();
        // With min_leaf = n/2 at most one split is possible.
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn untrained_scores_neutral() {
        let t = DecisionTree::new(TreeConfig::default(), 1);
        assert_eq!(t.scores(&Tensor::zeros(&[2, 2])), vec![0.5, 0.5]);
    }

    #[test]
    fn rejects_degenerate() {
        let mut t = DecisionTree::new(TreeConfig::default(), 1);
        assert!(t.fit(&Tensor::zeros(&[3, 2]), &[true; 3]).is_err());
    }
}
