//! The attacker's gradient dataset `D_grad`.
//!
//! MIA and DPIA "rely on a dataset of leaked gradients (`D_grad`), built
//! by the attacker. To mimic the layer-level gradient confidentiality
//! offered by a TEE enclave, we simply delete from `D_grad` all the
//! gradient columns relative to a protected layer" (paper §8.1). For
//! dynamic protection, the missing columns vary per row (per FL cycle),
//! and "the incomplete columns of the train set are filled with the mean
//! strategy" (§8.2). This module implements that dataset exactly.

use gradsec_tensor::Tensor;

use crate::features::FeatureLayout;
use crate::{AttackError, Result};

/// A labelled gradient-feature dataset with per-row missingness.
///
/// Deleted cells are stored as `NaN`; [`GradientDataset::impute`]
/// materialises a dense matrix with the mean strategy.
#[derive(Debug, Clone)]
pub struct GradientDataset {
    layout: FeatureLayout,
    rows: Vec<Vec<f32>>,
    labels: Vec<bool>,
}

impl GradientDataset {
    /// Creates an empty dataset over a feature layout.
    pub fn new(layout: FeatureLayout) -> Self {
        GradientDataset {
            layout,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// The feature layout.
    pub fn layout(&self) -> &FeatureLayout {
        &self.layout
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The labels, row-aligned.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Appends one observation with the enclave semantics applied: every
    /// feature column belonging to a layer in `protected_layers` is
    /// deleted (NaN) — unavailable "for an attacker located in the normal
    /// world".
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] when the feature width disagrees
    /// with the layout.
    pub fn push(
        &mut self,
        mut features: Vec<f32>,
        label: bool,
        protected_layers: &[usize],
    ) -> Result<()> {
        if features.len() != self.layout.width() {
            return Err(AttackError::BadConfig {
                reason: format!(
                    "feature width {} disagrees with layout width {}",
                    features.len(),
                    self.layout.width()
                ),
            });
        }
        for &layer in protected_layers {
            if let Some(span) = self.layout.span_of(layer) {
                for cell in &mut features[span.start..span.start + span.len] {
                    *cell = f32::NAN;
                }
            }
        }
        self.rows.push(features);
        self.labels.push(label);
        Ok(())
    }

    /// Fraction of deleted cells across the dataset.
    pub fn missing_fraction(&self) -> f32 {
        let total: usize = self.rows.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let missing: usize = self
            .rows
            .iter()
            .map(|r| r.iter().filter(|x| x.is_nan()).count())
            .sum();
        missing as f32 / total as f32
    }

    /// Column means ignoring missing cells (0 for all-missing columns).
    pub fn column_means(&self) -> Vec<f32> {
        let d = self.layout.width();
        let mut sums = vec![0.0f64; d];
        let mut counts = vec![0usize; d];
        for row in &self.rows {
            for (j, &v) in row.iter().enumerate() {
                if !v.is_nan() {
                    sums[j] += v as f64;
                    counts[j] += 1;
                }
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { (s / c as f64) as f32 })
            .collect()
    }

    /// Materialises the dense `(N, D)` feature matrix using the mean
    /// strategy for missing cells, with the means taken from `means`
    /// (train-set means are reused for validation/test imputation, as a
    /// real attacker would).
    pub fn impute_with(&self, means: &[f32]) -> Tensor {
        let d = self.layout.width();
        let mut out = Tensor::zeros(&[self.rows.len(), d]);
        for (i, row) in self.rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                out.data_mut()[i * d + j] = if v.is_nan() {
                    means.get(j).copied().unwrap_or(0.0)
                } else {
                    v
                };
            }
        }
        out
    }

    /// Self-imputation: dense matrix using this dataset's own column
    /// means.
    pub fn impute(&self) -> Tensor {
        self.impute_with(&self.column_means())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::reduce_snapshot;
    use gradsec_nn::gradient::{GradientSnapshot, LayerGradient};

    fn layout_and_features() -> (FeatureLayout, Vec<f32>) {
        let snap = GradientSnapshot::new(vec![
            LayerGradient {
                layer: 0,
                dw: Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(),
                db: Tensor::zeros(&[1]),
            },
            LayerGradient {
                layer: 1,
                dw: Tensor::from_vec(vec![5.0], &[1]).unwrap(),
                db: Tensor::zeros(&[1]),
            },
        ]);
        let (f, l) = reduce_snapshot(&snap, 2);
        (l, f)
    }

    #[test]
    fn push_and_delete_columns() {
        let (layout, feats) = layout_and_features();
        let mut ds = GradientDataset::new(layout.clone());
        ds.push(feats.clone(), true, &[]).unwrap();
        ds.push(feats.clone(), false, &[0]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.labels(), &[true, false]);
        // Row 1 has layer-0 columns NaN.
        let span = layout.span_of(0).unwrap();
        assert!(ds.rows[1][span.start..span.start + span.len]
            .iter()
            .all(|x| x.is_nan()));
        assert!(ds.rows[0].iter().all(|x| !x.is_nan()));
        assert!(ds.missing_fraction() > 0.0);
    }

    #[test]
    fn impute_restores_column_means() {
        let (layout, feats) = layout_and_features();
        let mut ds = GradientDataset::new(layout.clone());
        ds.push(feats.clone(), true, &[]).unwrap();
        ds.push(feats.clone(), false, &[0]).unwrap();
        let dense = ds.impute();
        // Deleted cells were filled with the column mean, which equals the
        // only surviving value.
        let span = layout.span_of(0).unwrap();
        #[allow(clippy::needless_range_loop)]
        for j in span.start..span.start + span.len {
            assert_eq!(dense.get(&[1, j]).unwrap(), feats[j]);
        }
    }

    #[test]
    fn external_means_used_for_test_rows() {
        let (layout, feats) = layout_and_features();
        let mut ds = GradientDataset::new(layout.clone());
        ds.push(feats, true, &[0, 1]).unwrap(); // everything deleted
        let means = vec![7.0; layout.width()];
        let dense = ds.impute_with(&means);
        assert!(dense.data().iter().all(|&v| v == 7.0));
        // Self-imputation of the all-missing dataset yields zeros.
        let self_dense = ds.impute();
        assert!(self_dense.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn width_mismatch_rejected() {
        let (layout, _) = layout_and_features();
        let mut ds = GradientDataset::new(layout);
        assert!(ds.push(vec![1.0, 2.0], true, &[]).is_err());
    }

    #[test]
    fn protecting_unknown_layer_is_harmless() {
        let (layout, feats) = layout_and_features();
        let mut ds = GradientDataset::new(layout);
        ds.push(feats, true, &[99]).unwrap();
        assert_eq!(ds.missing_fraction(), 0.0);
    }
}
