//! Data-Property Inference Attack (DPIA) — Melis et al. (paper reference
//! [35]).
//!
//! DPIA is the paper's *long-term* attack: across many FL cycles the
//! attacker differences consecutive global-model snapshots to obtain the
//! aggregated gradients, and trains a binary classifier (a random forest,
//! §8.2) to detect whether the victim's batches that cycle contained a
//! private property. The attacker's training rows come from gradients it
//! simulates on its own auxiliary data (`b_adv_prop`, `b_adv_nonprop`)
//! against snapshots of the evolving model (§3.2).
//!
//! Enclave semantics follow §8.1: a protected layer's columns are deleted
//! from `D_grad` *for the cycles it was protected in* — under dynamic
//! GradSec the missing columns move with the window — and the attacker
//! fills holes with the mean strategy (§8.2).

use gradsec_nn::gradient::GradientSnapshot;

use crate::classifier::{AttackModel, ForestConfig, RandomForest};
use crate::dgrad::GradientDataset;
use crate::features::reduce_snapshot;
use crate::metrics::auc;
use crate::{AttackError, Result};

/// One observed (or attacker-simulated) cycle: aggregated gradients, the
/// property ground truth and the layers that were enclave-protected that
/// cycle.
#[derive(Debug, Clone)]
pub struct DpiaObservation {
    /// Aggregated gradient snapshot for the cycle.
    pub snapshot: GradientSnapshot,
    /// Whether the victim's data that cycle contained the property.
    pub has_property: bool,
    /// Layers protected during the cycle (their columns are deleted).
    pub protected: Vec<usize>,
}

/// DPIA configuration.
#[derive(Debug, Clone, Copy)]
pub struct DpiaConfig {
    /// Raw gradient values sampled per layer in the feature reduction.
    pub raw_per_layer: usize,
    /// Random-forest hyper-parameters.
    pub forest: ForestConfig,
    /// Normalise each row's per-layer feature block to unit L2 norm.
    ///
    /// Aggregated gradients shrink as FL training converges; the property
    /// signal lives in the gradient *direction*, so scale-invariant
    /// features generalise across the snapshots the attack spans (the
    /// long-term aspect of DPIA).
    pub normalize_per_layer: bool,
    /// Seed for the forest.
    pub seed: u64,
}

impl Default for DpiaConfig {
    fn default() -> Self {
        DpiaConfig {
            raw_per_layer: 16,
            forest: ForestConfig::default(),
            normalize_per_layer: true,
            seed: 0,
        }
    }
}

/// Normalises each layer block of a feature row to unit L2 norm.
fn normalize_blocks(features: &mut [f32], layout: &crate::features::FeatureLayout) {
    for span in layout.spans() {
        let block = &mut features[span.start..span.start + span.len];
        let norm: f32 = block.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for x in block.iter_mut() {
                *x /= norm;
            }
        }
    }
}

/// Outcome of a DPIA run.
#[derive(Debug, Clone, Copy)]
pub struct DpiaOutcome {
    /// Attack AUC on the test cycles.
    pub auc: f32,
    /// Fraction of deleted cells in the attacker's training matrix.
    pub train_missing_fraction: f32,
}

/// Trains the DPIA attack model on `train` observations and evaluates it
/// on `test`.
///
/// # Errors
///
/// Returns [`AttackError::InsufficientData`] for empty inputs or
/// single-class label sets.
pub fn run_dpia(
    train: &[DpiaObservation],
    test: &[DpiaObservation],
    cfg: &DpiaConfig,
) -> Result<DpiaOutcome> {
    let first = train.first().ok_or_else(|| AttackError::InsufficientData {
        reason: "no training observations".to_owned(),
    })?;
    if test.is_empty() {
        return Err(AttackError::InsufficientData {
            reason: "no test observations".to_owned(),
        });
    }
    let (_, layout) = reduce_snapshot(&first.snapshot, cfg.raw_per_layer);
    let mut train_ds = GradientDataset::new(layout.clone());
    for obs in train {
        let (mut f, _) = reduce_snapshot(&obs.snapshot, cfg.raw_per_layer);
        if cfg.normalize_per_layer {
            normalize_blocks(&mut f, &layout);
        }
        train_ds.push(f, obs.has_property, &obs.protected)?;
    }
    let mut test_ds = GradientDataset::new(layout.clone());
    for obs in test {
        let (mut f, _) = reduce_snapshot(&obs.snapshot, cfg.raw_per_layer);
        if cfg.normalize_per_layer {
            normalize_blocks(&mut f, &layout);
        }
        test_ds.push(f, obs.has_property, &obs.protected)?;
    }
    let means = train_ds.column_means();
    let x_train = train_ds.impute_with(&means);
    let x_test = test_ds.impute_with(&means);
    let mut forest = RandomForest::new(cfg.forest, cfg.seed);
    forest.fit(&x_train, train_ds.labels())?;
    let scores = forest.scores(&x_test);
    let a = auc(&scores, test_ds.labels())?;
    Ok(DpiaOutcome {
        auc: a,
        train_missing_fraction: train_ds.missing_fraction(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_nn::gradient::LayerGradient;
    use gradsec_tensor::{init, Tensor};

    /// Builds synthetic observations where the property shifts layer `hot`
    /// gradients by +bias.
    fn observations(
        n: usize,
        hot: usize,
        bias: f32,
        protected: Vec<usize>,
        seed: u64,
    ) -> Vec<DpiaObservation> {
        (0..n)
            .map(|i| {
                let has_property = i % 2 == 0;
                let layers = (0..3)
                    .map(|l| {
                        let mut dw = init::uniform(&[20], -1.0, 1.0, seed + (i * 3 + l) as u64);
                        if l == hot && has_property {
                            dw.map_in_place(|x| x + bias);
                        }
                        LayerGradient {
                            layer: l,
                            dw,
                            db: Tensor::zeros(&[2]),
                        }
                    })
                    .collect();
                DpiaObservation {
                    snapshot: GradientSnapshot::new(layers),
                    has_property,
                    protected: protected.clone(),
                }
            })
            .collect()
    }

    #[test]
    fn detects_property_in_unprotected_gradients() {
        let train = observations(60, 1, 0.8, vec![], 1);
        let test = observations(30, 1, 0.8, vec![], 1000);
        let out = run_dpia(&train, &test, &DpiaConfig::default()).unwrap();
        assert!(out.auc > 0.9, "auc {}", out.auc);
        assert_eq!(out.train_missing_fraction, 0.0);
    }

    #[test]
    fn protecting_the_hot_layer_degrades_the_attack() {
        let unprotected_test = observations(30, 1, 0.8, vec![], 1000);
        let train_protected = observations(60, 1, 0.8, vec![1], 1);
        let test_protected = observations(30, 1, 0.8, vec![1], 1000);
        let open = run_dpia(
            &observations(60, 1, 0.8, vec![], 1),
            &unprotected_test,
            &DpiaConfig::default(),
        )
        .unwrap();
        let shut = run_dpia(&train_protected, &test_protected, &DpiaConfig::default()).unwrap();
        assert!(
            shut.auc < open.auc,
            "protected auc {} should fall below open auc {}",
            shut.auc,
            open.auc
        );
        assert!(shut.train_missing_fraction > 0.0);
    }

    #[test]
    fn moving_protection_differs_from_static() {
        // Dynamic-style observations: protection alternates across cycles.
        let mut train = observations(60, 1, 0.8, vec![], 1);
        for (i, obs) in train.iter_mut().enumerate() {
            obs.protected = vec![i % 3];
        }
        let mut test = observations(30, 1, 0.8, vec![], 1000);
        for (i, obs) in test.iter_mut().enumerate() {
            obs.protected = vec![i % 3];
        }
        let out = run_dpia(&train, &test, &DpiaConfig::default()).unwrap();
        assert!(out.auc.is_finite());
        assert!(out.train_missing_fraction > 0.2);
    }

    #[test]
    fn empty_inputs_rejected() {
        let obs = observations(10, 0, 0.5, vec![], 5);
        assert!(run_dpia(&[], &obs, &DpiaConfig::default()).is_err());
        assert!(run_dpia(&obs, &[], &DpiaConfig::default()).is_err());
    }

    #[test]
    fn single_class_rejected() {
        let mut obs = observations(10, 0, 0.5, vec![], 5);
        for o in &mut obs {
            o.has_property = true;
        }
        let test = observations(10, 0, 0.5, vec![], 6);
        assert!(run_dpia(&obs, &test, &DpiaConfig::default()).is_err());
    }
}
