//! Data-Reconstruction Inference Attack (DRIA) — deep leakage from
//! gradients (Zhu et al., paper reference [59]).
//!
//! The attacker observes the victim's gradients `g*` (restricted to the
//! layers *not* protected by the enclave), knows the global model weights
//! `θ` (public in FL) and the sample's label, and minimises the gradient
//! matching objective
//!
//! ```text
//! D(x) = Σ_{l visible} ‖ dW_l(x; θ) − dW*_l ‖²
//! ```
//!
//! over a dummy input `x`, using Adam or L-BFGS (paper §3.2 / §8.1).
//!
//! ## Differentiating through the gradients
//!
//! `∇_x D` requires second-order information. With `c = g(x) − g*`
//! (zeroed on protected layers),
//!
//! ```text
//! ∇_x D = 2 · ∇_x ⟨g(x), c⟩          (c held constant)
//!        = 2 · d/dε [ ∇_x Loss(x; θ + ε·c) ]  at ε = 0,
//! ```
//!
//! which this implementation evaluates by central differences over the
//! *parameters* (two extra forward/backward passes at `θ ± ε·c`) —
//! Pearlmutter's Hessian-vector trick in its finite-difference form. Each
//! DRIA iteration therefore costs three forward/backward passes, no
//! higher-order autograd needed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gradsec_nn::gradient::GradientSnapshot;
use gradsec_nn::model::ModelWeights;
use gradsec_nn::optim::lbfgs::{minimize, LbfgsConfig};
use gradsec_nn::optim::{Adam, Optimizer};
use gradsec_nn::Sequential;
use gradsec_tensor::Tensor;

use crate::metrics::image_loss;
use crate::{AttackError, Result};

/// Which optimiser drives the gradient matching (paper §3.2: "Adam,
/// LBFGS, etc.").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriaOptimizer {
    /// Adam with the given learning rate.
    Adam {
        /// Step size.
        lr: f32,
    },
    /// L-BFGS (the reference implementation's choice, §8.1).
    Lbfgs,
}

/// DRIA configuration.
#[derive(Debug, Clone, Copy)]
pub struct DriaConfig {
    /// Optimisation iterations.
    pub iterations: usize,
    /// The optimiser.
    pub optimizer: DriaOptimizer,
    /// Relative step for the parameter-space central difference.
    pub hvp_epsilon: f32,
    /// Seed for the dummy-input initialisation.
    pub seed: u64,
    /// Clamp the dummy input into `[0, 1]` after each step (images live
    /// there).
    pub clamp: bool,
}

impl Default for DriaConfig {
    fn default() -> Self {
        DriaConfig {
            iterations: 120,
            optimizer: DriaOptimizer::Lbfgs,
            hvp_epsilon: 3e-3,
            seed: 0,
            clamp: true,
        }
    }
}

/// Outcome of a DRIA run.
#[derive(Debug, Clone)]
pub struct DriaOutcome {
    /// The attacker's reconstruction.
    pub reconstructed: Tensor,
    /// Euclidean distance to the true input — the paper's ImageLoss.
    pub image_loss: f32,
    /// Final gradient-matching objective value.
    pub final_objective: f32,
}

/// The victim-side step: computes the gradients the attacker can observe.
///
/// Runs one forward/backward on `(target, label)` and returns the full
/// snapshot; the caller masks it with the protected set.
///
/// # Errors
///
/// Propagates model errors.
pub fn victim_gradients(
    model: &mut Sequential,
    target: &Tensor,
    label: &Tensor,
) -> Result<GradientSnapshot> {
    let (_, snap) = model.forward_backward(target, label)?;
    Ok(snap)
}

/// Per-layer weights `1/(‖g*_l‖² + δ)` that balance the matching
/// objective across layers. Without this the dense head's large gradients
/// dominate and the optimiser ignores the convolutional gradients that
/// actually pin down the pixels (the same normalisation gradient-inversion
/// attacks use in the literature).
fn layer_weights(leaked: &GradientSnapshot, protected: &[usize]) -> Vec<f32> {
    leaked
        .iter()
        .map(|g| {
            if protected.contains(&g.layer) {
                0.0
            } else {
                1.0 / (g.dw.norm_sq() + g.db.norm_sq() + 1e-12)
            }
        })
        .collect()
}

/// Gradient-matching distance restricted to visible layers (per-layer
/// normalised), plus the weighted difference snapshot — which is exactly
/// `∂D/∂g`, the direction the HVP trick perturbs along.
fn visible_diff(
    current: &GradientSnapshot,
    leaked: &GradientSnapshot,
    weights: &[f32],
) -> Result<(f32, GradientSnapshot)> {
    let mut layers = Vec::new();
    let mut dist = 0.0f32;
    for ((a, b), &w) in current.iter().zip(leaked.iter()).zip(weights) {
        if a.layer != b.layer || a.dw.dims() != b.dw.dims() {
            return Err(AttackError::BadConfig {
                reason: "victim/attacker gradient snapshots disagree".to_owned(),
            });
        }
        let (dw, db) = if w == 0.0 {
            (Tensor::zeros(a.dw.dims()), Tensor::zeros(a.db.dims()))
        } else {
            (
                a.dw.zip_with(&b.dw, |x, y| x - y)?,
                a.db.zip_with(&b.db, |x, y| x - y)?,
            )
        };
        dist += w * (dw.norm_sq() + db.norm_sq());
        // c_l = w_l · (g_l − g*_l) = ∂D/∂g_l (up to the global factor 2).
        layers.push(gradsec_nn::gradient::LayerGradient {
            layer: a.layer,
            dw: dw.map(|v| v * w),
            db: db.map(|v| v * w),
        });
    }
    Ok((dist, GradientSnapshot::new(layers)))
}

/// Applies `θ ← θ₀ + α·c` where `c` is a gradient-shaped perturbation.
fn perturbed_weights(base: &ModelWeights, c: &GradientSnapshot, alpha: f32) -> ModelWeights {
    let mut layers = Vec::with_capacity(base.num_layers());
    for (lw, g) in base.iter().zip(c.iter()) {
        let w = lw.w.zip_with(&g.dw, |w, d| w + alpha * d).expect("shapes");
        let b = lw.b.zip_with(&g.db, |b, d| b + alpha * d).expect("shapes");
        layers.push(gradsec_nn::model::LayerWeights { w, b });
    }
    ModelWeights::new(layers)
}

/// Evaluates `(D(x), ∇_x D(x))` for the gradient-matching objective.
#[allow(clippy::too_many_arguments)]
fn objective(
    model: &mut Sequential,
    base_weights: &ModelWeights,
    weight_norm: f32,
    x: &Tensor,
    label: &Tensor,
    leaked: &GradientSnapshot,
    layer_w: &[f32],
    eps_rel: f32,
) -> Result<(f32, Tensor)> {
    // 1. Gradients of the dummy input under the unperturbed model.
    model.set_weights(base_weights)?;
    let (_, g_x) = model.forward_backward(x, label)?;
    let (dist_sq, c) = visible_diff(&g_x, leaked, layer_w)?;
    if dist_sq == 0.0 {
        // Perfect match (or nothing visible): zero gradient.
        return Ok((0.0, Tensor::zeros(x.dims())));
    }
    // 2. Central difference over parameters: ∇_x⟨g(x), c⟩ ≈
    //    (∇_x Loss(x; θ+εc) − ∇_x Loss(x; θ−εc)) / 2ε.
    // Perturbation sized relative to the parameter scale: f32 arithmetic
    // needs ‖ε·c‖ well above rounding noise yet small against ‖θ‖.
    let c_norm: f32 = c
        .iter()
        .map(|g| g.dw.norm_sq() + g.db.norm_sq())
        .sum::<f32>()
        .sqrt();
    let eps = eps_rel * (1.0 + weight_norm) / c_norm.max(1e-12);
    let up = perturbed_weights(base_weights, &c, eps);
    model.set_weights(&up)?;
    let logits = model.forward(x)?;
    let (_, delta) = model.loss().evaluate(&logits, label)?;
    let din_up = model.backward(&delta)?;
    let down = perturbed_weights(base_weights, &c, -eps);
    model.set_weights(&down)?;
    let logits = model.forward(x)?;
    let (_, delta) = model.loss().evaluate(&logits, label)?;
    let din_down = model.backward(&delta)?;
    let grad_x = din_up.zip_with(&din_down, |u, d| (u - d) / eps)?;
    Ok((dist_sq, grad_x))
}

/// Runs DRIA against a model state.
///
/// * `model` — architecture carrying the *global* weights the attacker
///   knows (the run restores them on exit),
/// * `target`/`label` — the victim's `(1, C, H, W)` sample (used only to
///   produce the leaked gradients and to score the reconstruction),
/// * `protected` — layer indices sheltered by GradSec this cycle.
///
/// # Errors
///
/// Returns [`AttackError::BadConfig`] for non-singleton batches and
/// propagates model failures.
pub fn run_dria(
    model: &mut Sequential,
    target: &Tensor,
    label: &Tensor,
    protected: &[usize],
    cfg: &DriaConfig,
) -> Result<DriaOutcome> {
    if target.dims().first() != Some(&1) {
        return Err(AttackError::BadConfig {
            reason: format!(
                "dria reconstructs one sample at a time, got batch {:?}",
                target.dims()
            ),
        });
    }
    let base_weights = model.weights();
    let weight_norm: f32 = base_weights
        .iter()
        .map(|lw| lw.w.norm_sq() + lw.b.norm_sq())
        .sum::<f32>()
        .sqrt();
    // The leak: the victim trains on the target; the attacker scrapes the
    // visible layer gradients.
    let leaked = victim_gradients(model, target, label)?;
    let layer_w = layer_weights(&leaked, protected);
    // Dummy input initialisation: mid-grey plus small noise converges
    // faster than uniform noise (standard DLG practice).
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut x = Tensor::zeros(target.dims());
    for v in x.data_mut() {
        *v = 0.5 + rng.random_range(-0.1..0.1);
    }
    let mut final_obj = f32::INFINITY;
    match cfg.optimizer {
        DriaOptimizer::Adam { lr } => {
            let mut adam = Adam::new(lr);
            for _ in 0..cfg.iterations {
                let (obj, grad) = objective(
                    model,
                    &base_weights,
                    weight_norm,
                    &x,
                    label,
                    &leaked,
                    &layer_w,
                    cfg.hvp_epsilon,
                )?;
                final_obj = obj;
                // D(x) = dist²; ∇D = 2·∇⟨g,c⟩.
                let scaled = grad.map(|g| 2.0 * g);
                adam.update(0, &mut x, &scaled);
                if cfg.clamp {
                    x.map_in_place(|v| v.clamp(0.0, 1.0));
                }
            }
        }
        DriaOptimizer::Lbfgs => {
            // L-BFGS needs interior mutability over the model.
            let model_cell = std::cell::RefCell::new(model);
            let f = |xt: &Tensor| -> (f32, Tensor) {
                let mut m = model_cell.borrow_mut();
                match objective(
                    &mut m,
                    &base_weights,
                    weight_norm,
                    xt,
                    label,
                    &leaked,
                    &layer_w,
                    cfg.hvp_epsilon,
                ) {
                    Ok((obj, grad)) => (obj, grad.map(|g| 2.0 * g)),
                    Err(_) => (f32::INFINITY, Tensor::zeros(xt.dims())),
                }
            };
            let lcfg = LbfgsConfig {
                max_iters: cfg.iterations,
                history: 8,
                grad_tol: 1e-7,
                ..LbfgsConfig::default()
            };
            let res = minimize(f, &x, &lcfg)?;
            x = res.x;
            final_obj = res.value;
            if cfg.clamp {
                x.map_in_place(|v| v.clamp(0.0, 1.0));
            }
            let m = model_cell.into_inner();
            m.set_weights(&base_weights)?;
            let loss = image_loss(&x, target)?;
            return Ok(DriaOutcome {
                reconstructed: x,
                image_loss: loss,
                final_objective: final_obj,
            });
        }
    }
    model.set_weights(&base_weights)?;
    let loss = image_loss(&x, target)?;
    Ok(DriaOutcome {
        reconstructed: x,
        image_loss: loss,
        final_objective: final_obj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_data::{one_hot, Dataset, SyntheticCifar100};
    use gradsec_nn::zoo;

    fn small_conv_model(seed: u64) -> Sequential {
        use gradsec_nn::activation::Activation;
        use gradsec_nn::layer::{Conv2d, Dense};
        use gradsec_nn::loss::Loss;
        let mut m = Sequential::new(Loss::CategoricalCrossEntropy);
        m.push(Box::new(
            Conv2d::new(1, 8, 8, 4, 3, 1, 1, Activation::Sigmoid, false, seed).unwrap(),
        ));
        m.push(Box::new(
            Dense::new(4 * 64, 4, Activation::Linear, seed + 1).unwrap(),
        ));
        m
    }

    fn tiny_target(seed: u64) -> (Tensor, Tensor) {
        let x = gradsec_tensor::init::uniform(&[1, 1, 8, 8], 0.0, 1.0, seed);
        let y = one_hot(&[1], 4);
        (x, y)
    }

    #[test]
    fn unprotected_reconstruction_beats_protected() {
        let mut model = small_conv_model(3);
        let (target, label) = tiny_target(5);
        let cfg = DriaConfig {
            iterations: 80,
            seed: 9,
            ..DriaConfig::default()
        };
        let open = run_dria(&mut model, &target, &label, &[], &cfg).unwrap();
        let shielded = run_dria(&mut model, &target, &label, &[0, 1], &cfg).unwrap();
        assert!(
            open.image_loss < shielded.image_loss,
            "open {} !< shielded {}",
            open.image_loss,
            shielded.image_loss
        );
        // With everything protected the objective is identically zero and
        // the dummy never moves from noise.
        assert_eq!(shielded.final_objective, 0.0);
    }

    #[test]
    fn adam_variant_also_reconstructs() {
        let mut model = small_conv_model(4);
        let (target, label) = tiny_target(6);
        let cfg = DriaConfig {
            iterations: 150,
            optimizer: DriaOptimizer::Adam { lr: 0.08 },
            seed: 2,
            ..DriaConfig::default()
        };
        let open = run_dria(&mut model, &target, &label, &[], &cfg).unwrap();
        // Random dummy in [0,1] vs target in [0,1] on 64 pixels has
        // expected distance ~sqrt(64/6) ≈ 3.3; reconstruction should do
        // clearly better.
        assert!(open.image_loss < 2.0, "image loss {}", open.image_loss);
    }

    #[test]
    fn model_weights_are_restored() {
        let mut model = small_conv_model(7);
        let before = model.weights();
        let (target, label) = tiny_target(8);
        let cfg = DriaConfig {
            iterations: 5,
            ..DriaConfig::default()
        };
        let _ = run_dria(&mut model, &target, &label, &[0], &cfg).unwrap();
        let after = model.weights();
        assert_eq!(before, after);
    }

    #[test]
    fn rejects_batched_targets() {
        let mut model = zoo::tiny_mlp(4, 4, 2, 1).unwrap();
        let x = Tensor::zeros(&[2, 4]);
        let y = one_hot(&[0, 1], 2);
        assert!(run_dria(&mut model, &x, &y, &[], &DriaConfig::default()).is_err());
    }

    #[test]
    fn lenet_smoke() {
        // Full LeNet-5 on a real synthetic CIFAR image, few iterations —
        // the full-strength run lives in the bench harness.
        let ds = SyntheticCifar100::new(4, 1);
        let s = ds.sample(0);
        let mut model = zoo::lenet5_with(10, 2).unwrap();
        let target = s.image.reshape(&[1, 3, 32, 32]).unwrap();
        let label = one_hot(&[s.label % 10], 10);
        let cfg = DriaConfig {
            iterations: 3,
            ..DriaConfig::default()
        };
        let out = run_dria(&mut model, &target, &label, &[1], &cfg).unwrap();
        assert!(out.image_loss.is_finite());
        assert_eq!(out.reconstructed.dims(), &[1, 3, 32, 32]);
    }
}
