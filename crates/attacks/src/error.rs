use std::fmt;

use gradsec_nn::NnError;

/// Errors produced by the attack suite.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// An underlying model/tensor failure.
    Nn(NnError),
    /// Not enough data to run the attack (empty splits, single-class
    /// labels, etc.).
    InsufficientData {
        /// Human-readable reason.
        reason: String,
    },
    /// Invalid attack configuration.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Nn(e) => write!(f, "model error: {e}"),
            AttackError::InsufficientData { reason } => {
                write!(f, "insufficient data: {reason}")
            }
            AttackError::BadConfig { reason } => write!(f, "bad config: {reason}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Nn(e)
    }
}

impl From<gradsec_tensor::TensorError> for AttackError {
    fn from(e: gradsec_tensor::TensorError) -> Self {
        AttackError::Nn(NnError::Tensor(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: AttackError = NnError::EmptyModel.into();
        assert!(e.to_string().contains("model error"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
