//! Gradient → feature-vector reduction.
//!
//! Raw LeNet-5 gradients are ~80 K scalars per observation; attack models
//! train on a reduced representation instead: per layer, a block of
//! summary statistics plus a strided sample of raw gradient values. The
//! per-layer blocks stay contiguous so the enclave semantics ("delete the
//! columns of a protected layer") map to exact column ranges.

use serde::{Deserialize, Serialize};

use gradsec_nn::gradient::GradientSnapshot;

/// Number of summary statistics per layer: L2 norm, mean, standard
/// deviation, absolute maximum, absolute mean.
pub const SUMMARY_STATS: usize = 5;

/// One layer's contiguous column range in the feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpan {
    /// Model layer index.
    pub layer: usize,
    /// First column of the block.
    pub start: usize,
    /// Block width.
    pub len: usize,
}

/// Column layout of reduced gradient features.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureLayout {
    spans: Vec<LayerSpan>,
    width: usize,
}

impl FeatureLayout {
    /// Total feature-vector width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Per-layer spans, in layer order.
    pub fn spans(&self) -> &[LayerSpan] {
        &self.spans
    }

    /// The span of a given model layer, if present.
    pub fn span_of(&self, layer: usize) -> Option<LayerSpan> {
        self.spans.iter().copied().find(|s| s.layer == layer)
    }
}

/// Reduces a gradient snapshot to features; returns the layout alongside.
///
/// `raw_per_layer` controls how many strided raw gradient values accompany
/// the [`SUMMARY_STATS`] per layer (layers with fewer scalars contribute
/// what they have).
pub fn reduce_snapshot(
    snapshot: &GradientSnapshot,
    raw_per_layer: usize,
) -> (Vec<f32>, FeatureLayout) {
    let mut features = Vec::new();
    let mut spans = Vec::new();
    for g in snapshot.iter() {
        let start = features.len();
        let flat = g.to_flat();
        let n = flat.len().max(1) as f32;
        let l2 = flat.iter().map(|x| x * x).sum::<f32>().sqrt();
        let mean = flat.iter().sum::<f32>() / n;
        let var = flat.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
        let absmax = flat.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let absmean = flat.iter().map(|x| x.abs()).sum::<f32>() / n;
        features.extend_from_slice(&[l2, mean, var.sqrt(), absmax, absmean]);
        if raw_per_layer > 0 && !flat.is_empty() {
            let take = raw_per_layer.min(flat.len());
            let stride = (flat.len() / take).max(1);
            features.extend(flat.iter().step_by(stride).take(take).copied());
        }
        spans.push(LayerSpan {
            layer: g.layer,
            start,
            len: features.len() - start,
        });
    }
    let width = features.len();
    (features, FeatureLayout { spans, width })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_nn::gradient::LayerGradient;
    use gradsec_tensor::Tensor;

    fn snapshot() -> GradientSnapshot {
        GradientSnapshot::new(vec![
            LayerGradient {
                layer: 0,
                dw: Tensor::from_vec(vec![3.0, -4.0], &[2]).unwrap(),
                db: Tensor::from_vec(vec![0.0], &[1]).unwrap(),
            },
            LayerGradient {
                layer: 1,
                dw: Tensor::from_vec((0..100).map(|i| i as f32).collect(), &[100]).unwrap(),
                db: Tensor::zeros(&[10]),
            },
        ])
    }

    #[test]
    fn layout_covers_feature_vector_exactly() {
        let (f, layout) = reduce_snapshot(&snapshot(), 8);
        assert_eq!(layout.width(), f.len());
        let mut cursor = 0;
        for s in layout.spans() {
            assert_eq!(s.start, cursor, "spans must be contiguous");
            cursor += s.len;
        }
        assert_eq!(cursor, f.len());
    }

    #[test]
    fn summary_stats_are_correct() {
        let (f, layout) = reduce_snapshot(&snapshot(), 0);
        let s0 = layout.span_of(0).unwrap();
        assert_eq!(s0.len, SUMMARY_STATS);
        // Layer 0 flat = [3, -4, 0]: l2 = 5, mean = -1/3, absmax = 4.
        assert!((f[s0.start] - 5.0).abs() < 1e-5);
        assert!((f[s0.start + 1] + 1.0 / 3.0).abs() < 1e-5);
        assert!((f[s0.start + 3] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn raw_values_are_strided() {
        let (_, layout) = reduce_snapshot(&snapshot(), 10);
        let s1 = layout.span_of(1).unwrap();
        assert_eq!(s1.len, SUMMARY_STATS + 10);
        // Small layers contribute what they have.
        let s0 = layout.span_of(0).unwrap();
        assert_eq!(s0.len, SUMMARY_STATS + 3);
    }

    #[test]
    fn missing_layer_span_is_none() {
        let (_, layout) = reduce_snapshot(&snapshot(), 0);
        assert!(layout.span_of(7).is_none());
    }

    #[test]
    fn deterministic() {
        let (a, la) = reduce_snapshot(&snapshot(), 4);
        let (b, lb) = reduce_snapshot(&snapshot(), 4);
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }
}
