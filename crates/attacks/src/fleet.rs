//! Fleet-scale membership inference from a colluding coalition.
//!
//! A coalition of colluding FL clients behaves honestly on the wire —
//! its uploads are indistinguishable from a loyal fleet's — but pools
//! what every member legitimately receives: the global model snapshot
//! of each round it participates in. This module turns that pooled
//! observation history into an attack-success number, the fleet-scale
//! counterpart of the per-round [`mia`](crate::mia) attack:
//!
//! 1. For each observed snapshot, the victim model is rewound to that
//!    round's global weights and per-sample gradient feature rows are
//!    extracted for the probe sets ([`mia::gradient_rows`]).
//! 2. Rows from *all* observed rounds concatenate into one training
//!    corpus — the coalition's advantage over a lone attacker is
//!    exactly this longitudinal pooling.
//! 3. One attack classifier fits the pooled corpus and reports the
//!    held-out AUC ([`mia::attack_auc_from_rows`]), alongside per-round
//!    AUCs for trend inspection.
//!
//! The module takes snapshots as plain `(round, ModelWeights)` pairs,
//! so any orchestration layer (the `gradsec-fl` collusion log, a file
//! of checkpoints, a paper-table sweep) can drive it without this crate
//! depending on the federation machinery.

use gradsec_data::Dataset;
use gradsec_nn::model::ModelWeights;
use gradsec_nn::Sequential;

use crate::features::FeatureLayout;
use crate::mia::{attack_auc_from_rows, gradient_rows, LabelledRow};
use crate::{AttackError, Result};

/// Tuning for the coalition attack (the defaults mirror the per-round
/// MIA evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetMiaConfig {
    /// Raw gradient coordinates kept per layer when reducing a
    /// per-sample gradient snapshot to a feature row.
    pub raw_per_layer: usize,
    /// Fraction of each class's rows that trains the attack model; the
    /// rest evaluates it.
    pub train_frac: f32,
    /// Seed for the attack classifier.
    pub seed: u64,
}

impl Default for FleetMiaConfig {
    fn default() -> Self {
        FleetMiaConfig {
            raw_per_layer: 4,
            train_frac: 0.5,
            seed: 17,
        }
    }
}

/// The coalition's attack outcome: the pooled AUC and the per-round
/// breakdown it was pooled from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMiaReport {
    /// Held-out AUC of one classifier over all observed rounds' rows.
    pub pooled_auc: f32,
    /// `(round, AUC)` for each observed snapshot individually.
    pub per_round: Vec<(u64, f32)>,
    /// Total feature rows in the pooled corpus.
    pub rows: usize,
}

/// Runs the coalition attack over an observation history.
///
/// `snapshots` are `(round, global weights)` pairs in any order (they
/// are processed as given; a collusion log yields them round-sorted).
/// `model` is the victim architecture; its weights are overwritten per
/// snapshot. `protected` names the layers whose gradient columns the
/// TEE withholds, exactly as in the per-round attack.
///
/// # Errors
///
/// Returns [`AttackError::InsufficientData`] for an empty observation
/// history or empty probe sets, and propagates model and classifier
/// failures.
pub fn coalition_attack_auc(
    model: &mut Sequential,
    snapshots: &[(u64, ModelWeights)],
    dataset: &dyn Dataset,
    members: &[usize],
    non_members: &[usize],
    protected: &[usize],
    config: &FleetMiaConfig,
) -> Result<FleetMiaReport> {
    if snapshots.is_empty() {
        return Err(AttackError::InsufficientData {
            reason: "coalition observed no global snapshots".to_owned(),
        });
    }
    let mut pooled: Vec<LabelledRow> = Vec::new();
    let mut layout: Option<FeatureLayout> = None;
    let mut per_round = Vec::with_capacity(snapshots.len());
    for (round, weights) in snapshots {
        model.set_weights(weights)?;
        let (l, rows) = gradient_rows(model, dataset, members, non_members, config.raw_per_layer)?;
        let auc =
            attack_auc_from_rows(&l, &rows, protected, config.train_frac, config.seed ^ round)?;
        per_round.push((*round, auc));
        pooled.extend(rows);
        layout.get_or_insert(l);
    }
    let layout = layout.expect("at least one snapshot processed");
    let pooled_auc =
        attack_auc_from_rows(&layout, &pooled, protected, config.train_frac, config.seed)?;
    Ok(FleetMiaReport {
        pooled_auc,
        per_round,
        rows: pooled.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_data::SyntheticMicro;
    use gradsec_nn::zoo;

    #[test]
    fn coalition_pools_rows_across_rounds() {
        let ds = SyntheticMicro::new(32, 2, 6, 3);
        let mut model = zoo::tiny_mlp(6, 8, 2, 7).unwrap();
        let snapshots: Vec<(u64, ModelWeights)> = vec![(0, model.weights()), (1, model.weights())];
        let members: Vec<usize> = (0..8).collect();
        let non_members: Vec<usize> = (16..24).collect();
        let report = coalition_attack_auc(
            &mut model,
            &snapshots,
            &ds,
            &members,
            &non_members,
            &[],
            &FleetMiaConfig::default(),
        )
        .unwrap();
        assert_eq!(report.per_round.len(), 2);
        assert_eq!(report.rows, 2 * 16);
        assert!((0.0..=1.0).contains(&report.pooled_auc));
        for (_, auc) in &report.per_round {
            assert!((0.0..=1.0).contains(auc));
        }
    }

    #[test]
    fn empty_history_is_rejected() {
        let ds = SyntheticMicro::new(8, 2, 6, 3);
        let mut model = zoo::tiny_mlp(6, 8, 2, 7).unwrap();
        let err = coalition_attack_auc(
            &mut model,
            &[],
            &ds,
            &[0],
            &[1],
            &[],
            &FleetMiaConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, AttackError::InsufficientData { .. }));
    }
}
