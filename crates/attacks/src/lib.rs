//! # gradsec-attacks
//!
//! The three state-of-the-art client-side inference attacks the paper
//! evaluates GradSec against (§3.2), plus the attack-model machinery they
//! need:
//!
//! * [`dria`] — **Data-Reconstruction Inference Attack** (Zhu et al.'s
//!   deep leakage from gradients): reconstructs a training image by
//!   matching the gradients of a dummy input to the leaked ones, via
//!   Adam or L-BFGS.
//! * [`mia`] — **Membership Inference Attack** (Nasr et al.): a binary
//!   classifier over per-sample gradient features distinguishes training
//!   members from non-members.
//! * [`dpia`] — **Data-Property Inference Attack** (Melis et al.): a
//!   random forest over *aggregated* gradients across FL cycles infers a
//!   private property of the victim's data.
//! * [`fleet`] — fleet-scale MIA: a colluding coalition pools the
//!   global snapshots it legitimately observed across rounds and fits
//!   one attack model on the longitudinal corpus.
//! * [`dgrad`] — the attacker's gradient dataset `D_grad`, including the
//!   paper's enclave semantics: "we simply delete from `D_grad` all the
//!   gradients columns relative to a protected layer" (§8.1), with
//!   mean-imputation of missing columns (§8.2).
//! * [`classifier`] — from-scratch logistic regression, CART decision
//!   trees and random forests (the paper's DPIA attack model).
//! * [`metrics`] — AUC (the paper's attack-success measure) and ImageLoss.
//!
//! Every attack takes an explicit list of *protected layers* so the
//! GradSec policies in `gradsec-core` can be evaluated directly against
//! them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod dgrad;
pub mod dpia;
pub mod dria;
mod error;
pub mod features;
pub mod fleet;
pub mod metrics;
pub mod mia;

pub use error::AttackError;

/// Crate-wide result alias using [`AttackError`].
pub type Result<T> = std::result::Result<T, AttackError>;
