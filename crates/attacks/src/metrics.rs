//! Attack-success metrics.
//!
//! The paper measures DRIA with *ImageLoss* (Euclidean distance between
//! the reconstruction and the original) and MIA/DPIA with *AUC*, chosen
//! because it is "statistically consistent and more discriminating than
//! accuracy" (§8.2, citing Ling et al.).

use gradsec_tensor::Tensor;

use crate::{AttackError, Result};

/// Area under the ROC curve via the rank-sum (Mann–Whitney) statistic,
/// with midrank tie handling.
///
/// `scores[i]` is the classifier's positive-class score for sample `i`;
/// `labels[i]` is the ground truth. An uninformative classifier scores
/// 0.5; the paper calls AUC 0.5 "a random guess regardless of the
/// classification threshold".
///
/// # Errors
///
/// Returns [`AttackError::InsufficientData`] when inputs are mismatched
/// or one class is absent (AUC undefined).
pub fn auc(scores: &[f32], labels: &[bool]) -> Result<f32> {
    if scores.len() != labels.len() {
        return Err(AttackError::InsufficientData {
            reason: format!(
                "scores/labels length mismatch: {} vs {}",
                scores.len(),
                labels.len()
            ),
        });
    }
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return Err(AttackError::InsufficientData {
            reason: format!("auc needs both classes ({positives} positive, {negatives} negative)"),
        });
    }
    // Sort indices by score; assign midranks to ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based; ties share the average rank.
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(r, _)| *r)
        .sum();
    let n_pos = positives as f64;
    let n_neg = negatives as f64;
    let u = rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0;
    Ok((u / (n_pos * n_neg)) as f32)
}

/// The paper's *ImageLoss*: Euclidean distance between the attacker's
/// reconstruction and the original image.
///
/// # Errors
///
/// Returns shape errors for mismatched images.
pub fn image_loss(reconstructed: &Tensor, original: &Tensor) -> Result<f32> {
    Ok(reconstructed.distance(original)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(auc(&scores, &labels).unwrap(), 1.0);
    }

    #[test]
    fn inverted_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert_eq!(auc(&scores, &labels).unwrap(), 0.0);
    }

    #[test]
    fn all_tied_is_random() {
        let scores = [0.5; 6];
        let labels = [true, false, true, false, true, false];
        assert!((auc(&scores, &labels).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn known_partial_value() {
        // pos scores {0.8, 0.4}, neg {0.6, 0.2}: pairs won = (0.8>0.6),
        // (0.8>0.2), (0.4<0.6 lose), (0.4>0.2) -> 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels).unwrap() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(auc(&[0.5], &[true]).is_err());
        assert!(auc(&[0.5, 0.6], &[false, false]).is_err());
        assert!(auc(&[0.5], &[true, false]).is_err());
    }

    #[test]
    fn auc_is_threshold_free() {
        // Monotone transforms of the scores leave AUC unchanged.
        let scores = [0.9f32, 0.3, 0.7, 0.2, 0.6];
        let labels = [true, false, true, false, false];
        let base = auc(&scores, &labels).unwrap();
        let squashed: Vec<f32> = scores.iter().map(|s| s * 0.1 + 5.0).collect();
        assert!((auc(&squashed, &labels).unwrap() - base).abs() < 1e-6);
    }

    #[test]
    fn image_loss_is_distance() {
        let a = Tensor::from_vec(vec![0.0, 3.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 0.0], &[2]).unwrap();
        assert_eq!(image_loss(&a, &b).unwrap(), 5.0);
        assert!(image_loss(&a, &Tensor::zeros(&[3])).is_err());
    }
}
