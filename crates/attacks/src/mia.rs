//! Membership Inference Attack (MIA) — Nasr et al. (paper reference
//! [39]).
//!
//! The attacker holds sets `D1 ⊂ D` (known members) and `D2 ⊄ D` (known
//! non-members), computes the target model's per-sample gradients for
//! both, trains a binary attack classifier on the gradient features, and
//! uses it to score membership of fresh samples (paper §3.2). Enclave
//! protection deletes the corresponding feature columns before the
//! classifier ever sees them (§8.1).

use gradsec_data::split::member_split;
use gradsec_data::{batch_of, one_hot, Batcher, Dataset};
use gradsec_nn::optim::Sgd;
use gradsec_nn::Sequential;

use crate::classifier::{AttackModel, LogisticRegression};
use crate::dgrad::GradientDataset;
use crate::features::reduce_snapshot;
use crate::metrics::auc;
use crate::{AttackError, Result};

/// MIA configuration.
#[derive(Debug, Clone, Copy)]
pub struct MiaConfig {
    /// Member-set size (an equal non-member set is drawn).
    pub members: usize,
    /// Epochs the victim trains on the member set — the overfitting that
    /// creates the membership signal.
    pub overfit_epochs: usize,
    /// Victim training batch size.
    pub batch_size: usize,
    /// Victim learning rate.
    pub learning_rate: f32,
    /// Fraction of each class given to the attack model for training; the
    /// remainder is the evaluation set.
    pub attack_train_frac: f32,
    /// Raw gradient values sampled per layer in the feature reduction.
    pub raw_per_layer: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for MiaConfig {
    fn default() -> Self {
        MiaConfig {
            members: 100,
            overfit_epochs: 30,
            batch_size: 16,
            learning_rate: 0.05,
            attack_train_frac: 0.5,
            raw_per_layer: 16,
            seed: 0,
        }
    }
}

/// Outcome of an MIA run.
#[derive(Debug, Clone, Copy)]
pub struct MiaOutcome {
    /// Attack AUC on the held-out evaluation rows (0.5 = random guess).
    pub auc: f32,
    /// Rows the attack model trained on.
    pub train_rows: usize,
    /// Rows it was evaluated on.
    pub test_rows: usize,
    /// Victim's final training accuracy on the member set (the degree of
    /// overfitting achieved).
    pub victim_train_accuracy: f32,
}

/// Trains the victim on the member split (the overfitting phase).
///
/// # Errors
///
/// Propagates model errors.
pub fn overfit_victim(
    model: &mut Sequential,
    dataset: &dyn Dataset,
    member_idx: &[usize],
    cfg: &MiaConfig,
) -> Result<f32> {
    let mut opt = Sgd::new(cfg.learning_rate);
    let batcher = Batcher::new(member_idx.len(), cfg.batch_size, cfg.seed);
    for epoch in 0..cfg.overfit_epochs {
        for batch in batcher.epoch(epoch as u64) {
            let global: Vec<usize> = batch.iter().map(|&i| member_idx[i]).collect();
            let (x, y) = batch_of(dataset, &global);
            model.train_batch(&x, &y, &mut opt)?;
        }
    }
    let (x, y) = batch_of(dataset, member_idx);
    Ok(model.accuracy(&x, &y)?)
}

/// Computes one sample's gradient feature row.
fn sample_features(
    model: &mut Sequential,
    dataset: &dyn Dataset,
    index: usize,
    raw_per_layer: usize,
) -> Result<(Vec<f32>, crate::features::FeatureLayout)> {
    let s = dataset.sample(index);
    let (c, h, w) = dataset.image_dims();
    let x = s.image.reshape(&[1, c, h, w])?;
    let y = one_hot(&[s.label], dataset.num_classes());
    let (_, snap) = model.forward_backward(&x, &y)?;
    model.zero_grads();
    Ok(reduce_snapshot(&snap, raw_per_layer))
}

/// One attacker feature row: gradient features plus the membership label.
pub type LabelledRow = (Vec<f32>, bool);

/// Precomputes the attacker's full (pre-deletion) gradient feature rows
/// for given member and non-member index sets against an already-trained
/// victim.
///
/// Figure-6 style sweeps reuse these rows across protection configs: the
/// victim is trained once, and each config only changes which columns are
/// deleted.
///
/// # Errors
///
/// Propagates model errors; requires non-empty index sets.
pub fn gradient_rows(
    model: &mut Sequential,
    dataset: &dyn Dataset,
    members: &[usize],
    non_members: &[usize],
    raw_per_layer: usize,
) -> Result<(crate::features::FeatureLayout, Vec<LabelledRow>)> {
    let first = members
        .first()
        .or_else(|| non_members.first())
        .ok_or_else(|| AttackError::InsufficientData {
            reason: "no samples to probe".to_owned(),
        })?;
    let (_, layout) = sample_features(model, dataset, *first, raw_per_layer)?;
    let mut rows = Vec::with_capacity(members.len() + non_members.len());
    for &idx in members {
        let (f, _) = sample_features(model, dataset, idx, raw_per_layer)?;
        rows.push((f, true));
    }
    for &idx in non_members {
        let (f, _) = sample_features(model, dataset, idx, raw_per_layer)?;
        rows.push((f, false));
    }
    Ok((layout, rows))
}

/// Fits the attack classifier on precomputed rows under a protection set
/// and returns the held-out AUC.
///
/// Rows of each class are split by rank: the first `train_frac` fraction
/// trains the attack model, the rest evaluates it.
///
/// # Errors
///
/// Returns [`AttackError::InsufficientData`] for degenerate splits.
pub fn attack_auc_from_rows(
    layout: &crate::features::FeatureLayout,
    rows: &[LabelledRow],
    protected: &[usize],
    train_frac: f32,
    seed: u64,
) -> Result<f32> {
    if !(0.0..1.0).contains(&train_frac) || train_frac == 0.0 {
        return Err(AttackError::BadConfig {
            reason: format!("train_frac must be in (0, 1), got {train_frac}"),
        });
    }
    let mut train = GradientDataset::new(layout.clone());
    let mut test = GradientDataset::new(layout.clone());
    let mut seen_pos = 0usize;
    let mut seen_neg = 0usize;
    let n_pos = rows.iter().filter(|(_, l)| *l).count();
    let n_neg = rows.len() - n_pos;
    for (f, label) in rows {
        let (rank, total) = if *label {
            seen_pos += 1;
            (seen_pos, n_pos)
        } else {
            seen_neg += 1;
            (seen_neg, n_neg)
        };
        let cut = ((total as f32) * train_frac).round() as usize;
        let target = if rank <= cut { &mut train } else { &mut test };
        target.push(f.clone(), *label, protected)?;
    }
    let means = train.column_means();
    let x_train = train.impute_with(&means);
    let x_test = test.impute_with(&means);
    let mut attack = LogisticRegression::default_attack_model(seed);
    attack.fit(&x_train, train.labels())?;
    auc(&attack.scores(&x_test), test.labels())
}

/// Runs the full MIA pipeline against a (fresh) victim model.
///
/// `protected` lists the layer indices GradSec shelters; their gradient
/// columns are deleted from the attacker's view.
///
/// # Errors
///
/// Returns [`AttackError::InsufficientData`] when the dataset cannot
/// provide two disjoint splits of `cfg.members` samples.
pub fn run_mia(
    model: &mut Sequential,
    dataset: &dyn Dataset,
    protected: &[usize],
    cfg: &MiaConfig,
) -> Result<MiaOutcome> {
    if 2 * cfg.members > dataset.len() {
        return Err(AttackError::InsufficientData {
            reason: format!(
                "need {} samples for member/non-member splits, dataset has {}",
                2 * cfg.members,
                dataset.len()
            ),
        });
    }
    if !(0.0..1.0).contains(&cfg.attack_train_frac) || cfg.attack_train_frac == 0.0 {
        return Err(AttackError::BadConfig {
            reason: format!(
                "attack_train_frac must be in (0, 1), got {}",
                cfg.attack_train_frac
            ),
        });
    }
    let (members, non_members) = member_split(dataset.len(), cfg.members, cfg.seed);
    let victim_train_accuracy = overfit_victim(model, dataset, &members, cfg)?;
    // Build the attacker's D_grad: one row per probed sample.
    let (_, layout) = sample_features(model, dataset, members[0], cfg.raw_per_layer)?;
    let mut train = GradientDataset::new(layout.clone());
    let mut test = GradientDataset::new(layout);
    let cut = ((cfg.members as f32) * cfg.attack_train_frac) as usize;
    for (rank, &idx) in members.iter().enumerate() {
        let (f, _) = sample_features(model, dataset, idx, cfg.raw_per_layer)?;
        let target = if rank < cut { &mut train } else { &mut test };
        target.push(f, true, protected)?;
    }
    for (rank, &idx) in non_members.iter().enumerate() {
        let (f, _) = sample_features(model, dataset, idx, cfg.raw_per_layer)?;
        let target = if rank < cut { &mut train } else { &mut test };
        target.push(f, false, protected)?;
    }
    // Mean-impute with train statistics, fit, score, AUC.
    let means = train.column_means();
    let x_train = train.impute_with(&means);
    let x_test = test.impute_with(&means);
    let mut attack = LogisticRegression::default_attack_model(cfg.seed);
    attack.fit(&x_train, train.labels())?;
    let scores = attack.scores(&x_test);
    let a = auc(&scores, test.labels())?;
    Ok(MiaOutcome {
        auc: a,
        train_rows: train.len(),
        test_rows: test.len(),
        victim_train_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;

    fn quick_cfg() -> MiaConfig {
        MiaConfig {
            members: 40,
            overfit_epochs: 60,
            batch_size: 8,
            learning_rate: 0.04,
            attack_train_frac: 0.5,
            raw_per_layer: 8,
            // Calibrated against the vendored StdRng stream: this split
            // seed gives the attack a stable >0.7 AUC pocket across model
            // seeds (the membership signal itself, not the stream, is
            // what the test asserts).
            seed: 7,
        }
    }

    #[test]
    fn unprotected_mia_beats_chance() {
        let ds = SyntheticCifar100::with_classes(120, 4, 2);
        let mut model = zoo::tiny_mlp(3 * 32 * 32, 24, 4, 5).unwrap();
        let out = run_mia(&mut model, &ds, &[], &quick_cfg()).unwrap();
        assert!(
            out.victim_train_accuracy > 0.9,
            "victim failed to overfit: {}",
            out.victim_train_accuracy
        );
        assert!(out.auc > 0.6, "mia auc only {}", out.auc);
        assert_eq!(out.train_rows, 40);
        assert_eq!(out.test_rows, 40);
    }

    #[test]
    fn protecting_all_layers_neutralises_mia() {
        let ds = SyntheticCifar100::with_classes(120, 4, 2);
        let mut model = zoo::tiny_mlp(3 * 32 * 32, 24, 4, 5).unwrap();
        let out = run_mia(&mut model, &ds, &[0, 1], &quick_cfg()).unwrap();
        // Every column deleted -> constant imputed features -> AUC ≈ 0.5.
        assert!(
            (out.auc - 0.5).abs() < 0.15,
            "fully protected auc should be near chance, got {}",
            out.auc
        );
    }

    #[test]
    fn insufficient_data_rejected() {
        let ds = SyntheticCifar100::with_classes(20, 2, 1);
        let mut model = zoo::tiny_mlp(3 * 32 * 32, 8, 2, 1).unwrap();
        let cfg = MiaConfig {
            members: 50,
            ..quick_cfg()
        };
        assert!(run_mia(&mut model, &ds, &[], &cfg).is_err());
    }

    #[test]
    fn bad_fraction_rejected() {
        let ds = SyntheticCifar100::with_classes(120, 2, 1);
        let mut model = zoo::tiny_mlp(3 * 32 * 32, 8, 2, 1).unwrap();
        for frac in [0.0f32, 1.0, 1.5] {
            let cfg = MiaConfig {
                attack_train_frac: frac,
                members: 20,
                ..quick_cfg()
            };
            assert!(run_mia(&mut model, &ds, &[], &cfg).is_err());
        }
    }
}
