//! Attack-pipeline benchmarks: the per-iteration cost of DRIA's
//! gradient-matching objective, MIA feature extraction, and the DPIA
//! forest fit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gradsec_attacks::classifier::{AttackModel, ForestConfig, RandomForest};
use gradsec_attacks::dria::{run_dria, DriaConfig, DriaOptimizer};
use gradsec_attacks::features::reduce_snapshot;
use gradsec_data::{one_hot, Dataset, SyntheticCifar100};
use gradsec_nn::zoo;
use gradsec_tensor::init;

fn bench_dria_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("dria");
    group.sample_size(10);
    let ds = SyntheticCifar100::new(4, 1);
    let s = ds.sample(0);
    let target = s.image.reshape(&[1, 3, 32, 32]).unwrap();
    let label = one_hot(&[s.label], ds.num_classes());
    group.bench_function("lenet_adam_3iters", |b| {
        let mut model = zoo::lenet5(2).unwrap();
        let cfg = DriaConfig {
            iterations: 3,
            optimizer: DriaOptimizer::Adam { lr: 0.1 },
            seed: 1,
            ..DriaConfig::default()
        };
        b.iter(|| black_box(run_dria(&mut model, &target, &label, &[], &cfg).unwrap()))
    });
    group.finish();
}

fn bench_mia_features(c: &mut Criterion) {
    let ds = SyntheticCifar100::new(8, 1);
    let mut model = zoo::lenet5(2).unwrap();
    let s = ds.sample(0);
    let x = s.image.reshape(&[1, 3, 32, 32]).unwrap();
    let y = one_hot(&[s.label], 100);
    c.bench_function("mia_gradient_row", |b| {
        b.iter(|| {
            let (_, snap) = model.forward_backward(&x, &y).unwrap();
            black_box(reduce_snapshot(&snap, 16))
        })
    });
}

fn bench_forest_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpia");
    group.sample_size(10);
    let x = init::uniform(&[100, 120], -1.0, 1.0, 5);
    let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
    group.bench_function("forest_fit_100x120", |b| {
        b.iter(|| {
            let mut f = RandomForest::new(ForestConfig::default(), 3);
            f.fit(black_box(&x), &labels).unwrap();
            black_box(f)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dria_iteration,
    bench_mia_features,
    bench_forest_fit
);
criterion_main!(benches);
