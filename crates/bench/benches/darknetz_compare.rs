//! GradSec vs DarkneTZ (Figure 8): real wall-clock of the grouped
//! protection configurations through the identical secure trainer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gradsec_core::policy::DarknetzPolicy;
use gradsec_core::trainer::SecureTrainer;
use gradsec_data::SyntheticCifar100;
use gradsec_nn::zoo;

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("darknetz_compare");
    group.sample_size(10);
    let ds = SyntheticCifar100::with_classes(64, 10, 1);
    let gradsec_layers = vec![1usize, 4];
    let darknetz_layers = DarknetzPolicy::covering(&gradsec_layers)
        .expect("non-empty")
        .layers();
    for (name, layers) in [
        ("gradsec_L2_L5", gradsec_layers),
        ("darknetz_L2_to_L5", darknetz_layers),
    ] {
        group.bench_function(name, |b| {
            let mut model = zoo::lenet5_with(10, 2).unwrap();
            let mut trainer = SecureTrainer::new();
            let batches: Vec<Vec<usize>> = (0..2).map(|k| (k * 8..(k + 1) * 8).collect()).collect();
            b.iter(|| {
                black_box(
                    trainer
                        .run_cycle(&mut model, &ds, &batches, 0.01, &layers)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
