//! Dynamic GradSec overhead (Table 6's MW=2 block): real wall-clock per
//! window position, plus the window scheduler itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gradsec_core::trainer::SecureTrainer;
use gradsec_core::window::MovingWindow;
use gradsec_data::SyntheticCifar100;
use gradsec_nn::zoo;

fn bench_window_positions(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_cycle_mw2");
    group.sample_size(10);
    let ds = SyntheticCifar100::with_classes(64, 10, 1);
    let window = MovingWindow::new(2, 5, vec![0.2, 0.1, 0.6, 0.1], 7).unwrap();
    for pos in 0..window.positions() {
        let layers = window.layers_at(pos);
        let name = layers
            .iter()
            .map(|l| format!("L{}", l + 1))
            .collect::<Vec<_>>()
            .join("+");
        group.bench_function(&name, |b| {
            let mut model = zoo::lenet5_with(10, 2).unwrap();
            let mut trainer = SecureTrainer::new();
            let batches: Vec<Vec<usize>> = (0..2).map(|k| (k * 8..(k + 1) * 8).collect()).collect();
            b.iter(|| {
                black_box(
                    trainer
                        .run_cycle(&mut model, &ds, &batches, 0.01, &layers)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let window = MovingWindow::new(2, 5, vec![0.2, 0.1, 0.6, 0.1], 7).unwrap();
    c.bench_function("window_position_draw", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round = round.wrapping_add(1);
            black_box(window.layers_for_round(round))
        })
    });
}

criterion_group!(benches, bench_window_positions, bench_scheduler);
criterion_main!(benches);
