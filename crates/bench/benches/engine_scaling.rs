//! Round wall-clock vs engine worker count (1/2/4/8) for LeNet-5 and
//! AlexNet shapes.
//!
//! Each measurement builds a fresh federation and times one full FL
//! round through `ExecutionEngine::new(workers)`. Besides the usual
//! per-benchmark lines, a machine-readable summary (median seconds per
//! configuration plus the speedup over the 1-worker engine) is written to
//! `target/engine_scaling.json` for the performance trajectory.
//!
//! Expect >1.5× at 4 workers on AlexNet shapes on a multi-core host;
//! on a single-core container the engine degrades gracefully to ~1×.

use std::sync::Arc;

use criterion::{criterion_group, Criterion};

use gradsec_data::SyntheticCifar100;
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::runner::Federation;
use gradsec_fl::ExecutionEngine;
use gradsec_nn::{zoo, Sequential};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn federation(model: fn() -> Sequential, clients: usize) -> Federation {
    let data = Arc::new(SyntheticCifar100::with_classes(clients * 16, 2, 5));
    Federation::builder(TrainingPlan {
        rounds: 1,
        clients_per_round: clients,
        batches_per_cycle: 1,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(model)
    .clients(clients, data)
    .build()
    .expect("federation builds")
}

fn lenet() -> Sequential {
    zoo::lenet5_with(2, 3).expect("LeNet-5 builds")
}

fn alexnet() -> Sequential {
    zoo::alexnet_with(2, 3).expect("AlexNet builds")
}

fn bench_model(c: &mut Criterion, name: &str, model: fn() -> Sequential) {
    let group_name = format!("engine_round_{name}");
    let mut group = c.benchmark_group(&group_name);
    group.sample_size(5);
    for workers in WORKER_COUNTS {
        let engine = ExecutionEngine::new(workers);
        group.bench_function(format!("{workers}w"), |b| {
            b.iter_batched(
                || federation(model, 8),
                |mut fed| fed.run_round_with(&engine).expect("round runs"),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_lenet(c: &mut Criterion) {
    bench_model(c, "lenet5", lenet);
}

fn bench_alexnet(c: &mut Criterion) {
    bench_model(c, "alexnet", alexnet);
}

criterion_group!(benches, bench_lenet, bench_alexnet);

/// Renders the JSON summary from the harness's measurements: median
/// seconds per `(model, workers)` plus speedup over the 1-worker round.
fn summary_json(c: &Criterion) -> String {
    let baseline_of = |prefix: &str| {
        c.results()
            .iter()
            .find(|r| r.id == format!("{prefix}/1w"))
            .map(|r| r.median.as_secs_f64())
    };
    let rows: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            let (prefix, workers) = r.id.split_once('/').unwrap_or((r.id.as_str(), "?"));
            let secs = r.median.as_secs_f64();
            let speedup = baseline_of(prefix)
                .filter(|&b| secs > 0.0 && b > 0.0)
                .map(|b| b / secs)
                .unwrap_or(1.0);
            format!(
                "    {{\"model\": \"{}\", \"workers\": \"{}\", \"median_s\": {:.6}, \"speedup_vs_1w\": {:.3}}}",
                prefix.trim_start_matches("engine_round_"),
                workers.trim_end_matches('w'),
                secs,
                speedup
            )
        })
        .collect();
    format!("{{\n  \"benchmarks\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    let json = summary_json(&c);
    let target = gradsec_bench::workspace_target();
    let path = target.join("engine_scaling.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");
}
