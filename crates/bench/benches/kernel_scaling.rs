//! Per-op, per-backend kernel wall-clock on the paper's model shapes.
//!
//! Times the `TensorBackend` hot paths — the LeNet-5 and AlexNet conv
//! stacks (forward + backward, batch 32) and the heaviest dense products
//! (AlexNet FC7) — once per backend (reference, blocked and tiled on its
//! auto-selected ISA), and writes a machine-readable summary (median
//! seconds per entry, the blocked-over-reference and tiled-over-blocked
//! speedups, and the achieved tiled GFLOP/s) to
//! `target/kernel_scaling.json` for the performance trajectory (CI
//! uploads it as a workflow artifact; the release-built `repro_kernels`
//! bin rewrites the same file with its gated per-ISA numbers).
//!
//! Numerical parity between the backends is asserted elsewhere
//! (`crates/tensor/tests/backend_properties.rs`, `repro_kernels`); this
//! bench only measures how the wall clock scales.

use criterion::{criterion_group, Criterion};

use gradsec_bench::kernels::{
    alexnet_conv_geometries, conv_backward_flops, conv_forward_flops, conv_stack,
    lenet5_conv_geometries, matmul_flops, BATCH,
};
use gradsec_tensor::backend::BackendKind;
use gradsec_tensor::init;
use gradsec_tensor::ops::conv::{conv2d_backward_with, conv2d_forward_with};
use gradsec_tensor::ops::matmul::{matmul_nt_with, matmul_with};

fn bench_kernels(c: &mut Criterion) {
    let stacks = [
        ("lenet5", conv_stack(&lenet5_conv_geometries(), 100)),
        ("alexnet", conv_stack(&alexnet_conv_geometries(), 200)),
    ];
    let mut group = c.benchmark_group("kernel");
    group.sample_size(5);
    for (model, stack) in &stacks {
        for backend in BackendKind::ALL {
            group.bench_function(format!("conv2d_forward_{model}/{backend}"), |b| {
                b.iter(|| {
                    for l in stack {
                        criterion::black_box(
                            conv2d_forward_with(&l.input, &l.weights, &l.bias, &l.geo, backend)
                                .expect("conv forward runs"),
                        );
                    }
                })
            });
            group.bench_function(format!("conv2d_backward_{model}/{backend}"), |b| {
                b.iter(|| {
                    for l in stack {
                        criterion::black_box(
                            conv2d_backward_with(&l.input, &l.weights, &l.delta, &l.geo, backend)
                                .expect("conv backward runs"),
                        );
                    }
                })
            });
        }
    }
    // AlexNet FC7 (4096 -> 4096): the heaviest dense products per cycle.
    let a = init::uniform(&[BATCH, 4096], -1.0, 1.0, 300);
    let w = init::uniform(&[4096, 4096], -0.5, 0.5, 301);
    for backend in BackendKind::ALL {
        group.bench_function(format!("matmul_nt_alexnet_fc7/{backend}"), |b| {
            b.iter(|| criterion::black_box(matmul_nt_with(&a, &w, backend).expect("nt runs")))
        });
        group.bench_function(format!("matmul_alexnet_fc7/{backend}"), |b| {
            b.iter(|| criterion::black_box(matmul_with(&a, &w, backend).expect("matmul runs")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);

/// Multiply-add FLOPs one run of a bench entry performs (the whole conv
/// stack for stack entries), so medians convert to achieved GFLOP/s.
fn entry_flops(entry: &str) -> Option<f64> {
    let stack_flops = |geos: &[gradsec_tensor::ops::conv::Conv2dGeometry], backward: bool| {
        geos.iter()
            .map(|g| {
                if backward {
                    conv_backward_flops(g, BATCH)
                } else {
                    conv_forward_flops(g, BATCH)
                }
            })
            .sum()
    };
    match entry {
        "conv2d_forward_lenet5" => Some(stack_flops(&lenet5_conv_geometries(), false)),
        "conv2d_backward_lenet5" => Some(stack_flops(&lenet5_conv_geometries(), true)),
        "conv2d_forward_alexnet" => Some(stack_flops(&alexnet_conv_geometries(), false)),
        "conv2d_backward_alexnet" => Some(stack_flops(&alexnet_conv_geometries(), true)),
        "matmul_nt_alexnet_fc7" | "matmul_alexnet_fc7" => Some(matmul_flops(BATCH, 4096, 4096)),
        _ => None,
    }
}

/// Renders the JSON summary: median seconds per `entry/backend` pair,
/// the blocked-over-reference and tiled-over-blocked speedups, and the
/// tiled backend's achieved GFLOP/s for each entry.
fn summary_json(c: &Criterion) -> String {
    let median_of = |id: &str| -> Option<f64> {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median.as_secs_f64())
    };
    let rows: Vec<String> = c
        .results()
        .iter()
        .filter(|r| r.id.ends_with("/reference"))
        .filter_map(|r| {
            let entry = r.id.strip_prefix("kernel/")?.strip_suffix("/reference")?;
            let reference_s = r.median.as_secs_f64();
            let blocked_s = median_of(&format!("kernel/{entry}/blocked"))?;
            let tiled_s = median_of(&format!("kernel/{entry}/tiled"))?;
            let speedup = if blocked_s > 0.0 {
                reference_s / blocked_s
            } else {
                1.0
            };
            let speedup_tiled = if tiled_s > 0.0 { blocked_s / tiled_s } else { 1.0 };
            let gflops_tiled = entry_flops(entry)
                .filter(|_| tiled_s > 0.0)
                .map_or_else(|| "null".to_string(), |f| format!("{:.3}", f / tiled_s / 1e9));
            Some(format!(
                "    {{\"entry\": \"{entry}\", \"batch\": {BATCH}, \"reference_s\": {reference_s:.6}, \"blocked_s\": {blocked_s:.6}, \"tiled_s\": {tiled_s:.6}, \"speedup_blocked\": {speedup:.3}, \"speedup_tiled\": {speedup_tiled:.3}, \"gflops_tiled\": {gflops_tiled}}}"
            ))
        })
        .collect();
    format!("{{\n  \"benchmarks\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    let json = summary_json(&c);
    let target = gradsec_bench::workspace_target();
    let path = target.join("kernel_scaling.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");
}
