//! Round wall-clock vs engine shard count (1/2/4/8) over a lightweight
//! kilo-client fleet.
//!
//! Each measurement builds a fresh sharded federation over
//! [`SyntheticMicro`] data (fleet size via `GRADSEC_BENCH_CLIENTS`,
//! default 512) and times one full FL round — shard-scoped screening,
//! concurrent per-shard execution, canonical merge. Besides the usual
//! per-benchmark lines, a machine-readable summary (median seconds per
//! shard count plus the speedup over the 1-shard run) is written to
//! `target/shard_scaling.json` for the performance trajectory (CI uploads
//! it as a workflow artifact).
//!
//! Results are bit-identical across shard counts (that is asserted by
//! `tests/integration_sharding.rs` and `repro_shards`); this bench only
//! measures how the wall clock scales.

use std::sync::Arc;

use criterion::{criterion_group, Criterion};

use gradsec_data::SyntheticMicro;
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::runner::{Federation, ShardedFederation};
use gradsec_fl::ExecutionEngine;
use gradsec_nn::zoo;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const DIM: usize = 8;

fn fleet_size() -> usize {
    std::env::var("GRADSEC_BENCH_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512)
}

fn federation(clients: usize, shards: usize) -> ShardedFederation {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, DIM, 5));
    Federation::builder(TrainingPlan {
        rounds: 1,
        clients_per_round: clients,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::tiny_mlp(DIM, 4, 2, 13).expect("tiny MLP builds"))
    .clients(clients, data)
    .shards(shards)
    .engine(ExecutionEngine::new(2))
    .build_sharded()
    .expect("sharded federation builds")
}

fn bench_shards(c: &mut Criterion) {
    let clients = fleet_size();
    let mut group = c.benchmark_group("shard_round");
    group.sample_size(5);
    for shards in SHARD_COUNTS {
        group.bench_function(format!("{shards}s"), |b| {
            b.iter_batched(
                || federation(clients, shards),
                |mut fed| fed.run_round().expect("round runs"),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shards);

/// Renders the JSON summary from the harness's measurements: median
/// seconds per shard count plus speedup over the 1-shard round.
fn summary_json(c: &Criterion, clients: usize) -> String {
    let baseline = c
        .results()
        .iter()
        .find(|r| r.id == "shard_round/1s")
        .map(|r| r.median.as_secs_f64());
    let rows: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            let shards = r
                .id
                .split_once('/')
                .map_or("?", |(_, s)| s.trim_end_matches('s'));
            let secs = r.median.as_secs_f64();
            let speedup = baseline
                .filter(|&b| secs > 0.0 && b > 0.0)
                .map(|b| b / secs)
                .unwrap_or(1.0);
            format!(
                "    {{\"shards\": \"{shards}\", \"clients\": {clients}, \"median_s\": {secs:.6}, \"speedup_vs_1shard\": {speedup:.3}}}"
            )
        })
        .collect();
    format!("{{\n  \"benchmarks\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    let json = summary_json(&c, fleet_size());
    let target = gradsec_bench::workspace_target();
    let path = target.join("shard_scaling.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");
}
