//! Static GradSec overhead (Table 6's static block): real wall-clock of
//! one protected training cycle per configuration, plus the analytical
//! estimator's throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gradsec_core::trainer::{estimate_cycle, SecureTrainer};
use gradsec_data::SyntheticCifar100;
use gradsec_nn::zoo;
use gradsec_tee::cost::CostModel;

fn cycle_batches() -> Vec<Vec<usize>> {
    (0..2).map(|b| (b * 8..(b + 1) * 8).collect()).collect()
}

fn bench_static_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_cycle");
    group.sample_size(10);
    let ds = SyntheticCifar100::with_classes(64, 10, 1);
    let configs: [(&str, Vec<usize>); 4] = [
        ("baseline", vec![]),
        ("L2", vec![1]),
        ("L5", vec![4]),
        ("L2+L5", vec![1, 4]),
    ];
    for (name, protected) in configs {
        group.bench_function(name, |b| {
            let mut model = zoo::lenet5_with(10, 2).unwrap();
            let mut trainer = SecureTrainer::new();
            let batches = cycle_batches();
            b.iter(|| {
                black_box(
                    trainer
                        .run_cycle(&mut model, &ds, &batches, 0.01, &protected)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let model = zoo::lenet5(1).unwrap();
    let cost = CostModel::raspberry_pi3();
    c.bench_function("estimate_cycle_l2_l5", |b| {
        b.iter(|| black_box(estimate_cycle(&model, &[1, 4], 10, 32, &cost).unwrap()))
    });
}

criterion_group!(benches, bench_static_cycles, bench_estimator);
criterion_main!(benches);
