//! Microbenchmarks of the substrates the reproduction is built on:
//! tensor kernels, crypto primitives, secure storage and the trusted
//! channel.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gradsec_tee::crypto::chacha20::{xor_stream, KEY_LEN, NONCE_LEN};
use gradsec_tee::crypto::hmac::hmac_sha256;
use gradsec_tee::crypto::sha256::sha256;
use gradsec_tee::storage::SecureStorage;
use gradsec_tee::ta::Uuid;
use gradsec_tee::tiop::{Role, SecureChannel};
use gradsec_tensor::ops::conv::{conv2d_forward, Conv2dGeometry};
use gradsec_tensor::ops::matmul::matmul;
use gradsec_tensor::{init, Tensor};

fn bench_tensor(c: &mut Criterion) {
    let a = init::uniform(&[128, 128], -1.0, 1.0, 1);
    let b = init::uniform(&[128, 128], -1.0, 1.0, 2);
    c.bench_function("matmul_128x128", |bch| {
        bch.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
    });
    // LeNet-5 L1 geometry at batch 8.
    let geo = Conv2dGeometry::new(3, 32, 32, 12, 5, 2, 2).unwrap();
    let x = init::uniform(&[8, 3, 32, 32], 0.0, 1.0, 3);
    let w = init::uniform(&[12, 75], -0.3, 0.3, 4);
    let bias = Tensor::zeros(&[12]);
    c.bench_function("conv2d_lenet_l1_batch8", |bch| {
        bch.iter(|| conv2d_forward(black_box(&x), black_box(&w), &bias, &geo).unwrap())
    });
}

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xabu8; 64 * 1024];
    c.bench_function("sha256_64k", |bch| bch.iter(|| sha256(black_box(&data))));
    c.bench_function("hmac_sha256_64k", |bch| {
        bch.iter(|| hmac_sha256(b"key", black_box(&data)))
    });
    let key = [7u8; KEY_LEN];
    let nonce = [9u8; NONCE_LEN];
    c.bench_function("chacha20_64k", |bch| {
        bch.iter_batched(
            || data.clone(),
            |mut buf| xor_stream(&key, 1, &nonce, &mut buf),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_tee_services(c: &mut Criterion) {
    let payload = vec![0x5au8; 4096];
    c.bench_function("secure_storage_put_get_4k", |bch| {
        let mut store = SecureStorage::new(b"dev", 1);
        let ta = Uuid::from_name("bench-ta");
        bch.iter(|| {
            store.put(ta, "obj", black_box(&payload)).unwrap();
            black_box(store.get(ta, "obj").unwrap());
        })
    });
    c.bench_function("trusted_channel_roundtrip_4k", |bch| {
        let mut tx = SecureChannel::established(b"s", Role::Server);
        let mut rx = SecureChannel::established(b"s", Role::Client);
        bch.iter(|| {
            let f = tx.seal(black_box(&payload));
            black_box(rx.open(&f).unwrap());
        })
    });
}

criterion_group!(benches, bench_tensor, bench_crypto, bench_tee_services);
criterion_main!(benches);
