//! Transport overhead of one federated round: in-process dispatch vs the
//! channel-backed pair vs loopback TCP.
//!
//! Each group builds one 4-client LeNet-5 federation per transport and
//! times successive FL rounds (screen → download → train → upload →
//! aggregate); fleet setup and teardown stay outside the measurement.
//! The protocol bytes are identical on every transport, so the delta is
//! pure transport cost: envelope copies, thread wake-ups and socket
//! syscalls. A machine-readable summary
//! (median seconds per transport plus the overhead over the in-process
//! round) is written to `target/transport_overhead.json`.
//!
//! Expect loopback TCP within a few percent of in-process for LeNet-5
//! shapes — the round is dominated by training compute, which is the
//! point of the design: the transport seam is cheap enough to leave on.
//!
//! A second group isolates the exchange itself (no training): a
//! `ModelDownload` for the LeNet-5 global weights sent to a client that
//! echoes an error (cheapest legal reply), which bounds the per-message
//! framing + pipe cost alone.
//!
//! A final (non-criterion) probe scales the session count to 1k
//! (`GRADSEC_MUX_SESSIONS` overrides; clamped to the descriptor limit)
//! and times one full round over threaded TCP vs the multiplexed
//! transport, contributing the `sessions_per_core` and
//! `mux_vs_threaded` columns to the JSON summary — the same columns the
//! `repro_rounds` mux gate exports (which overwrites this file in CI).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};

use gradsec_data::{SyntheticCifar100, SyntheticMicro};
use gradsec_fl::config::{MuxOptions, TrainingPlan, TransportKind};
use gradsec_fl::message::{encode, Envelope, MessageKind, ModelDownload};
use gradsec_fl::runner::Federation;
use gradsec_fl::transport::inprocess::channel_pair;
use gradsec_fl::transport::poller::{fd_soft_limit, raise_fd_soft_limit};
use gradsec_fl::transport::{tcp, ClientEndpoint, ServerEndpoint};
use gradsec_nn::zoo;

fn federation(transport: TransportKind) -> Federation {
    let data = Arc::new(SyntheticCifar100::with_classes(64, 2, 5));
    Federation::builder(TrainingPlan {
        rounds: 1,
        clients_per_round: 4,
        batches_per_cycle: 1,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::lenet5_with(2, 3).expect("LeNet-5 builds"))
    .clients(4, data)
    .transport(transport)
    .build()
    .expect("federation builds")
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_round");
    group.sample_size(5);
    for (name, transport) in [
        ("inprocess", TransportKind::InProcess),
        ("tcp", TransportKind::Tcp),
        ("mux", TransportKind::TcpMux),
    ] {
        // One federation per transport, reused across samples (each
        // sample times one additional round), so TCP-only setup/teardown
        // — thread spawns, goodbyes, joins — stays out of the
        // measurement and the exported overhead is pure per-round cost.
        let mut fed = federation(transport);
        group.bench_function(name, |b| b.iter(|| fed.run_round().expect("round runs")));
        fed.shutdown().expect("clean teardown");
    }
    group.finish();
}

fn lenet_download() -> Envelope {
    let model = zoo::lenet5_with(2, 3).expect("LeNet-5 builds");
    Envelope::pack(
        MessageKind::ModelDownload,
        &ModelDownload {
            round: 0,
            weights: model.weights(),
            plan: TrainingPlan::default(),
            protected_layers: vec![1, 4],
        },
    )
}

/// An echo peer for the exchange-only group: replies to every request
/// with a fixed error envelope (the cheapest legal reply), so the
/// measurement isolates framing + pipe cost from training.
fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_exchange_lenet5_download");
    group.sample_size(10);
    let download = lenet_download();
    let payload_bytes = encode(&download).len();
    eprintln!("exchange payload: {payload_bytes} bytes");

    group.bench_function("channel", |b| {
        let (mut server, mut client) = channel_pair();
        let echo = std::thread::spawn(move || {
            while let Ok(req) = client.recv() {
                if req.kind == MessageKind::Goodbye {
                    break;
                }
                if client.send(Envelope::error("echo")).is_err() {
                    break;
                }
            }
        });
        b.iter(|| server.exchange(download.clone()).expect("echoed"));
        let _ = server.notify(Envelope::control(MessageKind::Goodbye));
        let _ = echo.join();
    });

    group.bench_function("tcp", |b| {
        let listener = tcp::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let echo = std::thread::spawn(move || {
            let mut client = tcp::connect(addr).expect("connect");
            while let Ok(req) = client.recv() {
                if req.kind == MessageKind::Goodbye {
                    break;
                }
                if client.send(Envelope::error("echo")).is_err() {
                    break;
                }
            }
        });
        let mut server = listener.accept().expect("accept");
        b.iter(|| server.exchange(download.clone()).expect("echoed"));
        let _ = server.notify(Envelope::control(MessageKind::Goodbye));
        let _ = echo.join();
    });

    group.finish();
}

criterion_group!(benches, bench_round, bench_exchange);

/// Kilo-session scaling probe: one full round over threaded TCP vs the
/// multiplexed transport at `sessions` clients (every client selected),
/// timed wall-clock including fleet wiring — thread-per-connection pays
/// its thousand spawns here, the mux its event-loop connects; that
/// asymmetry is the measurement. Returns a JSON object for the summary.
fn fleet_probe() -> String {
    let requested = std::env::var("GRADSEC_MUX_SESSIONS")
        .ok()
        .and_then(|v| v.split(',').next().and_then(|t| t.trim().parse().ok()))
        .unwrap_or(1_000usize);
    let cap = raise_fd_soft_limit()
        .or_else(fd_soft_limit)
        .map(|fds| (fds.saturating_sub(64) / 2) as usize)
        .unwrap_or(usize::MAX);
    let sessions = requested.min(cap).max(1);
    let run = |transport| {
        let data = Arc::new(SyntheticMicro::new(2 * sessions, 2, 8, 5));
        let start = Instant::now();
        let mut fed = Federation::builder(TrainingPlan {
            rounds: 1,
            clients_per_round: sessions,
            batches_per_cycle: 1,
            batch_size: 2,
            learning_rate: 0.05,
            seed: 7,
        })
        .model(|| zoo::tiny_mlp(8, 4, 2, 13).expect("tiny MLP builds"))
        .clients(sessions, data)
        .transport(transport)
        .build()
        .expect("fleet builds");
        fed.run().expect("round runs");
        let wall = start.elapsed().as_secs_f64();
        fed.shutdown().expect("clean teardown");
        wall
    };
    eprintln!("fleet probe: {sessions} sessions over threaded TCP…");
    let tcp_s = run(TransportKind::Tcp);
    eprintln!("fleet probe: threaded {tcp_s:.3}s; multiplexed…");
    let mux_s = run(TransportKind::TcpMux);
    let loops = MuxOptions::default().effective_loops();
    eprintln!(
        "fleet probe: mux {mux_s:.3}s ({loops} event loops, {} sessions/core)",
        sessions.div_ceil(loops)
    );
    format!(
        "{{\"sessions\": {sessions}, \"event_loops\": {loops}, \"sessions_per_core\": {}, \
         \"threaded_round_s\": {tcp_s:.6}, \"mux_round_s\": {mux_s:.6}, \
         \"mux_vs_threaded\": {:.4}}}",
        sessions.div_ceil(loops),
        mux_s / tcp_s
    )
}

/// Renders the JSON summary: median seconds per transport plus overhead
/// of each transport over the in-process round.
fn summary_json(c: &Criterion) -> String {
    let baseline = c
        .results()
        .iter()
        .find(|r| r.id == "transport_round/inprocess")
        .map(|r| r.median.as_secs_f64());
    let rows: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            let (group, name) = r.id.split_once('/').unwrap_or((r.id.as_str(), "?"));
            let secs = r.median.as_secs_f64();
            let overhead = if group == "transport_round" {
                baseline
                    .filter(|&b| b > 0.0)
                    .map(|b| (secs / b - 1.0) * 100.0)
            } else {
                None
            };
            format!(
                "    {{\"group\": \"{}\", \"transport\": \"{}\", \"median_s\": {:.9}, \"overhead_vs_inprocess_pct\": {}}}",
                group,
                name,
                secs,
                overhead
                    .map(|o| format!("{o:.2}"))
                    .unwrap_or_else(|| "null".to_owned()),
            )
        })
        .collect();
    format!(
        "{{\n  \"benchmarks\": [\n{}\n  ],\n  \"fleet\": {}\n}}\n",
        rows.join(",\n"),
        fleet_probe()
    )
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    let json = summary_json(&c);
    let target = gradsec_bench::workspace_target();
    let path = target.join("transport_overhead.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");
}
