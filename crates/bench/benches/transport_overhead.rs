//! Transport overhead of one federated round: in-process dispatch vs the
//! channel-backed pair vs loopback TCP.
//!
//! Each group builds one 4-client LeNet-5 federation per transport and
//! times successive FL rounds (screen → download → train → upload →
//! aggregate); fleet setup and teardown stay outside the measurement.
//! The protocol bytes are identical on every transport, so the delta is
//! pure transport cost: envelope copies, thread wake-ups and socket
//! syscalls. A machine-readable summary
//! (median seconds per transport plus the overhead over the in-process
//! round) is written to `target/transport_overhead.json`.
//!
//! Expect loopback TCP within a few percent of in-process for LeNet-5
//! shapes — the round is dominated by training compute, which is the
//! point of the design: the transport seam is cheap enough to leave on.
//!
//! A second group isolates the exchange itself (no training): a
//! `ModelDownload` for the LeNet-5 global weights sent to a client that
//! echoes an error (cheapest legal reply), which bounds the per-message
//! framing + pipe cost alone.

use std::sync::Arc;

use criterion::{criterion_group, Criterion};

use gradsec_data::SyntheticCifar100;
use gradsec_fl::config::{TrainingPlan, TransportKind};
use gradsec_fl::message::{encode, Envelope, MessageKind, ModelDownload};
use gradsec_fl::runner::Federation;
use gradsec_fl::transport::inprocess::channel_pair;
use gradsec_fl::transport::{tcp, ClientEndpoint, ServerEndpoint};
use gradsec_nn::zoo;

fn federation(transport: TransportKind) -> Federation {
    let data = Arc::new(SyntheticCifar100::with_classes(64, 2, 5));
    Federation::builder(TrainingPlan {
        rounds: 1,
        clients_per_round: 4,
        batches_per_cycle: 1,
        batch_size: 4,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::lenet5_with(2, 3).expect("LeNet-5 builds"))
    .clients(4, data)
    .transport(transport)
    .build()
    .expect("federation builds")
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_round");
    group.sample_size(5);
    for (name, transport) in [
        ("inprocess", TransportKind::InProcess),
        ("tcp", TransportKind::Tcp),
    ] {
        // One federation per transport, reused across samples (each
        // sample times one additional round), so TCP-only setup/teardown
        // — thread spawns, goodbyes, joins — stays out of the
        // measurement and the exported overhead is pure per-round cost.
        let mut fed = federation(transport);
        group.bench_function(name, |b| b.iter(|| fed.run_round().expect("round runs")));
        fed.shutdown().expect("clean teardown");
    }
    group.finish();
}

fn lenet_download() -> Envelope {
    let model = zoo::lenet5_with(2, 3).expect("LeNet-5 builds");
    Envelope::pack(
        MessageKind::ModelDownload,
        &ModelDownload {
            round: 0,
            weights: model.weights(),
            plan: TrainingPlan::default(),
            protected_layers: vec![1, 4],
        },
    )
}

/// An echo peer for the exchange-only group: replies to every request
/// with a fixed error envelope (the cheapest legal reply), so the
/// measurement isolates framing + pipe cost from training.
fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_exchange_lenet5_download");
    group.sample_size(10);
    let download = lenet_download();
    let payload_bytes = encode(&download).len();
    eprintln!("exchange payload: {payload_bytes} bytes");

    group.bench_function("channel", |b| {
        let (mut server, mut client) = channel_pair();
        let echo = std::thread::spawn(move || {
            while let Ok(req) = client.recv() {
                if req.kind == MessageKind::Goodbye {
                    break;
                }
                if client.send(Envelope::error("echo")).is_err() {
                    break;
                }
            }
        });
        b.iter(|| server.exchange(download.clone()).expect("echoed"));
        let _ = server.notify(Envelope::control(MessageKind::Goodbye));
        let _ = echo.join();
    });

    group.bench_function("tcp", |b| {
        let listener = tcp::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let echo = std::thread::spawn(move || {
            let mut client = tcp::connect(addr).expect("connect");
            while let Ok(req) = client.recv() {
                if req.kind == MessageKind::Goodbye {
                    break;
                }
                if client.send(Envelope::error("echo")).is_err() {
                    break;
                }
            }
        });
        let mut server = listener.accept().expect("accept");
        b.iter(|| server.exchange(download.clone()).expect("echoed"));
        let _ = server.notify(Envelope::control(MessageKind::Goodbye));
        let _ = echo.join();
    });

    group.finish();
}

criterion_group!(benches, bench_round, bench_exchange);

/// Renders the JSON summary: median seconds per transport plus overhead
/// of each transport over the in-process round.
fn summary_json(c: &Criterion) -> String {
    let baseline = c
        .results()
        .iter()
        .find(|r| r.id == "transport_round/inprocess")
        .map(|r| r.median.as_secs_f64());
    let rows: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            let (group, name) = r.id.split_once('/').unwrap_or((r.id.as_str(), "?"));
            let secs = r.median.as_secs_f64();
            let overhead = if group == "transport_round" {
                baseline
                    .filter(|&b| b > 0.0)
                    .map(|b| (secs / b - 1.0) * 100.0)
            } else {
                None
            };
            format!(
                "    {{\"group\": \"{}\", \"transport\": \"{}\", \"median_s\": {:.9}, \"overhead_vs_inprocess_pct\": {}}}",
                group,
                name,
                secs,
                overhead
                    .map(|o| format!("{o:.2}"))
                    .unwrap_or_else(|| "null".to_owned()),
            )
        })
        .collect();
    format!("{{\n  \"benchmarks\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    let json = summary_json(&c);
    let target = gradsec_bench::workspace_target();
    let path = target.join("transport_overhead.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");
}
