//! The **hostile-fleet gate**: kilo-client rounds with a pinned 20%
//! poisoner fraction must (a) stay bit-identical across every execution
//! path — flat over the in-process, threaded-TCP and multiplexed
//! transports, engine-sharded, and real shard-server processes — under
//! one scenario seed, and (b) demonstrate the robustness separation:
//! coordinate-trimmed mean and median commit within a pinned divergence
//! bound of the clean (adversary-free) reference while plain FedAvg
//! blows past it.
//!
//! The gate table (divergence numbers, per-path identity bits, wall
//! clocks) is spliced into `target/transport_overhead.json` as an
//! `"adversarial"` row — the same artifact the mux and distributed
//! gates ship from CI — and exits non-zero on any determinism miss or a
//! robust aggregator that fails to hold the bound.
//!
//! Environment:
//!
//! * `GRADSEC_ADV_SESSIONS=n` — fleet size (default 1000).
//! * `GRADSEC_ADV_GATE=0` — skip the gate (useful when loopback or
//!   process spawning is unavailable).

use std::sync::Arc;
use std::time::Instant;

use gradsec_data::SyntheticMicro;
use gradsec_fl::config::{TrainingPlan, TransportKind};
use gradsec_fl::message::{DatasetSpec, ModelSpec};
use gradsec_fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec_fl::{AdversaryPlan, Aggregator, DistributedCoordinator, ExecutionEngine};
use gradsec_nn::model::ModelWeights;
use gradsec_nn::zoo;
use gradsec_tee::cost::json_number;

const DIM: usize = 8;
const SCENARIO_SEED: u64 = 0xAD5E;
/// The pinned hostile fraction the gate certifies against.
const POISONERS: f64 = 0.20;
/// Robust aggregators must land within this L2 distance of the clean
/// reference; plain FedAvg under the same fleet must exceed it. Measured
/// across 200–4000-client fleets the robust estimators stay below 0.05
/// and poisoned FedAvg above 0.4, so the pinned bound has at least a 2×
/// margin on both sides — the gate trips on regressions, not on noise.
const DIVERGENCE_BOUND: f64 = 0.2;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn plan(clients_per_round: usize, rounds: u64) -> TrainingPlan {
    TrainingPlan {
        rounds,
        clients_per_round,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    }
}

/// The pinned hostile scenario: a fifth of the fleet poisons hard.
fn scenario() -> AdversaryPlan {
    AdversaryPlan::seeded(SCENARIO_SEED)
        .poisoners(POISONERS)
        .poison_strength(8.0)
        .poison_noise(1.0)
}

fn flat_builder(clients: usize, plan: TrainingPlan) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, DIM, 5));
    Federation::builder(plan)
        .model(|| zoo::tiny_mlp(DIM, 4, 2, 13).expect("tiny MLP builds"))
        .clients(clients, data)
}

fn run_flat(builder: FederationBuilder) -> (FederationReport, ModelWeights) {
    let mut fed = builder.build().expect("flat federation builds");
    let report = fed.run().expect("flat federation runs");
    let weights = fed.server().global().clone();
    fed.shutdown().expect("clean flat teardown");
    (report, weights)
}

fn l2(a: &ModelWeights, b: &ModelWeights) -> f64 {
    let mut sum = 0.0f64;
    for (x, y) in a.iter().zip(b.iter()) {
        for (p, q) in x.w.data().iter().zip(y.w.data()) {
            sum += f64::from(p - q) * f64::from(p - q);
        }
        for (p, q) in x.b.data().iter().zip(y.b.data()) {
            sum += f64::from(p - q) * f64::from(p - q);
        }
    }
    sum.sqrt()
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "bit-identical"
    } else {
        "DIVERGED"
    }
}

/// The robustness separation: hostile FedAvg must blow the pinned
/// bound, trimmed mean and median must hold it.
fn robustness_rows(clients: usize) -> (String, bool) {
    let cohort = (clients / 16).max(5);
    let trim = cohort / 4;
    let run_plan = plan(cohort, 6);
    let (_, clean_weights) = run_flat(flat_builder(clients, run_plan));
    let mut ok = true;
    let mut rows = Vec::new();
    for aggregator in [
        Aggregator::FedAvg,
        Aggregator::TrimmedMean { trim },
        Aggregator::Median,
    ] {
        let start = Instant::now();
        let (_, weights) = run_flat(
            flat_builder(clients, run_plan)
                .adversaries(scenario())
                .aggregator(aggregator),
        );
        let wall_s = start.elapsed().as_secs_f64();
        let divergence = l2(&weights, &clean_weights);
        let holds = match aggregator {
            Aggregator::FedAvg => divergence > DIVERGENCE_BOUND,
            _ => divergence <= DIVERGENCE_BOUND,
        };
        ok &= holds;
        eprintln!(
            "  {}: {divergence:.4} from clean (bound {DIVERGENCE_BOUND}), {wall_s:.3}s ({})",
            aggregator.name(),
            if holds { "ok" } else { "GATE MISS" }
        );
        rows.push(format!(
            r#"{{"aggregator":"{}","divergence":{},"wall_s":{},"holds":{holds}}}"#,
            aggregator.name(),
            json_number(divergence),
            json_number(wall_s),
        ));
    }
    (rows.join(","), ok)
}

/// The hostile fleet must commit the same bits on every in-process
/// path: flat over all three transports, plus engine shards.
fn transport_identity(clients: usize) -> (FederationReport, ModelWeights, bool) {
    let cohort = (clients / 16).max(5);
    let run_plan = plan(cohort, 1);
    let (ref_report, ref_weights) = run_flat(
        flat_builder(clients, run_plan)
            .adversaries(scenario())
            .aggregator(Aggregator::Median),
    );
    let mut ok = true;
    for transport in [TransportKind::Tcp, TransportKind::TcpMux] {
        let start = Instant::now();
        let (report, weights) = run_flat(
            flat_builder(clients, run_plan)
                .adversaries(scenario())
                .aggregator(Aggregator::Median)
                .transport(transport)
                .engine(ExecutionEngine::new(4)),
        );
        let identical = report == ref_report && weights == ref_weights;
        ok &= identical;
        eprintln!(
            "  {transport:?}: {:.3}s ({})",
            start.elapsed().as_secs_f64(),
            verdict(identical)
        );
    }
    for shards in [4usize, 16] {
        let mut fed = flat_builder(clients, run_plan)
            .adversaries(scenario())
            .aggregator(Aggregator::Median)
            .shards(shards)
            .engine(ExecutionEngine::new(2))
            .build_sharded()
            .expect("sharded hostile fleet builds");
        let report = fed.run().expect("sharded hostile fleet runs");
        let identical = report == ref_report && fed.server().global() == &ref_weights;
        fed.shutdown().expect("clean sharded teardown");
        ok &= identical;
        eprintln!("  {shards} engine shards: {}", verdict(identical));
    }
    (ref_report, ref_weights, ok)
}

/// The hostile fleet across real process boundaries: every
/// `(processes, workers)` cell re-derives identical personas from the
/// shipped scenario plan.
fn process_identity(
    clients: usize,
    ref_report: &FederationReport,
    ref_weights: &ModelWeights,
) -> bool {
    let cohort = (clients / 16).max(5);
    let run_plan = plan(cohort, 1);
    let mut ok = true;
    for (procs, workers) in [(2usize, 2usize), (4, 1)] {
        let start = Instant::now();
        let mut coord = DistributedCoordinator::builder(run_plan)
            .clients(
                clients,
                DatasetSpec::Micro {
                    len: 2 * clients as u64,
                    classes: 2,
                    dim: DIM as u64,
                    seed: 5,
                },
            )
            .model(ModelSpec::TinyMlp {
                inputs: DIM as u64,
                hidden: 4,
                outputs: 2,
                seed: 13,
            })
            .adversaries(scenario())
            .aggregator(Aggregator::Median)
            .shards(procs)
            .workers(workers)
            .launch()
            .expect("hostile distributed fleet launches");
        let report = coord.run().expect("hostile distributed round completes");
        let identical = report == *ref_report && coord.server().global() == ref_weights;
        coord.shutdown().expect("clean distributed teardown");
        ok &= identical;
        eprintln!(
            "  {procs} procs x {workers} workers: {:.3}s ({})",
            start.elapsed().as_secs_f64(),
            verdict(identical)
        );
    }
    ok
}

/// Splices the `"adversarial"` row into `target/transport_overhead.json`
/// (created standalone when the other gates haven't run yet), so one CI
/// artifact carries every gate's table.
fn splice_into_overhead(row: &str) {
    let path = gradsec_bench::workspace_target().join("transport_overhead.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let merged = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix('}') {
                Some(head) if !trimmed.is_empty() => {
                    format!("{head},\"adversarial\":{row}}}")
                }
                _ => format!(r#"{{"adversarial":{row}}}"#),
            }
        }
        Err(_) => format!(r#"{{"adversarial":{row}}}"#),
    };
    match std::fs::write(&path, &merged) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    if std::env::var("GRADSEC_ADV_GATE").as_deref() == Ok("0") {
        eprintln!("GRADSEC_ADV_GATE=0: skipping the hostile-fleet gate");
        return;
    }
    let clients = env_u64("GRADSEC_ADV_SESSIONS", 1_000).max(16) as usize;
    eprintln!(
        "{clients}-client hostile-fleet gate: {}% poisoners, robustness + cross-path identity…",
        (POISONERS * 100.0) as u32
    );
    let (divergence_json, robust_ok) = robustness_rows(clients);
    let (ref_report, ref_weights, transport_ok) = transport_identity(clients);
    let process_ok = process_identity(clients, &ref_report, &ref_weights);

    let row = format!(
        r#"{{"sessions":{clients},"poisoner_fraction":{},"divergence_bound":{},"robust_holds":{robust_ok},"transport_identical":{transport_ok},"process_identical":{process_ok},"divergence":[{divergence_json}]}}"#,
        json_number(POISONERS),
        json_number(DIVERGENCE_BOUND),
    );
    splice_into_overhead(&row);
    println!("{row}");
    if !robust_ok {
        eprintln!(
            "FAIL: a robust aggregator missed the divergence bound (or fedavg held it) \
             under {}% poisoners",
            (POISONERS * 100.0) as u32
        );
        std::process::exit(1);
    }
    if !(transport_ok && process_ok) {
        eprintln!("FAIL: a hostile-fleet path diverged from the in-process reference");
        std::process::exit(1);
    }
}
