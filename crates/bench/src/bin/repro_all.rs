//! Runs every reproduction experiment in sequence (Tables 1, 5, 6 and
//! Figures 5-8).

use gradsec_bench::experiments::{fig5, fig6, fig7, fig8, table1, table5, table6};
use gradsec_bench::{master_seed, Profile};

fn main() {
    let profile = Profile::from_env();
    let seed = master_seed();
    println!("GradSec reproduction — full suite (profile {profile:?}, seed {seed})\n");

    println!("==== Table 6 ====");
    let t6 = table6::run();
    println!("{}", table6::render(&t6));

    println!("==== Figure 7 ====");
    println!("{}", fig7::render(&fig7::from_table6(&t6)));

    println!("==== Figure 8 ====");
    println!("{}", fig8::render(&fig8::run()));

    println!("==== Figure 5 ====");
    println!("{}", fig5::render(&fig5::run(profile, seed)));

    println!("==== Figure 6 ====");
    println!("{}", fig6::render(&fig6::run(profile, seed)));

    println!("==== Table 5 ====");
    println!("{}", table5::render(&table5::run(profile, seed)));

    println!("==== Table 1 ====");
    println!("{}", table1::render(&table1::run(profile, seed)));
}
