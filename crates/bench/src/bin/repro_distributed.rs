//! The **multi-process federation gate**: kilo-client rounds driven by a
//! [`DistributedCoordinator`] over real shard-server child processes
//! must be bit-identical to the flat in-process reference for every
//! `(shard processes, workers)` configuration — (1,2,4) × (1,2,4) —
//! plus a fixed-fault-seed run, a sub-sampled-screening run, and a
//! killed-shard run where a SIGKILLed shard process must downgrade to
//! an excluded cohort instead of collapsing the federation.
//!
//! The gate table (wall clocks, bytes on the wire, clients per
//! worker-core) is spliced into `target/transport_overhead.json` as a
//! `"distributed"` row — the same artifact the `repro_rounds` mux gate
//! ships from CI — and exits non-zero when any configuration diverges
//! from the reference or the killed-shard run fails to commit.
//!
//! Environment:
//!
//! * `GRADSEC_DIST_SESSIONS=n` — fleet size (default 1000).
//! * `GRADSEC_DIST_GATE=0` — skip the gate (useful when loopback or
//!   process spawning is unavailable).

use std::sync::Arc;
use std::time::Instant;

use gradsec_data::SyntheticMicro;
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::distributed::DistributedBuilder;
use gradsec_fl::message::{DatasetSpec, ModelSpec};
use gradsec_fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec_fl::{CodecKind, DistributedCoordinator, FaultPlan, LatencyModel};
use gradsec_nn::model::ModelWeights;
use gradsec_nn::zoo;
use gradsec_tee::cost::json_number;

const DIM: usize = 8;
const FAULT_SEED: u64 = 0xFA417;
const PROCS: [usize; 3] = [1, 2, 4];
const WORKERS: [usize; 3] = [1, 2, 4];
/// Codec-row model width (wide enough that tensor metadata cannot mask
/// the lossy codecs' byte reduction — mirrors the `repro_rounds` gate).
const CODEC_DIM: usize = 32;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn plan(clients_per_round: usize, rounds: u64) -> TrainingPlan {
    TrainingPlan {
        rounds,
        clients_per_round,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    }
}

/// The flat in-process reference, built from the exact recipe every
/// shard server reconstructs from its `ShardConfig` (synthetic-micro
/// data under the global partition, tiny MLP, all-TrustZone devices,
/// plain SGD trainers).
fn flat_builder(clients: usize, plan: TrainingPlan) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, DIM, 5));
    Federation::builder(plan)
        .model(|| zoo::tiny_mlp(DIM, 4, 2, 13).expect("tiny MLP builds"))
        .clients(clients, data)
}

fn run_flat(builder: FederationBuilder) -> (FederationReport, ModelWeights) {
    let mut fed = builder.build().expect("flat reference builds");
    let report = fed.run().expect("flat reference runs");
    let weights = fed.server().global().clone();
    fed.shutdown().expect("clean flat teardown");
    (report, weights)
}

fn distributed_builder(clients: usize, plan: TrainingPlan) -> DistributedBuilder {
    DistributedCoordinator::builder(plan)
        .clients(
            clients,
            DatasetSpec::Micro {
                len: 2 * clients as u64,
                classes: 2,
                dim: DIM as u64,
                seed: 5,
            },
        )
        .model(ModelSpec::TinyMlp {
            inputs: DIM as u64,
            hidden: 4,
            outputs: 2,
            seed: 13,
        })
}

fn fault_plan() -> FaultPlan {
    FaultPlan::seeded(FAULT_SEED)
        .dropout(0.10)
        .drop_messages(0.05)
        .garble_replies(0.02)
        .latency(LatencyModel::Exponential { mean_s: 0.5 })
        .spare(24)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "bit-identical"
    } else {
        "DIVERGED"
    }
}

struct DistRow {
    procs: usize,
    workers: usize,
    wall_s: f64,
    bytes_out: u64,
    bytes_in: u64,
    identical: bool,
}

/// The (processes × workers) bit-identity matrix against the flat
/// reference. Every cell spawns real shard-server child processes.
fn identity_matrix(clients: usize) -> (Vec<DistRow>, bool) {
    let (ref_report, ref_weights) = run_flat(flat_builder(clients, plan(clients, 1)));
    let mut rows = Vec::new();
    let mut all_identical = true;
    for procs in PROCS {
        for workers in WORKERS {
            let start = Instant::now();
            let mut coord = distributed_builder(clients, plan(clients, 1))
                .shards(procs)
                .workers(workers)
                .launch()
                .expect("distributed fleet launches");
            let report = coord.run().expect("distributed round completes");
            let wall_s = start.elapsed().as_secs_f64();
            let identical = report == ref_report && coord.server().global() == &ref_weights;
            let (bytes_out, bytes_in) = coord.bytes_on_wire();
            coord.shutdown().expect("clean distributed teardown");
            all_identical &= identical;
            eprintln!(
                "  {procs} procs x {workers} workers: {wall_s:.3}s, \
                 {bytes_out}B out / {bytes_in}B in ({})",
                verdict(identical)
            );
            rows.push(DistRow {
                procs,
                workers,
                wall_s,
                bytes_out,
                bytes_in,
                identical,
            });
        }
    }
    (rows, all_identical)
}

/// Fixed fault seed: the distributed faulted round must match the flat
/// faulted round bit for bit (every fault decision is a pure function
/// of seed/client/message, never of which process hosts the client).
fn faulted_identical(clients: usize) -> bool {
    let cohort = (clients / 16).max(1);
    let (ref_report, ref_weights) =
        run_flat(flat_builder(clients, plan(cohort, 1)).faults(fault_plan()));
    let mut ok = true;
    for procs in [2usize, 4] {
        let mut coord = distributed_builder(clients, plan(cohort, 1))
            .faults(fault_plan())
            .shards(procs)
            .workers(2)
            .launch()
            .expect("faulted distributed fleet launches");
        let report = coord.run().expect("faulted distributed round completes");
        let identical = report == ref_report && coord.server().global() == &ref_weights;
        coord.shutdown().expect("clean faulted teardown");
        eprintln!("  faulted, {procs} procs: {}", verdict(identical));
        ok &= identical;
    }
    ok
}

/// Sub-sampled screening: with the per-round candidate cap the
/// distributed pick set (and everything downstream) must still match
/// the flat capped reference.
fn screening_identical(clients: usize) -> bool {
    let cohort = (clients / 16).max(1);
    let cap = (clients / 4).max(1);
    let (ref_report, ref_weights) =
        run_flat(flat_builder(clients, plan(cohort, 2)).screening_sample(cap));
    let mut coord = distributed_builder(clients, plan(cohort, 2))
        .screening_sample(cap)
        .shards(2)
        .workers(2)
        .launch()
        .expect("capped distributed fleet launches");
    let report = coord.run().expect("capped distributed rounds complete");
    let identical = report == ref_report && coord.server().global() == &ref_weights;
    coord.shutdown().expect("clean capped teardown");
    eprintln!("  screening cap {cap} of {clients}: {}", verdict(identical));
    identical
}

/// Per-codec cross-deployment rows: with the *same* codec — identity or
/// lossy — a distributed run must stay bit-identical to the flat run
/// with that codec, ledger byte columns included (the wire bill is a
/// pure function of the exchanged weights). The steady-state
/// bytes-per-round and compression ratio ride along into the artifact.
fn codec_rows(clients: usize) -> (String, bool) {
    let cohort = (clients / 16).max(1);
    let run_plan = plan(cohort, 2);
    let mut ok = true;
    let mut rows = Vec::new();
    for codec in [CodecKind::Identity, CodecKind::Int8, CodecKind::DeltaTopK] {
        let data = Arc::new(SyntheticMicro::new(2 * clients, 2, CODEC_DIM, 5));
        let flat = Federation::builder(run_plan)
            .model(|| zoo::tiny_mlp(CODEC_DIM, 16, 2, 13).expect("tiny MLP builds"))
            .clients(clients, data)
            .codec(codec);
        let (ref_report, ref_weights) = run_flat(flat);
        let mut coord = DistributedCoordinator::builder(run_plan)
            .clients(
                clients,
                DatasetSpec::Micro {
                    len: 2 * clients as u64,
                    classes: 2,
                    dim: CODEC_DIM as u64,
                    seed: 5,
                },
            )
            .model(ModelSpec::TinyMlp {
                inputs: CODEC_DIM as u64,
                hidden: 16,
                outputs: 2,
                seed: 13,
            })
            .codec(codec)
            .shards(2)
            .workers(2)
            .launch()
            .expect("codec fleet launches");
        let report = coord.run().expect("codec rounds complete");
        let identical = report == ref_report && coord.server().global() == &ref_weights;
        coord.shutdown().expect("clean codec teardown");
        ok &= identical;
        let wire = report
            .rounds
            .last()
            .expect("codec run completed rounds")
            .ledger
            .total_wire();
        eprintln!(
            "  codec {}: last-round {}B encoded / {}B dense ({:.2}x) ({})",
            codec.name(),
            wire.encoded_bytes(),
            wire.raw_bytes(),
            wire.compression_ratio(),
            verdict(identical)
        );
        rows.push(format!(
            r#"{{"codec":"{}","last_round_encoded_bytes":{},"last_round_raw_bytes":{},"compression_ratio":{},"identical":{identical}}}"#,
            codec.name(),
            wire.encoded_bytes(),
            wire.raw_bytes(),
            json_number(wire.compression_ratio()),
        ));
    }
    (rows.join(","), ok)
}

/// The stretch fault: SIGKILL one shard process between rounds. The
/// next round must commit from the surviving shard with the dead
/// shard's clients excluded — never a process-wide failure.
fn killed_shard_survives(clients: usize) -> bool {
    let cohort = (clients / 16).max(1);
    let mut coord = distributed_builder(clients, plan(cohort, 2))
        .shards(2)
        .workers(2)
        .launch()
        .expect("kill-run fleet launches");
    let first = coord.run_round().expect("pre-kill round completes");
    coord.kill_shard(1).expect("kill delivers");
    let dead = coord.layout().range(1);
    let second = match coord.run_round() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("  killed shard collapsed the federation: {e}");
            let _ = coord.shutdown();
            return false;
        }
    };
    let excluded = second.participants.iter().all(|c| !dead.contains(c));
    let committed = !second.participants.is_empty();
    let teardown_clean = coord.shutdown().is_ok();
    eprintln!(
        "  killed shard: round {} committed {} participants, dead cohort excluded: {}, \
         teardown clean: {} (pre-kill round committed {})",
        second.round,
        second.participants.len(),
        excluded,
        teardown_clean,
        first.participants.len()
    );
    committed && excluded && teardown_clean
}

/// Splices the `"distributed"` row into `target/transport_overhead.json`
/// (created standalone when the mux gate hasn't run yet), so one CI
/// artifact carries both transports' scaling tables.
fn splice_into_overhead(row: &str) {
    let path = gradsec_bench::workspace_target().join("transport_overhead.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let merged = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix('}') {
                Some(head) if !trimmed.is_empty() => {
                    format!("{head},\"distributed\":{row}}}")
                }
                _ => format!(r#"{{"distributed":{row}}}"#),
            }
        }
        Err(_) => format!(r#"{{"distributed":{row}}}"#),
    };
    match std::fs::write(&path, &merged) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    if std::env::var("GRADSEC_DIST_GATE").as_deref() == Ok("0") {
        eprintln!("GRADSEC_DIST_GATE=0: skipping the distributed-federation gate");
        return;
    }
    let clients = env_u64("GRADSEC_DIST_SESSIONS", 1_000).max(1) as usize;
    eprintln!(
        "{clients}-client distributed gate: flat reference + (1,2,4 procs) x (1,2,4 workers)…"
    );
    let (rows, matrix_ok) = identity_matrix(clients);
    let faulted_ok = faulted_identical(clients);
    let screening_ok = screening_identical(clients);
    let (codec_json, codec_ok) = codec_rows(clients);
    let kill_ok = killed_shard_survives(clients);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                r#"{{"procs":{},"workers":{},"wall_s":{},"bytes_out":{},"bytes_in":{},"sessions_per_core":{},"identical":{}}}"#,
                r.procs,
                r.workers,
                json_number(r.wall_s),
                r.bytes_out,
                r.bytes_in,
                clients.div_ceil((r.procs * r.workers).min(cores)),
                r.identical
            )
        })
        .collect();
    let row = format!(
        r#"{{"sessions":{clients},"host_cores":{cores},"all_bit_identical":{matrix_ok},"faulted_identical":{faulted_ok},"screening_identical":{screening_ok},"codec_identical":{codec_ok},"killed_shard_survives":{kill_ok},"codecs":[{codec_json}],"matrix":[{}]}}"#,
        json_rows.join(",")
    );
    splice_into_overhead(&row);
    println!("{row}");
    if !(matrix_ok && faulted_ok && screening_ok && codec_ok) {
        eprintln!("FAIL: a distributed configuration diverged from the flat reference");
        std::process::exit(1);
    }
    if !kill_ok {
        eprintln!("FAIL: a killed shard process did not downgrade to an excluded cohort");
        std::process::exit(1);
    }
}
