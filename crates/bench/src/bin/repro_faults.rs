//! Chaos-at-scale repro: runs one federated round over lightweight client
//! fleets (default 1,000 clients) under a fixed fault seed — 10% dropout,
//! message loss, garbled replies, an exponential latency tail and a
//! straggler deadline, with over-provisioned selection — for 1/2/4/8
//! engine shards × 1/4 workers, asserts every faulted report and final
//! global model is **bit-identical** to the flat, sequential faulted
//! reference, and exports the wall-clock/outcome table as JSON
//! (`target/fault_scaling.json` plus stdout).
//!
//! Exits non-zero when any configuration diverges from the reference,
//! when the faulted round fails to commit a full cohort, or when no fault
//! actually landed (a silent no-op chaos run is a bug, not a pass) — so
//! CI can use the binary as an end-to-end fault-tolerance gate.
//!
//! Environment:
//!
//! * `GRADSEC_FLEETS=1000,10000` — override the fleet sizes.
//! * `GRADSEC_ROUNDS=n` — rounds per run (default 1).

use std::sync::Arc;
use std::time::Instant;

use gradsec_data::SyntheticMicro;
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec_fl::{ExecutionEngine, FaultPlan, LatencyModel};
use gradsec_nn::model::ModelWeights;
use gradsec_nn::zoo;
use gradsec_tee::cost::json_number;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKER_COUNTS: [usize; 2] = [1, 4];
const DIM: usize = 8;
const FAULT_SEED: u64 = 0xFA417;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fleets() -> Vec<usize> {
    std::env::var("GRADSEC_FLEETS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1_000])
}

fn fault_plan(clients: usize) -> FaultPlan {
    FaultPlan::seeded(FAULT_SEED)
        .dropout(0.10)
        .drop_messages(0.05)
        .garble_replies(0.02)
        .latency(LatencyModel::Exponential { mean_s: 0.5 })
        .deadline_s(1.5)
        // A quarter of the cohort again as spares keeps the round
        // committing full cohorts under the ~15% combined shed rate.
        .spare(clients / 16 / 4 + 8)
}

fn builder(clients: usize, rounds: u64) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, DIM, 5));
    Federation::builder(TrainingPlan {
        rounds,
        clients_per_round: clients / 16,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::tiny_mlp(DIM, 4, 2, 13).expect("tiny MLP builds"))
    .clients(clients, data)
    .faults(fault_plan(clients))
}

/// The flat, sequential faulted reference every sharded configuration
/// must reproduce exactly.
fn reference(clients: usize, rounds: u64) -> (FederationReport, ModelWeights, f64) {
    let mut fed = builder(clients, rounds).build().expect("flat fleet builds");
    let start = Instant::now();
    let report = fed
        .run_with(&ExecutionEngine::sequential())
        .expect("faulted reference run completes");
    let wall = start.elapsed().as_secs_f64();
    let weights = fed.server().global().clone();
    fed.shutdown().expect("clean teardown");
    (report, weights, wall)
}

fn main() {
    let rounds = env_u64("GRADSEC_ROUNDS", 1);
    let mut all_identical = true;
    let mut chaos_landed = true;
    let mut cohorts_full = true;
    let mut fleet_rows = Vec::new();
    for clients in fleets() {
        let k = clients / 16;
        eprintln!("{clients}-client fleet: flat sequential faulted reference…");
        let (flat_report, flat_weights, flat_wall) = reference(clients, rounds);
        let stragglers: usize = flat_report.rounds.iter().map(|r| r.stragglers.len()).sum();
        let failures: usize = flat_report.rounds.iter().map(|r| r.failures.len()).sum();
        let surplus: usize = flat_report.rounds.iter().map(|r| r.surplus.len()).sum();
        chaos_landed &= stragglers + failures > 0;
        cohorts_full &= flat_report.rounds.iter().all(|r| r.participants.len() == k);
        eprintln!(
            "  reference: {stragglers} stragglers, {failures} failures, {surplus} surplus \
             across {} round(s)",
            flat_report.rounds.len()
        );
        let mut rows = Vec::new();
        for shards in SHARD_COUNTS {
            for workers in WORKER_COUNTS {
                let mut fed = builder(clients, rounds)
                    .shards(shards)
                    .engine(ExecutionEngine::new(workers))
                    .build_sharded()
                    .expect("sharded fleet builds");
                let start = Instant::now();
                let report = fed.run().expect("sharded faulted run completes");
                let wall = start.elapsed().as_secs_f64();
                let identical = report == flat_report && fed.server().global() == &flat_weights;
                all_identical &= identical;
                fed.shutdown().expect("clean teardown");
                eprintln!(
                    "  {shards} shards x {workers} workers: {:.3}s ({})",
                    wall,
                    if identical {
                        "bit-identical"
                    } else {
                        "DIVERGED"
                    }
                );
                rows.push(format!(
                    r#"{{"shards":{shards},"workers":{workers},"wall_s":{},"identical":{identical}}}"#,
                    json_number(wall)
                ));
            }
        }
        fleet_rows.push(format!(
            r#"{{"clients":{clients},"rounds":{rounds},"cohort":{k},"stragglers":{stragglers},"failures":{failures},"surplus":{surplus},"flat_sequential_wall_s":{},"configs":[{}]}}"#,
            json_number(flat_wall),
            rows.join(",")
        ));
    }
    let json = format!(
        r#"{{"fault_seed":{FAULT_SEED},"fleets":[{}],"all_bit_identical":{all_identical},"chaos_landed":{chaos_landed},"cohorts_full":{cohorts_full}}}"#,
        fleet_rows.join(",")
    );
    let target = gradsec_bench::workspace_target();
    let path = target.join("fault_scaling.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");
    if !all_identical {
        eprintln!("FAIL: a faulted configuration diverged from the flat reference");
        std::process::exit(1);
    }
    if !chaos_landed {
        eprintln!("FAIL: the fault plan injected nothing — the chaos run was a no-op");
        std::process::exit(1);
    }
    if !cohorts_full {
        eprintln!("FAIL: over-provisioned selection failed to fill a cohort");
        std::process::exit(1);
    }
}
