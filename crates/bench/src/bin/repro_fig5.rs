//! Regenerates the paper's Figure 5 (DRIA ImageLoss per protected layer).

use gradsec_bench::experiments::fig5;
use gradsec_bench::{master_seed, Profile};

fn main() {
    let profile = Profile::from_env();
    println!(
        "GradSec reproduction — Figure 5 (profile {profile:?}, seed {})",
        master_seed()
    );
    println!("Paper shape: ImageLoss small unprotected; explodes when L1/L2 is sheltered.\n");
    let f = fig5::run(profile, master_seed());
    println!("{}", fig5::render(&f));
}
