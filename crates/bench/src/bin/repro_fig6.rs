//! Regenerates the paper's Figure 6 (MIA AUC per protected set).

use gradsec_bench::experiments::fig6;
use gradsec_bench::{master_seed, Profile};

fn main() {
    let profile = Profile::from_env();
    println!(
        "GradSec reproduction — Figure 6 (profile {profile:?}, seed {})",
        master_seed()
    );
    println!("Paper shape: LeNet 0.95 -> 0.85 (L5) -> 0.80 (L5..L2);");
    println!("AlexNet 0.85 / conv 0.79 / dense 0.59 / L6 0.56.\n");
    let f = fig6::run(profile, master_seed());
    println!("{}", fig6::render(&f));
}
