//! Regenerates the paper's Figure 7 (bar charts of Table 6).

use gradsec_bench::experiments::fig7;

fn main() {
    println!("GradSec reproduction — Figure 7\n");
    let f = fig7::run();
    println!("{}", fig7::render(&f));
}
