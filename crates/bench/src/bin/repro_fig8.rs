//! Regenerates the paper's Figure 8 (GradSec vs DarkneTZ).

use gradsec_bench::experiments::fig8;

fn main() {
    println!("GradSec reproduction — Figure 8");
    println!("Paper: static -8.3% time / -30% memory; dynamic -56.7% time / -8% memory.\n");
    let f = fig8::run();
    println!("{}", fig8::render(&f));
}
