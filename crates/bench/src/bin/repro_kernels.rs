//! Kernel backend scaling repro: times every `TensorBackend` op on the
//! LeNet-5 and AlexNet hot-path shapes (paper Table 4, batch 32), checks
//! `Blocked` parity against `Reference` and exports the per-op table as
//! JSON (`target/kernel_scaling.json` plus stdout).
//!
//! Exits non-zero when
//!
//! * any `Blocked` output drifts past rounding distance from
//!   `Reference`, or
//! * the `Blocked` backend fails to reach [`MIN_ALEXNET_CONV_SPEEDUP`]×
//!   over `Reference` on the AlexNet conv2d forward pass — the headline
//!   win the backend exists for —
//!
//! so CI can use the binary as a kernel-performance gate.
//!
//! Environment:
//!
//! * `GRADSEC_KERNEL_REPS=n` — timed repetitions per entry (default 5;
//!   the median is reported).
//! * `GRADSEC_KERNEL_MIN_SPEEDUP=x` — override the speedup gate
//!   (default [`MIN_ALEXNET_CONV_SPEEDUP`]). Shared CI runners with
//!   noisy neighbours can compress relative speedups, so the per-push
//!   workflow runs with a tolerant bar while the scheduled paper-scale
//!   job keeps the full one; parity is always gated.

use std::time::Instant;

use gradsec_bench::kernels::{alexnet_conv_geometries, conv_stack, ConvOperands, BATCH};
use gradsec_tee::cost::json_number;
use gradsec_tensor::backend::BackendKind;
use gradsec_tensor::init;
use gradsec_tensor::ops::conv::{conv2d_backward_with, conv2d_forward_with, Conv2dGeometry};
use gradsec_tensor::ops::matmul::{matmul_nt_with, matmul_tn_with, matmul_with};
use gradsec_tensor::ops::pool::{maxpool_forward_with, PoolGeometry};

/// The acceptance threshold on the AlexNet conv2d forward entry.
const MIN_ALEXNET_CONV_SPEEDUP: f64 = 1.3;

fn reps() -> usize {
    std::env::var("GRADSEC_KERNEL_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5)
}

fn min_speedup() -> f64 {
    std::env::var("GRADSEC_KERNEL_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s: &f64| s.is_finite() && s >= 0.0)
        .unwrap_or(MIN_ALEXNET_CONV_SPEEDUP)
}

/// One timed table entry: an op at a model shape, run per backend.
struct Entry {
    op: &'static str,
    shape: &'static str,
    /// Runs the op on `backend`, returning the output buffer used for
    /// the parity check.
    run: Box<dyn Fn(BackendKind) -> Vec<f32>>,
}

/// Median of `reps` timed runs (seconds) plus one output for parity.
fn measure(entry: &Entry, backend: BackendKind, reps: usize) -> (f64, Vec<f32>) {
    let output = (entry.run)(backend); // warm-up + parity sample
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = (entry.run)(backend);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(out);
            dt
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], output)
}

/// Relative parity judged against the largest output magnitude
/// (reassociation error is absolute per accumulation). The op-level
/// 1e-5 contract is enforced by the `backend_properties` proptests on
/// op-scale shapes; these paper-scale shapes accumulate thousands of
/// terms per output (k up to 4096), so reassociation error is
/// legitimately larger and this gate allows 10x headroom — it exists to
/// catch real kernel bugs (wrong element, dropped term), not to re-pin
/// the rounding bound.
fn parity_ok(reference: &[f32], blocked: &[f32]) -> bool {
    if reference.len() != blocked.len() {
        return false;
    }
    let scale = reference
        .iter()
        .chain(blocked.iter())
        .fold(1.0f32, |m, x| m.max(x.abs()));
    let tol = 1e-4 * scale;
    reference
        .iter()
        .zip(blocked)
        .all(|(r, b)| (r - b).abs() <= tol)
}

/// Aggregate entries timing a whole conv *stack* (every conv layer of one
/// model, batch 32) — the number a client cycle actually pays, and the
/// one the acceptance gate reads for AlexNet.
fn conv_stack_entries(name: &'static str, geos: Vec<Conv2dGeometry>, seed: u64) -> Vec<Entry> {
    let layers: Vec<ConvOperands> = conv_stack(&geos, seed);
    let fwd_layers = layers.clone();
    let forward = Entry {
        op: "conv2d_forward",
        shape: name,
        run: Box::new(move |backend| {
            let mut out = Vec::new();
            for l in &fwd_layers {
                out.extend(
                    conv2d_forward_with(&l.input, &l.weights, &l.bias, &l.geo, backend)
                        .expect("stack conv forward runs")
                        .into_vec(),
                );
            }
            out
        }),
    };
    let backward = Entry {
        op: "conv2d_backward",
        shape: name,
        run: Box::new(move |backend| {
            let mut out = Vec::new();
            for l in &layers {
                let (dw, db, di) =
                    conv2d_backward_with(&l.input, &l.weights, &l.delta, &l.geo, backend)
                        .expect("stack conv backward runs");
                out.extend(dw.into_vec());
                out.extend(db.into_vec());
                out.extend(di.into_vec());
            }
            out
        }),
    };
    vec![forward, backward]
}

fn conv_entries(name: &'static str, geo: Conv2dGeometry, seed: u64) -> Vec<Entry> {
    let input = init::uniform(
        &[BATCH, geo.in_channels, geo.in_h, geo.in_w],
        -1.0,
        1.0,
        seed,
    );
    let weights = init::uniform(
        &[geo.out_channels, geo.in_channels * geo.kernel * geo.kernel],
        -0.5,
        0.5,
        seed + 1,
    );
    let bias = init::uniform(&[geo.out_channels], -0.5, 0.5, seed + 2);
    let delta = init::uniform(
        &[BATCH, geo.out_channels, geo.out_h, geo.out_w],
        -1.0,
        1.0,
        seed + 3,
    );
    let (fi, fw, fb) = (input.clone(), weights.clone(), bias.clone());
    let forward = Entry {
        op: "conv2d_forward",
        shape: name,
        run: Box::new(move |backend| {
            conv2d_forward_with(&fi, &fw, &fb, &geo, backend)
                .expect("conv forward runs")
                .into_vec()
        }),
    };
    let backward = Entry {
        op: "conv2d_backward",
        shape: name,
        run: Box::new(move |backend| {
            let (dw, db, di) = conv2d_backward_with(&input, &weights, &delta, &geo, backend)
                .expect("conv backward runs");
            let mut out = dw.into_vec();
            out.extend(db.into_vec());
            out.extend(di.into_vec());
            out
        }),
    };
    vec![forward, backward]
}

fn dense_entries(name: &'static str, inputs: usize, outputs: usize, seed: u64) -> Vec<Entry> {
    let a = init::uniform(&[BATCH, inputs], -1.0, 1.0, seed);
    let w = init::uniform(&[outputs, inputs], -0.5, 0.5, seed + 1);
    let delta = init::uniform(&[BATCH, outputs], -1.0, 1.0, seed + 2);
    let (fa, fw) = (a.clone(), w.clone());
    let nt = Entry {
        op: "matmul_nt",
        shape: name,
        run: Box::new(move |backend| {
            matmul_nt_with(&fa, &fw, backend)
                .expect("dense forward matmul runs")
                .into_vec()
        }),
    };
    let (ta, td) = (a.clone(), delta.clone());
    let tn = Entry {
        op: "matmul_tn",
        shape: name,
        run: Box::new(move |backend| {
            matmul_tn_with(&td, &ta, backend)
                .expect("dense dW matmul runs")
                .into_vec()
        }),
    };
    let nn = Entry {
        op: "matmul",
        shape: name,
        run: Box::new(move |backend| {
            matmul_with(&delta, &w, backend)
                .expect("dense dInput matmul runs")
                .into_vec()
        }),
    };
    vec![nt, tn, nn]
}

fn pool_entry(name: &'static str, geo: PoolGeometry, seed: u64) -> Entry {
    let input = init::uniform(&[BATCH, geo.channels, geo.in_h, geo.in_w], -1.0, 1.0, seed);
    Entry {
        op: "maxpool_forward",
        shape: name,
        run: Box::new(move |backend| {
            maxpool_forward_with(&input, &geo, backend)
                .expect("pool runs")
                .0
                .into_vec()
        }),
    }
}

fn entries() -> Vec<Entry> {
    let mut entries = Vec::new();
    // LeNet-5 L1 (Table 4): 32x32x3 -> 16x16x12, 5x5/2/2.
    entries.extend(conv_entries(
        "lenet5_l1",
        Conv2dGeometry::new(3, 32, 32, 12, 5, 2, 2).expect("lenet geometry"),
        10,
    ));
    // AlexNet L1 conv part: 32x32x3 -> 16x16x64, 3x3/2/1 (im2col-bound:
    // only 3 input channels, so the column build dominates the GEMM).
    entries.extend(conv_entries(
        "alexnet_l1",
        Conv2dGeometry::new(3, 32, 32, 64, 3, 2, 1).expect("alexnet geometry"),
        20,
    ));
    // The whole AlexNet conv stack (L1–L5) — the per-cycle conv cost and
    // the entry the acceptance gate reads.
    entries.extend(conv_stack_entries("alexnet", alexnet_conv_geometries(), 60));
    // LeNet-5 L5 dense head: 768 -> 100.
    entries.extend(dense_entries("lenet5_fc5", 768, 100, 30));
    // AlexNet FC7: 4096 -> 4096, the heaviest dense product per cycle.
    entries.extend(dense_entries("alexnet_fc7", 4096, 4096, 40));
    // AlexNet L1's fused MP2 pool on the 16x16x64 conv output.
    entries.push(pool_entry(
        "alexnet_l1",
        PoolGeometry::mp2(64, 16, 16).expect("pool geometry"),
        50,
    ));
    entries
}

struct Row {
    op: &'static str,
    shape: &'static str,
    reference_s: f64,
    blocked_s: f64,
    speedup: f64,
}

fn main() {
    let reps = reps();
    let min_speedup = min_speedup();
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    println!("kernel backend scaling (batch {BATCH}, median of {reps} reps)");
    println!(
        "{:<18} {:<12} {:>12} {:>12} {:>9}",
        "op", "shape", "reference_s", "blocked_s", "speedup"
    );
    for entry in entries() {
        let (ref_s, ref_out) = measure(&entry, BackendKind::Reference, reps);
        let (blk_s, blk_out) = measure(&entry, BackendKind::Blocked, reps);
        if !parity_ok(&ref_out, &blk_out) {
            failures.push(format!(
                "{}/{}: blocked output drifted past rounding distance from reference",
                entry.op, entry.shape
            ));
        }
        let speedup = if blk_s > 0.0 { ref_s / blk_s } else { 1.0 };
        println!(
            "{:<18} {:<12} {:>12.6} {:>12.6} {:>8.2}x",
            entry.op, entry.shape, ref_s, blk_s, speedup
        );
        rows.push(Row {
            op: entry.op,
            shape: entry.shape,
            reference_s: ref_s,
            blocked_s: blk_s,
            speedup,
        });
    }

    let headline = rows
        .iter()
        .find(|r| r.op == "conv2d_forward" && r.shape == "alexnet")
        .expect("AlexNet conv forward entry present");
    if headline.speedup < min_speedup {
        failures.push(format!(
            "AlexNet conv2d forward speedup {:.2}x below the {min_speedup}x gate",
            headline.speedup
        ));
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                r#"    {{"op": "{}", "shape": "{}", "batch": {BATCH}, "reference_s": {}, "blocked_s": {}, "speedup_blocked": {}}}"#,
                r.op,
                r.shape,
                json_number(r.reference_s),
                json_number(r.blocked_s),
                json_number(r.speedup),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"gate\": {{\"op\": \"conv2d_forward\", \"shape\": \"alexnet\", \"min_speedup\": {min_speedup}, \"speedup\": {}}},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        json_number(headline.speedup),
        json_rows.join(",\n"),
    );
    let path = gradsec_bench::workspace_target().join("kernel_scaling.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "OK: blocked backend parity holds and AlexNet conv forward speedup is {:.2}x (>= {min_speedup}x)",
        headline.speedup
    );
}
