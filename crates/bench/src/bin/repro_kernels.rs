//! Kernel backend scaling repro: times every `TensorBackend` op on the
//! LeNet-5 and AlexNet hot-path shapes (paper Table 4, batch 32), checks
//! `Blocked` and `Tiled` parity against `Reference` and exports the
//! per-op table — including per-ISA `Tiled` columns and achieved
//! GFLOP/s — as JSON (`target/kernel_scaling.json` plus stdout).
//!
//! The `Tiled` backend is timed once per micro-kernel ISA the host can
//! run (`portable` always, `avx2` when detected) by steering the
//! backend's `GRADSEC_TILED_ISA` override between measurements; the
//! headline `tiled_s` column is the auto-selected ISA — what a
//! federation on this host actually executes.
//!
//! Exits non-zero when
//!
//! * any `Blocked` output, or any `Tiled` output on *either* ISA path,
//!   drifts past rounding distance from `Reference`, or
//! * the `Blocked` backend fails to reach [`MIN_ALEXNET_CONV_SPEEDUP`]×
//!   over `Reference` on the AlexNet conv2d forward pass, or
//! * the `Tiled` backend fails to reach the same bar over `Blocked` on
//!   that entry — the register-tiled/virtual-im2col headline win —
//!
//! so CI can use the binary as a kernel-performance gate.
//!
//! Environment:
//!
//! * `GRADSEC_KERNEL_REPS=n` — timed repetitions per entry (default 5;
//!   the median is reported).
//! * `GRADSEC_KERNEL_MIN_SPEEDUP=x` — override both speedup gates
//!   (default [`MIN_ALEXNET_CONV_SPEEDUP`]). Shared CI runners with
//!   noisy neighbours can compress relative speedups, so the per-push
//!   workflow runs with a tolerant bar while the scheduled paper-scale
//!   job keeps the full one; parity is always gated.

use std::time::Instant;

use gradsec_bench::kernels::{
    alexnet_conv_geometries, conv_backward_flops, conv_forward_flops, conv_stack, matmul_flops,
    ConvOperands, BATCH,
};
use gradsec_tee::cost::json_number;
use gradsec_tensor::backend::{BackendKind, Tiled, TiledIsa};
use gradsec_tensor::init;
use gradsec_tensor::ops::conv::{conv2d_backward_with, conv2d_forward_with, Conv2dGeometry};
use gradsec_tensor::ops::matmul::{matmul_nt_with, matmul_tn_with, matmul_with};
use gradsec_tensor::ops::pool::{maxpool_forward_with, PoolGeometry};

/// The acceptance threshold on the AlexNet conv2d forward entry, applied
/// both to Blocked-over-Reference and to Tiled-over-Blocked.
const MIN_ALEXNET_CONV_SPEEDUP: f64 = 1.3;

fn reps() -> usize {
    std::env::var("GRADSEC_KERNEL_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5)
}

fn min_speedup() -> f64 {
    std::env::var("GRADSEC_KERNEL_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s: &f64| s.is_finite() && s >= 0.0)
        .unwrap_or(MIN_ALEXNET_CONV_SPEEDUP)
}

/// One timed table entry: an op at a model shape, run per backend.
struct Entry {
    op: &'static str,
    shape: &'static str,
    /// Multiply-add FLOPs one run performs (0 for non-GEMM ops, which
    /// then report no GFLOP/s).
    flops: f64,
    /// Runs the op on `backend`, returning the output buffer used for
    /// the parity check.
    run: Box<dyn Fn(BackendKind) -> Vec<f32>>,
}

/// Median of `reps` timed runs (seconds) plus one output for parity.
fn measure(entry: &Entry, backend: BackendKind, reps: usize) -> (f64, Vec<f32>) {
    let output = (entry.run)(backend); // warm-up + parity sample
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = (entry.run)(backend);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(out);
            dt
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], output)
}

/// Times the `Tiled` backend pinned to `isa` by steering the backend's
/// environment override around the measurement (the kernels re-read it
/// per call, so this works in-process; the var is restored after).
fn measure_tiled_isa(entry: &Entry, isa: TiledIsa, reps: usize) -> (f64, Vec<f32>) {
    let saved = std::env::var("GRADSEC_TILED_ISA").ok();
    std::env::set_var("GRADSEC_TILED_ISA", isa.name());
    let result = measure(entry, BackendKind::Tiled, reps);
    match saved {
        Some(v) => std::env::set_var("GRADSEC_TILED_ISA", v),
        None => std::env::remove_var("GRADSEC_TILED_ISA"),
    }
    result
}

/// Achieved GFLOP/s, or `None` for untimed/non-GEMM entries.
fn gflops(flops: f64, secs: f64) -> Option<f64> {
    (flops > 0.0 && secs > 0.0).then(|| flops / secs / 1e9)
}

/// Relative parity judged against the largest output magnitude
/// (reassociation error is absolute per accumulation). The op-level
/// 1e-5 contract is enforced by the `backend_properties` proptests on
/// op-scale shapes; these paper-scale shapes accumulate thousands of
/// terms per output (k up to 4096), so reassociation error is
/// legitimately larger and this gate allows 10x headroom — it exists to
/// catch real kernel bugs (wrong element, dropped term), not to re-pin
/// the rounding bound.
fn parity_ok(reference: &[f32], other: &[f32]) -> bool {
    if reference.len() != other.len() {
        return false;
    }
    let scale = reference
        .iter()
        .chain(other.iter())
        .fold(1.0f32, |m, x| m.max(x.abs()));
    let tol = 1e-4 * scale;
    reference
        .iter()
        .zip(other)
        .all(|(r, b)| (r - b).abs() <= tol)
}

/// Aggregate entries timing a whole conv *stack* (every conv layer of one
/// model, batch 32) — the number a client cycle actually pays, and the
/// one the acceptance gates read for AlexNet.
fn conv_stack_entries(name: &'static str, geos: Vec<Conv2dGeometry>, seed: u64) -> Vec<Entry> {
    let fwd_flops: f64 = geos.iter().map(|g| conv_forward_flops(g, BATCH)).sum();
    let bwd_flops: f64 = geos.iter().map(|g| conv_backward_flops(g, BATCH)).sum();
    let layers: Vec<ConvOperands> = conv_stack(&geos, seed);
    let fwd_layers = layers.clone();
    let forward = Entry {
        op: "conv2d_forward",
        shape: name,
        flops: fwd_flops,
        run: Box::new(move |backend| {
            let mut out = Vec::new();
            for l in &fwd_layers {
                out.extend(
                    conv2d_forward_with(&l.input, &l.weights, &l.bias, &l.geo, backend)
                        .expect("stack conv forward runs")
                        .into_vec(),
                );
            }
            out
        }),
    };
    let backward = Entry {
        op: "conv2d_backward",
        shape: name,
        flops: bwd_flops,
        run: Box::new(move |backend| {
            let mut out = Vec::new();
            for l in &layers {
                let (dw, db, di) =
                    conv2d_backward_with(&l.input, &l.weights, &l.delta, &l.geo, backend)
                        .expect("stack conv backward runs");
                out.extend(dw.into_vec());
                out.extend(db.into_vec());
                out.extend(di.into_vec());
            }
            out
        }),
    };
    vec![forward, backward]
}

fn conv_entries(name: &'static str, geo: Conv2dGeometry, seed: u64) -> Vec<Entry> {
    let input = init::uniform(
        &[BATCH, geo.in_channels, geo.in_h, geo.in_w],
        -1.0,
        1.0,
        seed,
    );
    let weights = init::uniform(
        &[geo.out_channels, geo.in_channels * geo.kernel * geo.kernel],
        -0.5,
        0.5,
        seed + 1,
    );
    let bias = init::uniform(&[geo.out_channels], -0.5, 0.5, seed + 2);
    let delta = init::uniform(
        &[BATCH, geo.out_channels, geo.out_h, geo.out_w],
        -1.0,
        1.0,
        seed + 3,
    );
    let (fi, fw, fb) = (input.clone(), weights.clone(), bias.clone());
    let forward = Entry {
        op: "conv2d_forward",
        shape: name,
        flops: conv_forward_flops(&geo, BATCH),
        run: Box::new(move |backend| {
            conv2d_forward_with(&fi, &fw, &fb, &geo, backend)
                .expect("conv forward runs")
                .into_vec()
        }),
    };
    let backward = Entry {
        op: "conv2d_backward",
        shape: name,
        flops: conv_backward_flops(&geo, BATCH),
        run: Box::new(move |backend| {
            let (dw, db, di) = conv2d_backward_with(&input, &weights, &delta, &geo, backend)
                .expect("conv backward runs");
            let mut out = dw.into_vec();
            out.extend(db.into_vec());
            out.extend(di.into_vec());
            out
        }),
    };
    vec![forward, backward]
}

fn dense_entries(name: &'static str, inputs: usize, outputs: usize, seed: u64) -> Vec<Entry> {
    let a = init::uniform(&[BATCH, inputs], -1.0, 1.0, seed);
    let w = init::uniform(&[outputs, inputs], -0.5, 0.5, seed + 1);
    let delta = init::uniform(&[BATCH, outputs], -1.0, 1.0, seed + 2);
    let flops = matmul_flops(BATCH, inputs, outputs);
    let (fa, fw) = (a.clone(), w.clone());
    let nt = Entry {
        op: "matmul_nt",
        shape: name,
        flops,
        run: Box::new(move |backend| {
            matmul_nt_with(&fa, &fw, backend)
                .expect("dense forward matmul runs")
                .into_vec()
        }),
    };
    let (ta, td) = (a.clone(), delta.clone());
    let tn = Entry {
        op: "matmul_tn",
        shape: name,
        flops,
        run: Box::new(move |backend| {
            matmul_tn_with(&td, &ta, backend)
                .expect("dense dW matmul runs")
                .into_vec()
        }),
    };
    let nn = Entry {
        op: "matmul",
        shape: name,
        flops,
        run: Box::new(move |backend| {
            matmul_with(&delta, &w, backend)
                .expect("dense dInput matmul runs")
                .into_vec()
        }),
    };
    vec![nt, tn, nn]
}

fn pool_entry(name: &'static str, geo: PoolGeometry, seed: u64) -> Entry {
    let input = init::uniform(&[BATCH, geo.channels, geo.in_h, geo.in_w], -1.0, 1.0, seed);
    Entry {
        op: "maxpool_forward",
        shape: name,
        flops: 0.0,
        run: Box::new(move |backend| {
            maxpool_forward_with(&input, &geo, backend)
                .expect("pool runs")
                .0
                .into_vec()
        }),
    }
}

fn entries() -> Vec<Entry> {
    let mut entries = Vec::new();
    // LeNet-5 L1 (Table 4): 32x32x3 -> 16x16x12, 5x5/2/2.
    entries.extend(conv_entries(
        "lenet5_l1",
        Conv2dGeometry::new(3, 32, 32, 12, 5, 2, 2).expect("lenet geometry"),
        10,
    ));
    // AlexNet L1 conv part: 32x32x3 -> 16x16x64, 3x3/2/1 (im2col-bound:
    // only 3 input channels, so the column build dominates the GEMM).
    entries.extend(conv_entries(
        "alexnet_l1",
        Conv2dGeometry::new(3, 32, 32, 64, 3, 2, 1).expect("alexnet geometry"),
        20,
    ));
    // The whole AlexNet conv stack (L1–L5) — the per-cycle conv cost and
    // the entry the acceptance gates read.
    entries.extend(conv_stack_entries("alexnet", alexnet_conv_geometries(), 60));
    // LeNet-5 L5 dense head: 768 -> 100.
    entries.extend(dense_entries("lenet5_fc5", 768, 100, 30));
    // AlexNet FC7: 4096 -> 4096, the heaviest dense product per cycle.
    entries.extend(dense_entries("alexnet_fc7", 4096, 4096, 40));
    // AlexNet L1's fused MP2 pool on the 16x16x64 conv output.
    entries.push(pool_entry(
        "alexnet_l1",
        PoolGeometry::mp2(64, 16, 16).expect("pool geometry"),
        50,
    ));
    entries
}

struct Row {
    op: &'static str,
    shape: &'static str,
    flops: f64,
    reference_s: f64,
    blocked_s: f64,
    tiled_portable_s: f64,
    tiled_avx2_s: Option<f64>,
    /// The auto-selected ISA's time — what a federation on this host runs.
    tiled_s: f64,
    speedup_blocked: f64,
    speedup_tiled: f64,
}

fn main() {
    let reps = reps();
    let min_speedup = min_speedup();
    let auto_isa = Tiled::auto().isa();
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    println!(
        "kernel backend scaling (batch {BATCH}, median of {reps} reps, tiled auto ISA: {auto_isa})"
    );
    println!(
        "{:<18} {:<12} {:>11} {:>11} {:>11} {:>7} {:>7} {:>9}",
        "op", "shape", "reference_s", "blocked_s", "tiled_s", "blk_x", "tld_x", "tld_gf/s"
    );
    for entry in entries() {
        let (ref_s, ref_out) = measure(&entry, BackendKind::Reference, reps);
        let (blk_s, blk_out) = measure(&entry, BackendKind::Blocked, reps);
        if !parity_ok(&ref_out, &blk_out) {
            failures.push(format!(
                "{}/{}: blocked output drifted past rounding distance from reference",
                entry.op, entry.shape
            ));
        }
        let mut tiled_portable_s = f64::NAN;
        let mut tiled_avx2_s = None;
        for isa in TiledIsa::available_on_host() {
            let (tld_s, tld_out) = measure_tiled_isa(&entry, isa, reps);
            if !parity_ok(&ref_out, &tld_out) {
                failures.push(format!(
                    "{}/{}: tiled[{isa}] output drifted past rounding distance from reference",
                    entry.op, entry.shape
                ));
            }
            match isa {
                TiledIsa::Portable => tiled_portable_s = tld_s,
                TiledIsa::Avx2 => tiled_avx2_s = Some(tld_s),
            }
        }
        let tiled_s = match auto_isa {
            TiledIsa::Portable => tiled_portable_s,
            TiledIsa::Avx2 => tiled_avx2_s.unwrap_or(tiled_portable_s),
        };
        let speedup_blocked = if blk_s > 0.0 { ref_s / blk_s } else { 1.0 };
        let speedup_tiled = if tiled_s > 0.0 { blk_s / tiled_s } else { 1.0 };
        let gf =
            gflops(entry.flops, tiled_s).map_or_else(|| "-".to_string(), |g| format!("{g:.2}"));
        println!(
            "{:<18} {:<12} {:>11.6} {:>11.6} {:>11.6} {:>6.2}x {:>6.2}x {:>9}",
            entry.op, entry.shape, ref_s, blk_s, tiled_s, speedup_blocked, speedup_tiled, gf
        );
        rows.push(Row {
            op: entry.op,
            shape: entry.shape,
            flops: entry.flops,
            reference_s: ref_s,
            blocked_s: blk_s,
            tiled_portable_s,
            tiled_avx2_s,
            tiled_s,
            speedup_blocked,
            speedup_tiled,
        });
    }

    let headline = rows
        .iter()
        .find(|r| r.op == "conv2d_forward" && r.shape == "alexnet")
        .expect("AlexNet conv forward entry present");
    if headline.speedup_blocked < min_speedup {
        failures.push(format!(
            "AlexNet conv2d forward blocked speedup {:.2}x below the {min_speedup}x gate",
            headline.speedup_blocked
        ));
    }
    if headline.speedup_tiled < min_speedup {
        failures.push(format!(
            "AlexNet conv2d forward tiled-over-blocked speedup {:.2}x below the {min_speedup}x gate",
            headline.speedup_tiled
        ));
    }

    let json_opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), json_number);
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                r#"    {{"op": "{}", "shape": "{}", "batch": {BATCH}, "reference_s": {}, "blocked_s": {}, "tiled_portable_s": {}, "tiled_avx2_s": {}, "tiled_s": {}, "speedup_blocked": {}, "speedup_tiled": {}, "gflops_tiled": {}}}"#,
                r.op,
                r.shape,
                json_number(r.reference_s),
                json_number(r.blocked_s),
                json_number(r.tiled_portable_s),
                json_opt(r.tiled_avx2_s),
                json_number(r.tiled_s),
                json_number(r.speedup_blocked),
                json_number(r.speedup_tiled),
                json_opt(gflops(r.flops, r.tiled_s)),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"gate\": {{\"op\": \"conv2d_forward\", \"shape\": \"alexnet\", \"min_speedup\": {min_speedup}, \"speedup\": {}, \"speedup_tiled\": {}, \"tiled_auto_isa\": \"{auto_isa}\"}},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        json_number(headline.speedup_blocked),
        json_number(headline.speedup_tiled),
        json_rows.join(",\n"),
    );
    let path = gradsec_bench::workspace_target().join("kernel_scaling.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "OK: backend parity holds; AlexNet conv forward: blocked {:.2}x over reference, tiled {:.2}x over blocked (gates >= {min_speedup}x)",
        headline.speedup_blocked, headline.speedup_tiled
    );
}
