//! Runs a small protected federation and exports every round's report —
//! participants, mean loss, protected layers and the TEE ledger — as JSON
//! (`target/rounds.json` plus stdout), demonstrating the per-round export
//! path repro pipelines consume.
//!
//! Environment:
//!
//! * `GRADSEC_TRANSPORT=tcp` — drive the rounds over loopback TCP instead
//!   of the in-process transport (the JSON is bit-identical either way).
//! * `GRADSEC_ROUNDS=n` — override the round count (default 5).

use std::sync::Arc;

use gradsec_core::trainer::SecureTrainer;
use gradsec_core::ProtectionPolicy;
use gradsec_data::SyntheticCifar100;
use gradsec_fl::config::{TrainingPlan, TransportKind};
use gradsec_fl::runner::Federation;
use gradsec_nn::zoo;

fn main() {
    let transport = match std::env::var("GRADSEC_TRANSPORT").as_deref() {
        Ok("tcp") => TransportKind::Tcp,
        _ => TransportKind::InProcess,
    };
    let rounds = std::env::var("GRADSEC_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let data = Arc::new(SyntheticCifar100::with_classes(96, 2, 5));
    let policy = ProtectionPolicy::static_layers(&[1, 4]).expect("valid layer set");
    let mut fed = Federation::builder(TrainingPlan {
        rounds,
        clients_per_round: 3,
        batches_per_cycle: 2,
        batch_size: 8,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::lenet5_with(2, 13).expect("LeNet-5 builds"))
    .clients(4, data)
    .trainer(|_| Box::new(SecureTrainer::new()))
    .scheduler(policy)
    .transport(transport)
    .build()
    .expect("federation builds");
    eprintln!(
        "Running {rounds} protected rounds over the {} transport…",
        match transport {
            TransportKind::InProcess => "in-process",
            TransportKind::Tcp => "loopback-TCP",
        }
    );
    let report = fed.run().expect("federation runs");
    fed.shutdown().expect("clean teardown");
    let json = report.to_json();
    let target = gradsec_bench::workspace_target();
    let path = target.join("rounds.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");
}
