//! Runs a small protected federation and exports every round's report —
//! participants, mean loss, protected layers and the TEE ledger — as JSON
//! (`target/rounds.json` plus stdout), demonstrating the per-round export
//! path repro pipelines consume. Then runs the **multiplexed-transport
//! gate**: kilo-session (and, under `GRADSEC_FULL=1`, ~10k-session)
//! loopback fleets where every `TransportKind::TcpMux` configuration —
//! (1,2,4 workers) × (1,4 shards), plus a fixed-fault-seed run — must be
//! bit-identical to the flat in-process reference and to threaded TCP,
//! and the mux round must not fall below threaded-TCP throughput at the
//! kilo-session tier. The gate table (wall clocks, `sessions_per_core`,
//! mux-vs-threaded ratio) is written to `target/transport_overhead.json`
//! — the same file the `transport_overhead` criterion bench writes for
//! local runs; in CI this gate's table is the one that ships as the
//! artifact (the repro_kernels/kernel_scaling precedent).
//!
//! Exits non-zero when any mux configuration diverges from the
//! reference, when the faulted mux run diverges from faulted threaded
//! TCP, or when the kilo-session mux round is slower than
//! `GRADSEC_MUX_SLACK` × the threaded round.
//!
//! Environment:
//!
//! * `GRADSEC_TRANSPORT=tcp|mux` — drive the export rounds over loopback
//!   TCP (threaded or multiplexed) instead of the in-process transport
//!   (the JSON is bit-identical any way).
//! * `GRADSEC_ROUNDS=n` — override the export round count (default 5).
//! * `GRADSEC_MUX_GATE=0` — skip the mux gate (export only).
//! * `GRADSEC_MUX_SESSIONS=1000,10000` — override the gate fleet sizes
//!   (each clamped to what `RLIMIT_NOFILE` can hold: two descriptors per
//!   loopback session plus headroom).
//! * `GRADSEC_MUX_SLACK=1.25` — throughput bar: the kilo-session mux
//!   round may take at most this multiple of the threaded round.
//!   Deliberately tolerant per push — shared CI runners compress
//!   relative timings; tighten locally to compare architectures.

use std::sync::Arc;
use std::time::Instant;

use gradsec_core::trainer::SecureTrainer;
use gradsec_core::ProtectionPolicy;
use gradsec_data::{SyntheticCifar100, SyntheticMicro};
use gradsec_fl::config::{TrainingPlan, TransportKind};
use gradsec_fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec_fl::transport::poller::{fd_soft_limit, raise_fd_soft_limit};
use gradsec_fl::{ExecutionEngine, FaultPlan, LatencyModel, MuxOptions};
use gradsec_nn::model::ModelWeights;
use gradsec_nn::zoo;
use gradsec_tee::cost::json_number;

const DIM: usize = 8;
const FAULT_SEED: u64 = 0xFA417;
const MUX_WORKERS: [usize; 3] = [1, 2, 4];
const MUX_SHARDS: [usize; 2] = [1, 4];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn transport_name(transport: TransportKind) -> &'static str {
    match transport {
        TransportKind::InProcess => "in-process",
        TransportKind::Tcp => "loopback-TCP",
        TransportKind::TcpMux => "multiplexed-TCP",
    }
}

/// The per-round export demo (unchanged shape: LeNet-5, protected
/// layers, JSON to `target/rounds.json`).
fn export_rounds() {
    let transport = match std::env::var("GRADSEC_TRANSPORT").as_deref() {
        Ok("tcp") => TransportKind::Tcp,
        Ok("mux") => TransportKind::TcpMux,
        _ => TransportKind::InProcess,
    };
    let rounds = env_u64("GRADSEC_ROUNDS", 5);
    let data = Arc::new(SyntheticCifar100::with_classes(96, 2, 5));
    let policy = ProtectionPolicy::static_layers(&[1, 4]).expect("valid layer set");
    let mut fed = Federation::builder(TrainingPlan {
        rounds,
        clients_per_round: 3,
        batches_per_cycle: 2,
        batch_size: 8,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::lenet5_with(2, 13).expect("LeNet-5 builds"))
    .clients(4, data)
    .trainer(|_| Box::new(SecureTrainer::new()))
    .scheduler(policy)
    .transport(transport)
    .build()
    .expect("federation builds");
    eprintln!(
        "Running {rounds} protected rounds over the {} transport…",
        transport_name(transport)
    );
    let report = fed.run().expect("federation runs");
    fed.shutdown().expect("clean teardown");
    let json = report.to_json();
    write_json("rounds.json", &json);
    println!("{json}");
}

/// Gate fleet sizes: kilo-session per push, ~10k under `GRADSEC_FULL=1`,
/// each clamped to what the file-descriptor limit can hold (a loopback
/// session burns two descriptors — the mux socket and the server's
/// accepted end — plus headroom for listeners, stdio and the allocator).
fn gate_fleets() -> Vec<usize> {
    let requested: Vec<usize> = std::env::var("GRADSEC_MUX_SESSIONS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| {
            if gradsec_bench::Profile::from_env().is_full() {
                vec![1_000, 10_000]
            } else {
                vec![1_000]
            }
        });
    let cap = raise_fd_soft_limit()
        .or_else(fd_soft_limit)
        .map(|fds| (fds.saturating_sub(64) / 2) as usize)
        .unwrap_or(usize::MAX);
    requested
        .into_iter()
        .map(|n| {
            let clamped = n.min(cap).max(1);
            if clamped < n {
                eprintln!(
                    "clamping {n}-session tier to {clamped}: RLIMIT_NOFILE holds \
                     {cap} loopback sessions"
                );
            }
            clamped
        })
        .collect()
}

fn gate_builder(clients: usize) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, DIM, 5));
    Federation::builder(TrainingPlan {
        rounds: 1,
        clients_per_round: clients,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::tiny_mlp(DIM, 4, 2, 13).expect("tiny MLP builds"))
    .clients(clients, data)
}

fn fault_plan() -> FaultPlan {
    FaultPlan::seeded(FAULT_SEED)
        .dropout(0.10)
        .drop_messages(0.05)
        .garble_replies(0.02)
        .latency(LatencyModel::Exponential { mean_s: 0.5 })
        .spare(24)
}

/// A faulted gate round selects a sub-cohort so the over-provisioned
/// selection has spares to promote when the seeded faults shed clients.
fn faulted_builder(clients: usize) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, DIM, 5));
    Federation::builder(TrainingPlan {
        rounds: 1,
        clients_per_round: (clients / 16).max(1),
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::tiny_mlp(DIM, 4, 2, 13).expect("tiny MLP builds"))
    .clients(clients, data)
    .faults(fault_plan())
}

fn finish(mut fed: Federation, start: Instant) -> (FederationReport, ModelWeights, f64) {
    let report = fed.run().expect("gate round completes");
    let wall = start.elapsed().as_secs_f64();
    let weights = fed.server().global().clone();
    fed.shutdown().expect("clean teardown");
    (report, weights, wall)
}

fn run_flat(
    builder: FederationBuilder,
    transport: TransportKind,
    workers: usize,
) -> (FederationReport, ModelWeights, f64) {
    let start = Instant::now();
    let fed = builder
        .transport(transport)
        .engine(ExecutionEngine::new(workers))
        .build()
        .expect("gate fleet builds");
    finish(fed, start)
}

struct MuxRow {
    workers: usize,
    shards: usize,
    wall_s: f64,
    identical: bool,
}

/// One gate tier: reference + threaded TCP + the mux matrix + the
/// faulted pair. Returns the JSON row and whether everything held.
fn gate_tier(sessions: usize, slack: f64) -> (String, bool, bool) {
    eprintln!("{sessions}-session tier: flat in-process reference…");
    let (ref_report, ref_weights, inproc_wall) =
        run_flat(gate_builder(sessions), TransportKind::InProcess, 1);
    eprintln!("  in-process: {inproc_wall:.3}s; threaded TCP…");
    let (tcp_report, tcp_weights, tcp_wall) =
        run_flat(gate_builder(sessions), TransportKind::Tcp, 1);
    let tcp_identical = tcp_report == ref_report && tcp_weights == ref_weights;
    eprintln!(
        "  threaded TCP: {tcp_wall:.3}s ({})",
        verdict(tcp_identical)
    );

    let mut all_identical = tcp_identical;
    let mut rows: Vec<MuxRow> = Vec::new();
    for workers in MUX_WORKERS {
        for shards in MUX_SHARDS {
            let start = Instant::now();
            let mut fed = gate_builder(sessions)
                .transport(TransportKind::TcpMux)
                .shards(shards)
                .engine(ExecutionEngine::new(workers))
                .build_sharded()
                .expect("mux fleet builds");
            let report = fed.run().expect("mux round completes");
            let wall_s = start.elapsed().as_secs_f64();
            let identical = report == ref_report && fed.server().global() == &ref_weights;
            fed.shutdown().expect("clean mux teardown");
            all_identical &= identical;
            eprintln!(
                "  mux {workers} workers x {shards} shards: {wall_s:.3}s ({})",
                verdict(identical)
            );
            rows.push(MuxRow {
                workers,
                shards,
                wall_s,
                identical,
            });
        }
    }

    // Fixed fault seed: the faulted mux round must match the faulted
    // threaded round bit for bit (every fault decision is a pure
    // function of seed/client/message, never of who drives the socket).
    let (ftcp_report, ftcp_weights, _) = run_flat(faulted_builder(sessions), TransportKind::Tcp, 2);
    let (fmux_report, fmux_weights, _) =
        run_flat(faulted_builder(sessions), TransportKind::TcpMux, 2);
    let faulted_identical = fmux_report == ftcp_report && fmux_weights == ftcp_weights;
    all_identical &= faulted_identical;
    eprintln!("  faulted mux vs threaded: {}", verdict(faulted_identical));

    // Throughput bar: the flat 1-worker mux round vs its threaded twin.
    let mux_flat_wall = rows
        .iter()
        .find(|r| r.workers == 1 && r.shards == 1)
        .map(|r| r.wall_s)
        .unwrap_or(f64::INFINITY);
    let ratio = mux_flat_wall / tcp_wall;
    let throughput_ok = ratio <= slack;
    eprintln!(
        "  mux/threaded wall ratio: {ratio:.3} (bar {slack:.2}) ({})",
        if throughput_ok { "ok" } else { "TOO SLOW" }
    );

    let loops = MuxOptions::default().effective_loops();
    let mux_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                r#"{{"workers":{},"shards":{},"wall_s":{},"identical":{}}}"#,
                r.workers,
                r.shards,
                json_number(r.wall_s),
                r.identical
            )
        })
        .collect();
    let row = format!(
        r#"{{"sessions":{sessions},"event_loops":{loops},"sessions_per_core":{},"inprocess_wall_s":{},"threaded_wall_s":{},"mux_flat_wall_s":{},"mux_vs_threaded":{},"threaded_identical":{tcp_identical},"faulted_identical":{faulted_identical},"mux":[{}]}}"#,
        sessions.div_ceil(loops),
        json_number(inproc_wall),
        json_number(tcp_wall),
        json_number(mux_flat_wall),
        json_number(ratio),
        mux_rows.join(",")
    );
    (row, all_identical, throughput_ok)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "bit-identical"
    } else {
        "DIVERGED"
    }
}

fn write_json(name: &str, json: &str) {
    let target = gradsec_bench::workspace_target();
    let path = target.join(name);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    export_rounds();
    if std::env::var("GRADSEC_MUX_GATE").as_deref() == Ok("0") {
        eprintln!("GRADSEC_MUX_GATE=0: skipping the multiplexed-transport gate");
        return;
    }
    let slack = std::env::var("GRADSEC_MUX_SLACK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.25_f64);
    let mut all_identical = true;
    let mut throughput_ok = true;
    let mut tiers = Vec::new();
    for sessions in gate_fleets() {
        let (row, identical, fast_enough) = gate_tier(sessions, slack);
        all_identical &= identical;
        // The throughput bar binds at the kilo-session tier and up;
        // tinier (fd-clamped) tiers still gate bit-identity.
        if sessions >= 1_000 {
            throughput_ok &= fast_enough;
        }
        tiers.push(row);
    }
    let json = format!(
        r#"{{"source":"repro_rounds mux gate","slack":{},"all_bit_identical":{all_identical},"throughput_ok":{throughput_ok},"fleets":[{}]}}"#,
        json_number(slack),
        tiers.join(",")
    );
    write_json("transport_overhead.json", &json);
    println!("{json}");
    if !all_identical {
        eprintln!("FAIL: a mux configuration diverged from the reference");
        std::process::exit(1);
    }
    if !throughput_ok {
        eprintln!("FAIL: the mux round fell below threaded-TCP throughput");
        std::process::exit(1);
    }
}
