//! Runs a small protected federation and exports every round's report —
//! participants, mean loss, protected layers and the TEE ledger — as JSON
//! (`target/rounds.json` plus stdout), demonstrating the per-round export
//! path repro pipelines consume. Then runs the **multiplexed-transport
//! gate**: kilo-session (and, under `GRADSEC_FULL=1`, ~10k-session)
//! loopback fleets where every `TransportKind::TcpMux` configuration —
//! (1,2,4 workers) × (1,4 shards), plus a fixed-fault-seed run — must be
//! bit-identical to the flat in-process reference and to threaded TCP,
//! and the mux round must not fall below threaded-TCP throughput at the
//! kilo-session tier. The gate table (wall clocks, `sessions_per_core`,
//! mux-vs-threaded ratio) is written to `target/transport_overhead.json`
//! — the same file the `transport_overhead` criterion bench writes for
//! local runs; in CI this gate's table is the one that ships as the
//! artifact (the repro_kernels/kernel_scaling precedent).
//!
//! A **codec gate** follows: the identity codec must keep the encoded
//! payload path bit-identical to the dense reference (including over the
//! mux transport), and the lossy codecs (`int8`, `delta-topk`) must
//! shrink the steady-state round's bytes at least 3× while their final
//! weights stay within pinned divergence bounds of the identity run.
//! Per-codec bytes-per-round and compression ratios are spliced into
//! `target/transport_overhead.json` as the `codecs` column.
//!
//! Exits non-zero when any mux configuration diverges from the
//! reference, when the faulted mux run diverges from faulted threaded
//! TCP, when the kilo-session mux round is slower than
//! `GRADSEC_MUX_SLACK` × the threaded round, or when a codec breaks
//! bit-identity, the byte bar or its error bound.
//!
//! Environment:
//!
//! * `GRADSEC_TRANSPORT=tcp|mux` — drive the export rounds over loopback
//!   TCP (threaded or multiplexed) instead of the in-process transport
//!   (the JSON is bit-identical any way).
//! * `GRADSEC_ROUNDS=n` — override the export round count (default 5).
//! * `GRADSEC_MUX_GATE=0` — skip the mux gate (export only).
//! * `GRADSEC_MUX_SESSIONS=1000,10000` — override the gate fleet sizes
//!   (each clamped to what `RLIMIT_NOFILE` can hold: two descriptors per
//!   loopback session plus headroom).
//! * `GRADSEC_MUX_SLACK=1.25` — throughput bar: the kilo-session mux
//!   round may take at most this multiple of the threaded round.
//!   Deliberately tolerant per push — shared CI runners compress
//!   relative timings; tighten locally to compare architectures.

use std::sync::Arc;
use std::time::Instant;

use gradsec_core::trainer::SecureTrainer;
use gradsec_core::ProtectionPolicy;
use gradsec_data::{SyntheticCifar100, SyntheticMicro};
use gradsec_fl::config::{TrainingPlan, TransportKind};
use gradsec_fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec_fl::transport::poller::{fd_soft_limit, raise_fd_soft_limit};
use gradsec_fl::{CodecKind, ExecutionEngine, FaultPlan, LatencyModel, MuxOptions};
use gradsec_nn::model::ModelWeights;
use gradsec_nn::zoo;
use gradsec_tee::cost::json_number;

const DIM: usize = 8;
const FAULT_SEED: u64 = 0xFA417;
const MUX_WORKERS: [usize; 3] = [1, 2, 4];
const MUX_SHARDS: [usize; 2] = [1, 4];

/// The codec gate's model width: wide enough that per-tensor metadata
/// (dims, scales, indices) cannot mask the 3× byte reduction the lossy
/// codecs must deliver.
const CODEC_DIM: usize = 32;
/// Rounds per codec-gate run: the delta codec's first exchange is dense
/// (no committed view yet), so the byte bar is measured on the *last*
/// round, in steady state.
const CODEC_ROUNDS: u64 = 3;
/// Byte bar: lossy codecs must shrink the last round's payload at least
/// this factor vs. the dense column.
const CODEC_MIN_RATIO: f64 = 3.0;
/// Pinned compression-error bounds: max |w - w_ref| between a lossy
/// run's final global weights and the identity reference, after
/// `CODEC_ROUNDS` seeded rounds. Deterministic per seed; bounds carry
/// ~2× slack over the observed divergence.
const INT8_MAX_DIVERGENCE: f32 = 0.02;
const TOPK_MAX_DIVERGENCE: f32 = 0.10;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn transport_name(transport: TransportKind) -> &'static str {
    match transport {
        TransportKind::InProcess => "in-process",
        TransportKind::Tcp => "loopback-TCP",
        TransportKind::TcpMux => "multiplexed-TCP",
    }
}

/// The per-round export demo (unchanged shape: LeNet-5, protected
/// layers, JSON to `target/rounds.json`).
fn export_rounds() {
    let transport = match std::env::var("GRADSEC_TRANSPORT").as_deref() {
        Ok("tcp") => TransportKind::Tcp,
        Ok("mux") => TransportKind::TcpMux,
        _ => TransportKind::InProcess,
    };
    let rounds = env_u64("GRADSEC_ROUNDS", 5);
    let data = Arc::new(SyntheticCifar100::with_classes(96, 2, 5));
    let policy = ProtectionPolicy::static_layers(&[1, 4]).expect("valid layer set");
    let mut fed = Federation::builder(TrainingPlan {
        rounds,
        clients_per_round: 3,
        batches_per_cycle: 2,
        batch_size: 8,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::lenet5_with(2, 13).expect("LeNet-5 builds"))
    .clients(4, data)
    .trainer(|_| Box::new(SecureTrainer::new()))
    .scheduler(policy)
    .transport(transport)
    .build()
    .expect("federation builds");
    eprintln!(
        "Running {rounds} protected rounds over the {} transport…",
        transport_name(transport)
    );
    let report = fed.run().expect("federation runs");
    fed.shutdown().expect("clean teardown");
    let json = report.to_json();
    write_json("rounds.json", &json);
    println!("{json}");
}

/// Gate fleet sizes: kilo-session per push, ~10k under `GRADSEC_FULL=1`,
/// each clamped to what the file-descriptor limit can hold (a loopback
/// session burns two descriptors — the mux socket and the server's
/// accepted end — plus headroom for listeners, stdio and the allocator).
fn gate_fleets() -> Vec<usize> {
    let requested: Vec<usize> = std::env::var("GRADSEC_MUX_SESSIONS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| {
            if gradsec_bench::Profile::from_env().is_full() {
                vec![1_000, 10_000]
            } else {
                vec![1_000]
            }
        });
    let cap = raise_fd_soft_limit()
        .or_else(fd_soft_limit)
        .map(|fds| (fds.saturating_sub(64) / 2) as usize)
        .unwrap_or(usize::MAX);
    requested
        .into_iter()
        .map(|n| {
            let clamped = n.min(cap).max(1);
            if clamped < n {
                eprintln!(
                    "clamping {n}-session tier to {clamped}: RLIMIT_NOFILE holds \
                     {cap} loopback sessions"
                );
            }
            clamped
        })
        .collect()
}

fn gate_builder(clients: usize) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, DIM, 5));
    Federation::builder(TrainingPlan {
        rounds: 1,
        clients_per_round: clients,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::tiny_mlp(DIM, 4, 2, 13).expect("tiny MLP builds"))
    .clients(clients, data)
}

fn fault_plan() -> FaultPlan {
    FaultPlan::seeded(FAULT_SEED)
        .dropout(0.10)
        .drop_messages(0.05)
        .garble_replies(0.02)
        .latency(LatencyModel::Exponential { mean_s: 0.5 })
        .spare(24)
}

/// A faulted gate round selects a sub-cohort so the over-provisioned
/// selection has spares to promote when the seeded faults shed clients.
fn faulted_builder(clients: usize) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, DIM, 5));
    Federation::builder(TrainingPlan {
        rounds: 1,
        clients_per_round: (clients / 16).max(1),
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::tiny_mlp(DIM, 4, 2, 13).expect("tiny MLP builds"))
    .clients(clients, data)
    .faults(fault_plan())
}

fn finish(mut fed: Federation, start: Instant) -> (FederationReport, ModelWeights, f64) {
    let report = fed.run().expect("gate round completes");
    let wall = start.elapsed().as_secs_f64();
    let weights = fed.server().global().clone();
    fed.shutdown().expect("clean teardown");
    (report, weights, wall)
}

fn run_flat(
    builder: FederationBuilder,
    transport: TransportKind,
    workers: usize,
) -> (FederationReport, ModelWeights, f64) {
    let start = Instant::now();
    let fed = builder
        .transport(transport)
        .engine(ExecutionEngine::new(workers))
        .build()
        .expect("gate fleet builds");
    finish(fed, start)
}

struct MuxRow {
    workers: usize,
    shards: usize,
    wall_s: f64,
    identical: bool,
}

/// One gate tier: reference + threaded TCP + the mux matrix + the
/// faulted pair. Returns the JSON row and whether everything held.
fn gate_tier(sessions: usize, slack: f64) -> (String, bool, bool) {
    eprintln!("{sessions}-session tier: flat in-process reference…");
    let (ref_report, ref_weights, inproc_wall) =
        run_flat(gate_builder(sessions), TransportKind::InProcess, 1);
    eprintln!("  in-process: {inproc_wall:.3}s; threaded TCP…");
    let (tcp_report, tcp_weights, tcp_wall) =
        run_flat(gate_builder(sessions), TransportKind::Tcp, 1);
    let tcp_identical = tcp_report == ref_report && tcp_weights == ref_weights;
    eprintln!(
        "  threaded TCP: {tcp_wall:.3}s ({})",
        verdict(tcp_identical)
    );

    let mut all_identical = tcp_identical;
    let mut rows: Vec<MuxRow> = Vec::new();
    for workers in MUX_WORKERS {
        for shards in MUX_SHARDS {
            let start = Instant::now();
            let mut fed = gate_builder(sessions)
                .transport(TransportKind::TcpMux)
                .shards(shards)
                .engine(ExecutionEngine::new(workers))
                .build_sharded()
                .expect("mux fleet builds");
            let report = fed.run().expect("mux round completes");
            let wall_s = start.elapsed().as_secs_f64();
            let identical = report == ref_report && fed.server().global() == &ref_weights;
            fed.shutdown().expect("clean mux teardown");
            all_identical &= identical;
            eprintln!(
                "  mux {workers} workers x {shards} shards: {wall_s:.3}s ({})",
                verdict(identical)
            );
            rows.push(MuxRow {
                workers,
                shards,
                wall_s,
                identical,
            });
        }
    }

    // Fixed fault seed: the faulted mux round must match the faulted
    // threaded round bit for bit (every fault decision is a pure
    // function of seed/client/message, never of who drives the socket).
    let (ftcp_report, ftcp_weights, _) = run_flat(faulted_builder(sessions), TransportKind::Tcp, 2);
    let (fmux_report, fmux_weights, _) =
        run_flat(faulted_builder(sessions), TransportKind::TcpMux, 2);
    let faulted_identical = fmux_report == ftcp_report && fmux_weights == ftcp_weights;
    all_identical &= faulted_identical;
    eprintln!("  faulted mux vs threaded: {}", verdict(faulted_identical));

    // Throughput bar: the flat 1-worker mux round vs its threaded twin.
    let mux_flat_wall = rows
        .iter()
        .find(|r| r.workers == 1 && r.shards == 1)
        .map(|r| r.wall_s)
        .unwrap_or(f64::INFINITY);
    let ratio = mux_flat_wall / tcp_wall;
    let throughput_ok = ratio <= slack;
    eprintln!(
        "  mux/threaded wall ratio: {ratio:.3} (bar {slack:.2}) ({})",
        if throughput_ok { "ok" } else { "TOO SLOW" }
    );

    let loops = MuxOptions::default().effective_loops();
    let mux_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                r#"{{"workers":{},"shards":{},"wall_s":{},"identical":{}}}"#,
                r.workers,
                r.shards,
                json_number(r.wall_s),
                r.identical
            )
        })
        .collect();
    let row = format!(
        r#"{{"sessions":{sessions},"event_loops":{loops},"sessions_per_core":{},"inprocess_wall_s":{},"threaded_wall_s":{},"mux_flat_wall_s":{},"mux_vs_threaded":{},"threaded_identical":{tcp_identical},"faulted_identical":{faulted_identical},"mux":[{}]}}"#,
        sessions.div_ceil(loops),
        json_number(inproc_wall),
        json_number(tcp_wall),
        json_number(mux_flat_wall),
        json_number(ratio),
        mux_rows.join(",")
    );
    (row, all_identical, throughput_ok)
}

fn codec_builder(clients: usize, codec: CodecKind) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, CODEC_DIM, 5));
    Federation::builder(TrainingPlan {
        rounds: CODEC_ROUNDS,
        clients_per_round: clients,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::tiny_mlp(CODEC_DIM, 16, 2, 13).expect("tiny MLP builds"))
    .clients(clients, data)
    .codec(codec)
}

fn max_abs_diff(a: &ModelWeights, b: &ModelWeights) -> f32 {
    a.iter()
        .zip(b.iter())
        .flat_map(|(x, y)| {
            x.w.data()
                .iter()
                .zip(y.w.data())
                .chain(x.b.data().iter().zip(y.b.data()))
        })
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f32, f32::max)
}

/// The update-codec gate: identity stays bit-identical to the dense
/// reference across transports, and each lossy codec must shrink the
/// steady-state round by [`CODEC_MIN_RATIO`] while its final weights
/// stay within the pinned divergence bound. Returns the JSON rows and
/// whether every bar held.
fn codec_gate(sessions: usize) -> (String, bool) {
    eprintln!("codec gate ({sessions} clients, {CODEC_ROUNDS} rounds)…");
    let start = Instant::now();
    let (ref_report, ref_weights, _) = finish(
        codec_builder(sessions, CodecKind::Identity)
            .build()
            .expect("identity fleet builds"),
        start,
    );
    let ref_wire = ref_report
        .rounds
        .last()
        .expect("reference ran rounds")
        .ledger
        .total_wire();

    // Identity over the mux transport: the encoded path must keep the
    // byte-for-byte report/weight identity every other gate relies on.
    let start = Instant::now();
    let (mux_report, mux_weights, _) = finish(
        codec_builder(sessions, CodecKind::Identity)
            .transport(TransportKind::TcpMux)
            .build()
            .expect("identity mux fleet builds"),
        start,
    );
    let identity_identical = mux_report == ref_report
        && mux_weights == ref_weights
        && ref_wire.encoded_bytes() == ref_wire.raw_bytes();
    eprintln!("  identity over mux: {}", verdict(identity_identical));

    let mut ok = identity_identical;
    let mut rows = vec![format!(
        r#"{{"codec":"identity","last_round_encoded_bytes":{},"last_round_raw_bytes":{},"compression_ratio":{},"divergence":0,"ok":{identity_identical}}}"#,
        ref_wire.encoded_bytes(),
        ref_wire.raw_bytes(),
        json_number(ref_wire.compression_ratio()),
    )];
    for (codec, bound) in [
        (CodecKind::Int8, INT8_MAX_DIVERGENCE),
        (CodecKind::DeltaTopK, TOPK_MAX_DIVERGENCE),
    ] {
        let start = Instant::now();
        let (report, weights, _) = finish(
            codec_builder(sessions, codec)
                .build()
                .expect("lossy fleet builds"),
            start,
        );
        let wire = report
            .rounds
            .last()
            .expect("lossy run completed rounds")
            .ledger
            .total_wire();
        let ratio = wire.compression_ratio();
        let divergence = max_abs_diff(&weights, &ref_weights);
        let row_ok = report.rounds_completed == ref_report.rounds_completed
            && ratio >= CODEC_MIN_RATIO
            && divergence <= bound;
        ok &= row_ok;
        eprintln!(
            "  {}: last-round bytes {} vs {} dense ({ratio:.2}x, bar {CODEC_MIN_RATIO:.1}x), \
             divergence {divergence:.5} (bound {bound}) ({})",
            codec.name(),
            wire.encoded_bytes(),
            wire.raw_bytes(),
            if row_ok { "ok" } else { "FAILED" }
        );
        rows.push(format!(
            r#"{{"codec":"{}","last_round_encoded_bytes":{},"last_round_raw_bytes":{},"compression_ratio":{},"divergence":{},"ok":{row_ok}}}"#,
            codec.name(),
            wire.encoded_bytes(),
            wire.raw_bytes(),
            json_number(ratio),
            json_number(divergence as f64),
        ));
    }
    (rows.join(","), ok)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "bit-identical"
    } else {
        "DIVERGED"
    }
}

fn write_json(name: &str, json: &str) {
    let target = gradsec_bench::workspace_target();
    let path = target.join(name);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    export_rounds();
    if std::env::var("GRADSEC_MUX_GATE").as_deref() == Ok("0") {
        eprintln!("GRADSEC_MUX_GATE=0: skipping the multiplexed-transport gate");
        return;
    }
    let slack = std::env::var("GRADSEC_MUX_SLACK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.25_f64);
    let mut all_identical = true;
    let mut throughput_ok = true;
    let mut tiers = Vec::new();
    let fleets = gate_fleets();
    for &sessions in &fleets {
        let (row, identical, fast_enough) = gate_tier(sessions, slack);
        all_identical &= identical;
        // The throughput bar binds at the kilo-session tier and up;
        // tinier (fd-clamped) tiers still gate bit-identity.
        if sessions >= 1_000 {
            throughput_ok &= fast_enough;
        }
        tiers.push(row);
    }
    let (codec_rows, codec_ok) = codec_gate(fleets.first().copied().unwrap_or(1_000));
    let json = format!(
        r#"{{"source":"repro_rounds mux gate","slack":{},"all_bit_identical":{all_identical},"throughput_ok":{throughput_ok},"codec_gate_ok":{codec_ok},"codecs":[{codec_rows}],"fleets":[{}]}}"#,
        json_number(slack),
        tiers.join(",")
    );
    write_json("transport_overhead.json", &json);
    println!("{json}");
    if !all_identical {
        eprintln!("FAIL: a mux configuration diverged from the reference");
        std::process::exit(1);
    }
    if !throughput_ok {
        eprintln!("FAIL: the mux round fell below threaded-TCP throughput");
        std::process::exit(1);
    }
    if !codec_ok {
        eprintln!("FAIL: a codec broke bit-identity, the byte bar or its error bound");
        std::process::exit(1);
    }
}
