//! Fleet-scale sharding repro: runs one federated round over lightweight
//! client fleets (default 1,000 and 10,000 clients, all participating)
//! for 1/2/4/8 engine shards × 1/4 workers, asserts every sharded report
//! and final global model is **bit-identical** to the flat, sequential
//! reference run, and exports the wall-clock table as JSON
//! (`target/repro_shards.json` plus stdout).
//!
//! Exits non-zero when any configuration diverges from the reference or a
//! malformed (duplicate-pick) schedule fails to error — so CI can use the
//! binary as an end-to-end scale gate.
//!
//! Environment:
//!
//! * `GRADSEC_FLEETS=1000,10000` — override the fleet sizes.
//! * `GRADSEC_ROUNDS=n` — rounds per run (default 1).

use std::sync::Arc;
use std::time::Instant;

use gradsec_data::SyntheticMicro;
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::runner::{Federation, FederationBuilder, FederationReport};
use gradsec_fl::{ExecutionEngine, FlError};
use gradsec_nn::model::ModelWeights;
use gradsec_nn::zoo;
use gradsec_tee::cost::json_number;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKER_COUNTS: [usize; 2] = [1, 4];
const DIM: usize = 8;

fn env_usize(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fleets() -> Vec<usize> {
    std::env::var("GRADSEC_FLEETS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1_000, 10_000])
}

fn builder(clients: usize, rounds: u64) -> FederationBuilder {
    let data = Arc::new(SyntheticMicro::new(2 * clients, 2, DIM, 5));
    Federation::builder(TrainingPlan {
        rounds,
        clients_per_round: clients,
        batches_per_cycle: 1,
        batch_size: 2,
        learning_rate: 0.05,
        seed: 7,
    })
    .model(|| zoo::tiny_mlp(DIM, 4, 2, 13).expect("tiny MLP builds"))
    .clients(clients, data)
}

/// The flat, sequential reference every sharded configuration must
/// reproduce exactly.
fn reference(clients: usize, rounds: u64) -> (FederationReport, ModelWeights, f64) {
    let mut fed = builder(clients, rounds).build().expect("flat fleet builds");
    let start = Instant::now();
    let report = fed
        .run_with(&ExecutionEngine::sequential())
        .expect("reference run completes");
    let wall = start.elapsed().as_secs_f64();
    let weights = fed.server().global().clone();
    fed.shutdown().expect("clean teardown");
    (report, weights, wall)
}

/// A malformed schedule must surface as an error, never a panic — the
/// regression the engine hardening fixed.
fn duplicate_picks_error() -> bool {
    let mut fed = builder(8, 1).build().expect("probe fleet builds");
    let download = fed.server().download(vec![]);
    let outcome = ExecutionEngine::new(4).execute_cycles(fed.clients_mut(), &[0, 3, 0], &download);
    matches!(outcome, Err(FlError::InvalidSelection { .. }))
}

fn main() {
    let rounds = env_usize("GRADSEC_ROUNDS", 1);
    let mut all_identical = true;
    let mut fleet_rows = Vec::new();
    for clients in fleets() {
        eprintln!("{clients}-client fleet: flat sequential reference…");
        let (flat_report, flat_weights, flat_wall) = reference(clients, rounds);
        let mut rows = Vec::new();
        for shards in SHARD_COUNTS {
            for workers in WORKER_COUNTS {
                let mut fed = builder(clients, rounds)
                    .shards(shards)
                    .engine(ExecutionEngine::new(workers))
                    .build_sharded()
                    .expect("sharded fleet builds");
                let start = Instant::now();
                let report = fed.run().expect("sharded run completes");
                let wall = start.elapsed().as_secs_f64();
                let identical = report == flat_report && fed.server().global() == &flat_weights;
                all_identical &= identical;
                fed.shutdown().expect("clean teardown");
                eprintln!(
                    "  {shards} shards x {workers} workers: {:.3}s ({})",
                    wall,
                    if identical {
                        "bit-identical"
                    } else {
                        "DIVERGED"
                    }
                );
                rows.push(format!(
                    r#"{{"shards":{shards},"workers":{workers},"wall_s":{},"identical":{identical}}}"#,
                    json_number(wall)
                ));
            }
        }
        fleet_rows.push(format!(
            r#"{{"clients":{clients},"rounds":{rounds},"flat_sequential_wall_s":{},"configs":[{}]}}"#,
            json_number(flat_wall),
            rows.join(",")
        ));
    }
    let dup_errors = duplicate_picks_error();
    let json = format!(
        r#"{{"fleets":[{}],"all_bit_identical":{all_identical},"duplicate_pick_schedules_error":{dup_errors}}}"#,
        fleet_rows.join(",")
    );
    let target = gradsec_bench::workspace_target();
    let path = target.join("repro_shards.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!("{json}");
    if !all_identical {
        eprintln!("FAIL: a sharded configuration diverged from the flat reference");
        std::process::exit(1);
    }
    if !dup_errors {
        eprintln!("FAIL: duplicate-pick schedule did not return an error");
        std::process::exit(1);
    }
}
