//! Regenerates the paper's Table 1 (headline summary).

use gradsec_bench::experiments::table1;
use gradsec_bench::{master_seed, Profile};

fn main() {
    let profile = Profile::from_env();
    println!(
        "GradSec reproduction — Table 1 (profile {profile:?}, seed {})",
        master_seed()
    );
    println!("Paper reference: DRIA ImageLoss < 1, MIA AUC = 0.95, DPIA AUC = 0.99;");
    println!("gains -8.3%/-30% (static vs DarkneTZ) and -56.7%/-8% (dynamic).\n");
    let t = table1::run(profile, master_seed());
    println!("{}", table1::render(&t));
}
