//! Regenerates the paper's Table 5 (DPIA AUC, static vs dynamic).

use gradsec_bench::experiments::table5;
use gradsec_bench::{master_seed, Profile};

fn main() {
    let profile = Profile::from_env();
    println!(
        "GradSec reproduction — Table 5 (profile {profile:?}, seed {})",
        master_seed()
    );
    println!("Paper: static 0.99/0.99/0.99/0.95/0.85; dynamic MW=2/3/4 -> 0.78/0.77/0.80.\n");
    let t = table5::run(profile, master_seed());
    println!("{}", table5::render(&t));
}
