//! Regenerates the paper's Table 6 (CPU time and TEE memory per config).

use gradsec_bench::experiments::table6;

fn main() {
    println!("GradSec reproduction — Table 6 (LeNet-5, batch 32, Pi-3B+ cost model)");
    println!("Paper baseline: 2.191s + 0.021s + 0s; L2 20% ovh; L5 212%; L2+L5 235%.\n");
    let t = table6::run();
    println!("{}", table6::render(&t));
}
