//! Figure 5 — DRIA ImageLoss as a function of the protected layer.
//!
//! X-axis point `0` is the unprotected baseline; point `k ≥ 1` shelters
//! layer `L_k` alone. The paper's shape: reconstruction succeeds
//! (ImageLoss small) with no protection, and collapses when an early
//! convolutional layer — especially L2 — is sheltered, because the
//! low-level visual features never leave the enclave.

use gradsec_attacks::dria::{run_dria, DriaConfig, DriaOptimizer};
use gradsec_data::{one_hot, Dataset, SyntheticCifar100};
use gradsec_nn::{zoo, Sequential};
use gradsec_tensor::Tensor;

use crate::table::TextTable;
use crate::Profile;

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// X-axis value: 0 = no protection, k = layer `L_k` protected.
    pub protected_layer: usize,
    /// The measured ImageLoss.
    pub image_loss: f32,
    /// Final gradient-matching objective (diagnostics).
    pub objective: f32,
}

/// One curve (one target image on one model).
#[derive(Debug, Clone)]
pub struct Series {
    /// Target description (the paper uses a "Person" and a "Table" image).
    pub target: String,
    /// Measured points in x order.
    pub points: Vec<Point>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Panel (a): LeNet-5 curves.
    pub lenet: Vec<Series>,
    /// Panel (b): AlexNet curve.
    pub alexnet: Vec<Series>,
}

fn sweep(
    model: &mut Sequential,
    target: &Tensor,
    label: &Tensor,
    xs: &[usize],
    cfg: &DriaConfig,
) -> Vec<Point> {
    xs.iter()
        .map(|&x| {
            let protected: Vec<usize> = if x == 0 { vec![] } else { vec![x - 1] };
            let out =
                run_dria(model, target, label, &protected, cfg).expect("dria configuration valid");
            Point {
                protected_layer: x,
                image_loss: out.image_loss,
                objective: out.final_objective,
            }
        })
        .collect()
}

/// Runs the figure's measurements.
pub fn run(profile: Profile, seed: u64) -> Fig5 {
    let ds = SyntheticCifar100::new(64, seed);
    let (lenet_iters, alex_iters) = if profile.is_full() {
        (1200, 60)
    } else {
        (600, 25)
    };
    // Panel (a): LeNet-5, two target images.
    let mut lenet = Vec::new();
    let lenet_xs: Vec<usize> = (0..=5).collect();
    for (name, sample_idx) in [("Person", 3usize), ("Table", 11)] {
        // DLG requires a twice-differentiable model; like the reference
        // implementation the paper uses, the attacked LeNet-5 carries
        // sigmoid activations (see `zoo::lenet5_smooth_with`).
        let mut model = zoo::lenet5_smooth(seed + 1).expect("LeNet-5 builds");
        let s = ds.sample(sample_idx);
        let target = s.image.reshape(&[1, 3, 32, 32]).expect("image shape");
        let label = one_hot(&[s.label], ds.num_classes());
        let cfg = DriaConfig {
            iterations: lenet_iters,
            optimizer: DriaOptimizer::Lbfgs,
            seed: seed + sample_idx as u64,
            ..DriaConfig::default()
        };
        lenet.push(Series {
            target: name.to_owned(),
            points: sweep(&mut model, &target, &label, &lenet_xs, &cfg),
        });
    }
    // Panel (b): AlexNet, one target image; the quick profile probes the
    // baseline and the decisive L2 point only.
    let alex_xs: Vec<usize> = if profile.is_full() {
        (0..=8).collect()
    } else {
        vec![0, 2]
    };
    let mut model = zoo::alexnet(seed + 2).expect("AlexNet builds");
    let s = ds.sample(7);
    let target = s.image.reshape(&[1, 3, 32, 32]).expect("image shape");
    let label = one_hot(&[s.label], ds.num_classes());
    let cfg = DriaConfig {
        iterations: alex_iters,
        optimizer: DriaOptimizer::Lbfgs,
        seed: seed + 7,
        ..DriaConfig::default()
    };
    let alexnet = vec![Series {
        target: "Person".to_owned(),
        points: sweep(&mut model, &target, &label, &alex_xs, &cfg),
    }];
    Fig5 { lenet, alexnet }
}

/// Renders both panels.
pub fn render(f: &Fig5) -> String {
    let mut out = String::new();
    for (title, series) in [
        (
            "(a) DRIA vs LeNet-5 — ImageLoss per protected layer",
            &f.lenet,
        ),
        (
            "(b) DRIA vs AlexNet — ImageLoss per protected layer",
            &f.alexnet,
        ),
    ] {
        out.push_str(title);
        out.push('\n');
        let mut t = TextTable::new(vec!["target", "protected layer", "ImageLoss", "objective"]);
        for s in series {
            for p in &s.points {
                t.row(vec![
                    s.target.clone(),
                    if p.protected_layer == 0 {
                        "none".to_owned()
                    } else {
                        format!("L{}", p.protected_layer)
                    },
                    format!("{:.3}", p.image_loss),
                    format!("{:.4}", p.objective),
                ]);
            }
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // A miniature end-to-end check; full-strength curves come from the
    // repro binary (release mode).
    #[test]
    fn quick_profile_produces_all_points() {
        let ds = SyntheticCifar100::new(8, 1);
        let s = ds.sample(0);
        let mut model = zoo::lenet5_with(10, 1).unwrap();
        let target = s.image.reshape(&[1, 3, 32, 32]).unwrap();
        let label = one_hot(&[s.label % 10], 10);
        let cfg = DriaConfig {
            iterations: 2,
            ..DriaConfig::default()
        };
        let pts = sweep(&mut model, &target, &label, &[0, 2], &cfg);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.image_loss.is_finite()));
    }
}
