//! Figure 6 — MIA AUC under static GradSec protection.
//!
//! Panel (a): LeNet-5 with tail-layer sets `{}`, `{L5}`, `{L5,L4}`,
//! `{L5..L3}`, `{L5..L2}` (paper: AUC 0.95 → 0.85 → … → 0.80).
//! Panel (b): AlexNet with `{}`, conv-only, dense-only and `{L6}`
//! (paper: 0.85 / 0.79 / 0.59 / 0.56).
//!
//! The victim is trained (overfitted) once per model; every protection
//! config then reuses the same precomputed gradient rows with different
//! column deletions — exactly the `D_grad` semantics of §8.1.

use gradsec_attacks::mia::{attack_auc_from_rows, gradient_rows, overfit_victim, MiaConfig};
use gradsec_data::{split::member_split, Dataset, SyntheticCifar100};
use gradsec_nn::zoo;

use crate::table::TextTable;
use crate::Profile;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Config label (paper's y-axis).
    pub label: String,
    /// Protected layer indices.
    pub protected: Vec<usize>,
    /// Attack AUC.
    pub auc: f32,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Panel (a) rows.
    pub lenet: Vec<Row>,
    /// LeNet victim's final training accuracy (overfitting check).
    pub lenet_victim_acc: f32,
    /// Panel (b) rows.
    pub alexnet: Vec<Row>,
    /// AlexNet victim's final training accuracy.
    pub alexnet_victim_acc: f32,
}

#[allow(clippy::type_complexity)]
fn panel(
    mut model: gradsec_nn::Sequential,
    dataset: &SyntheticCifar100,
    cfg: &MiaConfig,
    configs: &[(&str, Vec<usize>)],
) -> (Vec<Row>, f32) {
    let (members, non_members) = member_split(dataset.len(), cfg.members, cfg.seed);
    let victim_acc =
        overfit_victim(&mut model, dataset, &members, cfg).expect("victim training succeeds");
    let (layout, rows) = gradient_rows(
        &mut model,
        dataset,
        &members,
        &non_members,
        cfg.raw_per_layer,
    )
    .expect("gradient probing succeeds");
    let out = configs
        .iter()
        .map(|(label, protected)| Row {
            label: (*label).to_owned(),
            protected: protected.clone(),
            auc: attack_auc_from_rows(&layout, &rows, protected, cfg.attack_train_frac, cfg.seed)
                .expect("attack evaluation succeeds"),
        })
        .collect();
    (out, victim_acc)
}

/// Runs both panels.
pub fn run(profile: Profile, seed: u64) -> Fig6 {
    // Panel (a): LeNet-5 on synthetic CIFAR-100.
    let (members, epochs) = if profile.is_full() {
        (150, 60)
    } else {
        (80, 40)
    };
    let lenet_ds = SyntheticCifar100::new(2 * members + 50, seed);
    // Summary-statistic features only (raw_per_layer = 0): raw strided
    // gradient values act as noise dimensions for the linear attack model
    // and mask the membership signal the paper's attacker exploits.
    let lenet_cfg = MiaConfig {
        members,
        overfit_epochs: epochs,
        batch_size: 16,
        learning_rate: 0.03,
        attack_train_frac: 0.5,
        raw_per_layer: 0,
        seed,
    };
    let lenet_configs: [(&str, Vec<usize>); 5] = [
        ("None", vec![]),
        ("L5", vec![4]),
        ("L5+L4", vec![4, 3]),
        ("L5+L4+L3", vec![4, 3, 2]),
        ("L5+L4+L3+L2", vec![4, 3, 2, 1]),
    ];
    let (lenet, lenet_victim_acc) = panel(
        zoo::lenet5(seed + 1).expect("LeNet-5 builds"),
        &lenet_ds,
        &lenet_cfg,
        &lenet_configs,
    );
    // Panel (b): AlexNet.
    let (a_members, a_epochs) = if profile.is_full() {
        (48, 25)
    } else {
        (16, 15)
    };
    let alex_ds = SyntheticCifar100::new(2 * a_members + 20, seed + 9);
    let alex_cfg = MiaConfig {
        members: a_members,
        overfit_epochs: a_epochs,
        batch_size: 8,
        learning_rate: 0.01,
        attack_train_frac: 0.5,
        raw_per_layer: 0,
        seed: seed + 9,
    };
    let alex_configs: [(&str, Vec<usize>); 4] = [
        ("None", vec![]),
        ("convolutional (L1_to_L5)", vec![0, 1, 2, 3, 4]),
        ("dense (L6-L7-L8)", vec![5, 6, 7]),
        ("L6", vec![5]),
    ];
    let (alexnet, alexnet_victim_acc) = panel(
        zoo::alexnet(seed + 2).expect("AlexNet builds"),
        &alex_ds,
        &alex_cfg,
        &alex_configs,
    );
    Fig6 {
        lenet,
        lenet_victim_acc,
        alexnet,
        alexnet_victim_acc,
    }
}

/// Renders both panels.
pub fn render(f: &Fig6) -> String {
    let mut out = String::new();
    for (title, rows, acc) in [
        (
            "(a) MIA vs LeNet-5 — AUC per protected set",
            &f.lenet,
            f.lenet_victim_acc,
        ),
        (
            "(b) MIA vs AlexNet — AUC per protected set",
            &f.alexnet,
            f.alexnet_victim_acc,
        ),
    ] {
        out.push_str(&format!("{title} (victim train acc {acc:.2})\n"));
        let mut t = TextTable::new(vec!["protected", "AUC"]);
        for r in rows {
            t.row(vec![r.label.clone(), format!("{:.3}", r.auc)]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full panels are exercised by the repro binary; here a miniature
    // LeNet-5 variant checks the pipeline end to end.
    #[test]
    fn miniature_panel_produces_ordered_rows() {
        let ds = SyntheticCifar100::with_classes(60, 4, 5);
        let cfg = MiaConfig {
            members: 20,
            overfit_epochs: 20,
            batch_size: 8,
            learning_rate: 0.05,
            attack_train_frac: 0.5,
            raw_per_layer: 8,
            seed: 1,
        };
        let configs: [(&str, Vec<usize>); 2] = [("None", vec![]), ("all", vec![0, 1])];
        let (rows, acc) = panel(
            zoo::tiny_mlp(3 * 32 * 32, 16, 4, 4).unwrap(),
            &ds,
            &cfg,
            &configs,
        );
        assert_eq!(rows.len(), 2);
        assert!(acc > 0.8, "victim should overfit, acc {acc}");
        // Full protection cannot beat no protection.
        assert!(rows[1].auc <= rows[0].auc + 0.1);
    }
}
