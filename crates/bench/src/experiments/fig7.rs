//! Figure 7 — bar charts of one-cycle training time (A, C) and TEE
//! memory (B, D) for static and dynamic (MW=2) GradSec.
//!
//! The data is Table 6's; this module arranges it into the four panels
//! and renders ASCII bar charts.

use crate::experiments::table6::{self, Row, Table6};

/// One bar of a panel.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Config label.
    pub label: String,
    /// Stacked time components (user, kernel, alloc) or a single memory
    /// value in MB.
    pub values: Vec<f64>,
}

/// The four panels of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Panel A: static training-time bars (user/kernel/alloc stacked).
    pub a_static_time: Vec<Bar>,
    /// Panel B: static TEE memory bars.
    pub b_static_mem: Vec<Bar>,
    /// Panel C: dynamic (MW=2) training-time bars.
    pub c_dynamic_time: Vec<Bar>,
    /// Panel D: dynamic (MW=2) TEE memory bars.
    pub d_dynamic_mem: Vec<Bar>,
    /// Baseline total time (the dashed line of panels A/C).
    pub baseline_total_s: f64,
}

fn time_bar(r: &Row) -> Bar {
    Bar {
        label: r.label.clone(),
        values: vec![r.times.user_s, r.times.kernel_s, r.times.alloc_s],
    }
}

fn mem_bar(r: &Row) -> Bar {
    Bar {
        label: r.label.clone(),
        values: vec![r.tee_mb],
    }
}

/// Builds the panels from a computed Table 6.
pub fn from_table6(t: &Table6) -> Fig7 {
    let statics = &t.static_rows;
    let (_, mw2_rows, _) = &t.dynamic[0];
    Fig7 {
        a_static_time: statics.iter().map(time_bar).collect(),
        b_static_mem: statics.iter().map(mem_bar).collect(),
        c_dynamic_time: mw2_rows.iter().map(time_bar).collect(),
        d_dynamic_mem: mw2_rows.iter().map(mem_bar).collect(),
        baseline_total_s: t.baseline.times.total_s(),
    }
}

/// Computes the figure from scratch.
pub fn run() -> Fig7 {
    from_table6(&table6::run())
}

/// Renders one panel as an ASCII bar chart.
pub fn render_panel(title: &str, bars: &[Bar], unit: &str) -> String {
    let mut out = format!("{title}\n");
    let max: f64 = bars
        .iter()
        .map(|b| b.values.iter().sum::<f64>())
        .fold(0.0, f64::max)
        .max(1e-9);
    const WIDTH: usize = 48;
    for b in bars {
        let total: f64 = b.values.iter().sum();
        let mut line = format!("  {:<28} |", b.label);
        // Stacked components use distinct glyphs: user '=', kernel '#',
        // alloc '@' (single-value bars just use '=').
        let glyphs = ['=', '#', '@'];
        for (i, v) in b.values.iter().enumerate() {
            let cells = ((v / max) * WIDTH as f64).round() as usize;
            line.push_str(&glyphs[i.min(2)].to_string().repeat(cells));
        }
        line.push_str(&format!(" {total:.3} {unit}"));
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders all four panels.
pub fn render(f: &Fig7) -> String {
    let mut out = String::new();
    out.push_str(&render_panel(
        &format!(
            "A - One cycle training time per protected layers (static; baseline {:.3} s)  [= user, # kernel, @ alloc]",
            f.baseline_total_s
        ),
        &f.a_static_time,
        "s",
    ));
    out.push('\n');
    out.push_str(&render_panel(
        "B - TEE memory usage per protected layers (static)",
        &f.b_static_mem,
        "MB",
    ));
    out.push('\n');
    out.push_str(&render_panel(
        "C - One cycle training time (dynamic, size_MW = 2)",
        &f.c_dynamic_time,
        "s",
    ));
    out.push('\n');
    out.push_str(&render_panel(
        "D - TEE memory usage (dynamic, size_MW = 2)",
        &f.d_dynamic_mem,
        "MB",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_have_expected_cardinality() {
        let f = run();
        assert_eq!(f.a_static_time.len(), 6);
        assert_eq!(f.b_static_mem.len(), 6);
        assert_eq!(f.c_dynamic_time.len(), 4);
        assert_eq!(f.d_dynamic_mem.len(), 4);
        assert!(f.baseline_total_s > 2.0);
    }

    #[test]
    fn stacked_time_bars_have_three_components() {
        let f = run();
        assert!(f.a_static_time.iter().all(|b| b.values.len() == 3));
        assert!(f.b_static_mem.iter().all(|b| b.values.len() == 1));
    }

    #[test]
    fn l4_l5_window_shows_the_alloc_wall() {
        // Panel C's L4+L5 bar is dominated by allocation (paper: 5.02 s of
        // 7.3 s total).
        let f = run();
        let l45 = f
            .c_dynamic_time
            .iter()
            .find(|b| b.label == "L4+L5")
            .expect("L4+L5 bar");
        assert!(l45.values[2] > l45.values[0] + l45.values[1]);
    }

    #[test]
    fn renders() {
        let s = render(&run());
        assert!(s.contains("A - "));
        assert!(s.contains("D - "));
        assert!(s.contains("L2+L5"));
    }
}
