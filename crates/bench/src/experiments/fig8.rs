//! Figure 8 — GradSec vs DarkneTZ head-to-head.
//!
//! * Panels A/B: static GradSec `{L2, L5}` against DarkneTZ's forced
//!   contiguous hull `L2..L5` (grouped DRIA+MIA protection).
//! * Panels C/D: dynamic GradSec (MW=2, the paper's `V_MW`) against the
//!   same DarkneTZ configuration for DPIA.
//!
//! DarkneTZ is evaluated through the identical trainer — it is simply the
//! [`gradsec_core::policy::DarknetzPolicy`] hull, which is the point: the
//! only difference is the contiguity restriction.

use gradsec_core::policy::DarknetzPolicy;
use gradsec_core::trainer::estimate_cycle;
use gradsec_core::window::MovingWindow;
use gradsec_nn::zoo;
use gradsec_tee::cost::{CostModel, TimeBreakdown};

use crate::experiments::table6::{paper_v_mw, BATCHES, BATCH_SIZE};
use crate::table::TextTable;

/// One side of a comparison.
#[derive(Debug, Clone)]
pub struct Side {
    /// Label, e.g. `"Static GradSec (L2+L5)"`.
    pub label: String,
    /// Simulated cycle times.
    pub times: TimeBreakdown,
    /// TEE memory (MB) — worst position for the dynamic side.
    pub tee_mb: f64,
}

/// A GradSec-vs-DarkneTZ panel pair (time + memory).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The GradSec side.
    pub gradsec: Side,
    /// The DarkneTZ side.
    pub darknetz: Side,
}

impl Comparison {
    /// Training-time gain of GradSec over DarkneTZ in percent (positive =
    /// GradSec faster — the paper's headline 8.3 % / 56.7 %).
    pub fn time_gain_pct(&self) -> f64 {
        (1.0 - self.gradsec.times.total_s() / self.darknetz.times.total_s()) * 100.0
    }

    /// TEE-memory gain in percent (the paper's 30 % / 8 %).
    pub fn memory_gain_pct(&self) -> f64 {
        (1.0 - self.gradsec.tee_mb / self.darknetz.tee_mb) * 100.0
    }
}

/// The two comparisons of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Panels A/B: grouped static protection (DRIA+MIA).
    pub static_grouped: Comparison,
    /// Panels C/D: dynamic protection (DPIA).
    pub dynamic: Comparison,
}

/// Computes both comparisons.
pub fn run() -> Fig8 {
    let model = zoo::lenet5(1).expect("LeNet-5 builds");
    let cost = CostModel::raspberry_pi3();
    let mb = |bytes: usize| bytes as f64 / (1024.0 * 1024.0);
    // DarkneTZ must cover {L2, L5} with one slice: L2..L5.
    let hull = DarknetzPolicy::covering(&[1, 4]).expect("non-empty");
    let hull_layers = hull.layers();
    let (dz_times, dz_peak) =
        estimate_cycle(&model, &hull_layers, BATCHES, BATCH_SIZE, &cost).expect("valid");
    let darknetz = Side {
        label: "DarkneTZ (L2+L3+L4+L5)".to_owned(),
        times: dz_times,
        tee_mb: mb(dz_peak),
    };
    // Static GradSec: the non-contiguous pair.
    let (gs_times, gs_peak) =
        estimate_cycle(&model, &[1, 4], BATCHES, BATCH_SIZE, &cost).expect("valid");
    let static_grouped = Comparison {
        gradsec: Side {
            label: "Static GradSec (L2+L5)".to_owned(),
            times: gs_times,
            tee_mb: mb(gs_peak),
        },
        darknetz: darknetz.clone(),
    };
    // Dynamic GradSec: MW=2 with the paper's V_MW, times averaged by the
    // position distribution, memory at the worst position.
    let v_mw = paper_v_mw(2);
    let window = MovingWindow::new(2, model.num_layers(), v_mw.clone(), 0).expect("valid");
    let mut weighted = Vec::new();
    let mut worst_mem = 0.0f64;
    for (pos, &weight) in v_mw.iter().enumerate().take(window.positions()) {
        let layers = window.layers_at(pos);
        let (t, peak) = estimate_cycle(&model, &layers, BATCHES, BATCH_SIZE, &cost).expect("valid");
        weighted.push((t, weight));
        worst_mem = worst_mem.max(mb(peak));
    }
    let dynamic = Comparison {
        gradsec: Side {
            label: format!("Dynamic GradSec (V_MW={v_mw:?})"),
            times: TimeBreakdown::weighted_average(&weighted),
            tee_mb: worst_mem,
        },
        darknetz,
    };
    Fig8 {
        static_grouped,
        dynamic,
    }
}

/// Renders both comparisons.
pub fn render(f: &Fig8) -> String {
    let mut out = String::new();
    for (title, cmp) in [
        ("A/B - Grouped protection (DRIA+MIA)", &f.static_grouped),
        ("C/D - DPIA protection", &f.dynamic),
    ] {
        out.push_str(title);
        out.push('\n');
        let mut t = TextTable::new(vec!["system", "user", "kernel", "alloc", "total", "TEE MB"]);
        for side in [&cmp.gradsec, &cmp.darknetz] {
            t.row(vec![
                side.label.clone(),
                format!("{:.3}s", side.times.user_s),
                format!("{:.3}s", side.times.kernel_s),
                format!("{:.3}s", side.times.alloc_s),
                format!("{:.3}s", side.times.total_s()),
                format!("{:.3}", side.tee_mb),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "GradSec gain: {:.1}% training time, {:.1}% TEE memory\n\n",
            cmp.time_gain_pct(),
            cmp.memory_gain_pct()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_gains_match_table1_shape() {
        // Paper: −8.3% training time, −30% TCB for grouped protection.
        let f = run();
        let tg = f.static_grouped.time_gain_pct();
        let mg = f.static_grouped.memory_gain_pct();
        assert!((2.0..20.0).contains(&tg), "time gain {tg:.1}%");
        assert!((20.0..40.0).contains(&mg), "memory gain {mg:.1}%");
    }

    #[test]
    fn dynamic_gains_match_table1_shape() {
        // Paper: −56.7% training time, −8% TCB for dynamic protection.
        let f = run();
        let tg = f.dynamic.time_gain_pct();
        let mg = f.dynamic.memory_gain_pct();
        assert!((40.0..70.0).contains(&tg), "time gain {tg:.1}%");
        assert!((2.0..15.0).contains(&mg), "memory gain {mg:.1}%");
    }

    #[test]
    fn dynamic_beats_static_on_time_but_not_memory() {
        // The paper's trade-off: dynamic saves much more time (no L5
        // alloc every cycle) but its worst window is more memory-hungry
        // than {L2, L5}.
        let f = run();
        assert!(f.dynamic.time_gain_pct() > f.static_grouped.time_gain_pct());
        assert!(f.dynamic.memory_gain_pct() < f.static_grouped.memory_gain_pct());
    }

    #[test]
    fn renders() {
        let s = render(&run());
        assert!(s.contains("DarkneTZ"));
        assert!(s.contains("GradSec gain"));
    }
}
