//! One module per reproduced table/figure.

pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;
pub mod table5;
pub mod table6;
