//! Table 1 — the paper's headline summary.
//!
//! Line 1: success of the unprotected attacks (DRIA ImageLoss < 1, MIA
//! AUC ≈ 0.95, DPIA AUC ≈ 0.99).
//! Lines 2–3: the layers each system must shelter (DarkneTZ forced to the
//! contiguous hull, GradSec free to pick `{L2, L5}` or a window).
//! Lines 4–5: GradSec's training-time and TCB gains over DarkneTZ.

use gradsec_attacks::dpia::{run_dpia, DpiaConfig};
use gradsec_attacks::dria::{run_dria, DriaConfig};
use gradsec_attacks::mia::{run_mia, MiaConfig};
use gradsec_core::policy::DarknetzPolicy;
use gradsec_data::{one_hot, Dataset, SyntheticCifar100};
use gradsec_nn::zoo;

use crate::experiments::fig8;
use crate::experiments::table5::{build_rows, observations, Table5Config};
use crate::table::TextTable;
use crate::Profile;

/// The summary values.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// DRIA ImageLoss with no protection (paper: < 1).
    pub dria_image_loss: f32,
    /// MIA AUC with no protection (paper: 0.95).
    pub mia_auc: f32,
    /// DPIA AUC with no protection (paper: 0.99).
    pub dpia_auc: f32,
    /// Layers DarkneTZ needs against DRIA+MIA (the contiguous hull).
    pub darknetz_layers: Vec<usize>,
    /// Layers GradSec needs against DRIA+MIA.
    pub gradsec_layers: Vec<usize>,
    /// Static training-time gain vs DarkneTZ (paper: −8.3 %).
    pub static_time_gain_pct: f64,
    /// Static TCB gain (paper: −30 %).
    pub static_tcb_gain_pct: f64,
    /// Dynamic training-time gain (paper: −56.7 %).
    pub dynamic_time_gain_pct: f64,
    /// Dynamic TCB gain (paper: −8 %).
    pub dynamic_tcb_gain_pct: f64,
}

/// Runs the summary measurements.
pub fn run(profile: Profile, seed: u64) -> Table1 {
    // DRIA baseline on LeNet-5 (one image, no protection).
    let ds = SyntheticCifar100::new(64, seed);
    let s = ds.sample(3);
    // The twice-differentiable LeNet-5 variant DLG requires.
    let mut lenet = zoo::lenet5_smooth(seed + 1).expect("LeNet-5 builds");
    let target = s.image.reshape(&[1, 3, 32, 32]).expect("image shape");
    let label = one_hot(&[s.label], ds.num_classes());
    let dria_cfg = DriaConfig {
        iterations: if profile.is_full() { 1200 } else { 600 },
        seed,
        ..DriaConfig::default()
    };
    let dria = run_dria(&mut lenet, &target, &label, &[], &dria_cfg).expect("dria runs");
    // MIA baseline on LeNet-5.
    let (members, epochs) = if profile.is_full() {
        (150, 60)
    } else {
        (60, 30)
    };
    let mia_ds = SyntheticCifar100::new(2 * members + 20, seed + 3);
    let mut victim = zoo::lenet5(seed + 4).expect("LeNet-5 builds");
    let mia_cfg = MiaConfig {
        members,
        overfit_epochs: epochs,
        batch_size: 16,
        learning_rate: 0.03,
        attack_train_frac: 0.5,
        raw_per_layer: 16,
        seed: seed + 3,
    };
    let mia = run_mia(&mut victim, &mia_ds, &[], &mia_cfg).expect("mia runs");
    // DPIA baseline on LeNet-5 / synthetic LFW.
    let t5_cfg = Table5Config {
        rounds: if profile.is_full() { 40 } else { 14 },
        ..Table5Config::for_profile(Profile::Quick, seed + 5)
    };
    let (rows, _) = build_rows(&t5_cfg);
    let (train, _, test) = observations(&rows, t5_cfg.rounds, |_| vec![]);
    let dpia = run_dpia(
        &train,
        &test,
        &DpiaConfig {
            seed: seed + 5,
            ..DpiaConfig::default()
        },
    )
    .expect("dpia runs");
    // Policy and overhead analytics.
    let gradsec_layers = vec![1usize, 4];
    let darknetz_layers = DarknetzPolicy::covering(&gradsec_layers)
        .expect("non-empty")
        .layers();
    let f8 = fig8::run();
    Table1 {
        dria_image_loss: dria.image_loss,
        mia_auc: mia.auc,
        dpia_auc: dpia.auc,
        darknetz_layers,
        gradsec_layers,
        static_time_gain_pct: f8.static_grouped.time_gain_pct(),
        static_tcb_gain_pct: f8.static_grouped.memory_gain_pct(),
        dynamic_time_gain_pct: f8.dynamic.time_gain_pct(),
        dynamic_tcb_gain_pct: f8.dynamic.memory_gain_pct(),
    }
}

fn layer_names(layers: &[usize]) -> String {
    layers
        .iter()
        .map(|l| format!("L{}", l + 1))
        .collect::<Vec<_>>()
        .join("-")
}

/// Renders the table.
pub fn render(t: &Table1) -> String {
    let mut tt = TextTable::new(vec!["", "DRIA", "MIA", "DRIA + MIA", "DPIA"]);
    tt.row(vec![
        "Success of unprotected attack".to_owned(),
        format!("ImageLoss = {:.3}", t.dria_image_loss),
        format!("AUC = {:.3}", t.mia_auc),
        "N/A".to_owned(),
        format!("AUC = {:.3}", t.dpia_auc),
    ]);
    tt.row(vec![
        "Layers in TEE (DarkneTZ)".to_owned(),
        "L2".to_owned(),
        "L5".to_owned(),
        layer_names(&t.darknetz_layers),
        layer_names(&t.darknetz_layers),
    ]);
    tt.row(vec![
        "Layers in TEE (GradSec)".to_owned(),
        "L2".to_owned(),
        "L5".to_owned(),
        format!(
            "{} and {}",
            layer_names(&t.gradsec_layers[..1]),
            layer_names(&t.gradsec_layers[1..])
        ),
        "2 layers in a RR manner".to_owned(),
    ]);
    tt.row(vec![
        "GradSec gain in training time".to_owned(),
        "=".to_owned(),
        "=".to_owned(),
        format!("-{:.1}%", t.static_time_gain_pct),
        format!("-{:.1}%", t.dynamic_time_gain_pct),
    ]);
    tt.row(vec![
        "GradSec gain in TCB size".to_owned(),
        "=".to_owned(),
        "=".to_owned(),
        format!("-{:.1}%", t.static_tcb_gain_pct),
        format!("-{:.1}%", t.dynamic_tcb_gain_pct),
    ]);
    tt.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_analytics_without_attacks() {
        // The expensive attack baselines are exercised by the repro
        // binary; the analytic rows are checked directly.
        let hull = DarknetzPolicy::covering(&[1, 4]).unwrap().layers();
        assert_eq!(hull, vec![1, 2, 3, 4]);
        let f8 = fig8::run();
        assert!(f8.static_grouped.time_gain_pct() > 0.0);
        assert!(f8.dynamic.time_gain_pct() > f8.static_grouped.time_gain_pct());
    }

    #[test]
    fn layer_name_formatting() {
        assert_eq!(layer_names(&[1, 2, 3, 4]), "L2-L3-L4-L5");
        assert_eq!(layer_names(&[1]), "L2");
    }
}
