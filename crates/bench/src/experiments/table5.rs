//! Table 5 — DPIA AUC under static and dynamic GradSec.
//!
//! Methodology (paper §8.1–8.2):
//!
//! 1. Run a real FL training of LeNet-5 on the synthetic LFW dataset,
//!    recording the global-model snapshot after every cycle.
//! 2. Build the attacker's `D_grad`: for each cycle, gradients of
//!    auxiliary batches *with* and *without* the property, computed
//!    against that cycle's snapshot (the attacker's `b_adv_prop` /
//!    `b_adv_nonprop` simulation).
//! 3. Static rows: delete a fixed layer set's columns from every row.
//! 4. Dynamic rows: per cycle, delete the columns of the layers covered
//!    by the moving window that cycle; search `V_MW` on the validation
//!    cycles ("we retain the V_MW distribution of the worst instance")
//!    and report the test-cycle AUC.

use gradsec_attacks::dpia::{run_dpia, DpiaConfig, DpiaObservation};
use gradsec_core::search::{search_v_mw, VmwSearchOutcome};
use gradsec_core::window::MovingWindow;
use gradsec_data::{batch_of, Dataset, SyntheticLfw};
use gradsec_fl::config::TrainingPlan;
use gradsec_fl::runner::Federation;
use gradsec_nn::gradient::GradientSnapshot;
use gradsec_nn::{zoo, Sequential};
use std::sync::Arc;

use crate::table::TextTable;
use crate::Profile;

/// One attacker row before protection is applied.
#[derive(Debug, Clone)]
pub struct RawRow {
    /// FL cycle the gradients belong to.
    pub cycle: u64,
    /// The gradient snapshot.
    pub snapshot: GradientSnapshot,
    /// Whether the probed batch contained the property.
    pub has_property: bool,
}

/// One dynamic-mode result row.
#[derive(Debug, Clone)]
pub struct DynamicRow {
    /// Window size.
    pub size: usize,
    /// The `V_MW` the search selected.
    pub v_mw: Vec<f64>,
    /// Validation AUC of the selected instance.
    pub val_auc: f32,
    /// Test AUC (the table's reported number).
    pub test_auc: f32,
    /// Candidates evaluated by the search.
    pub candidates: usize,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Static rows: `(label, test AUC)`.
    pub static_rows: Vec<(String, f32)>,
    /// Dynamic rows per window size.
    pub dynamic_rows: Vec<DynamicRow>,
}

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Table5Config {
    /// FL cycles to run/observe.
    pub rounds: u64,
    /// Identities in the synthetic LFW task.
    pub identities: usize,
    /// Dataset size.
    pub dataset_len: usize,
    /// Attacker probes per cycle and per class (prop/non-prop).
    pub probes_per_cycle: usize,
    /// Probe batch size.
    pub probe_batch: usize,
    /// `V_MW` grid resolution (steps of `1/steps`).
    pub grid_steps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Table5Config {
    /// Profile-scaled configuration.
    pub fn for_profile(profile: Profile, seed: u64) -> Self {
        if profile.is_full() {
            Table5Config {
                rounds: 60,
                identities: 10,
                dataset_len: 1200,
                probes_per_cycle: 4,
                probe_batch: 16,
                grid_steps: 10,
                seed,
            }
        } else {
            Table5Config {
                rounds: 30,
                identities: 8,
                dataset_len: 600,
                probes_per_cycle: 3,
                probe_batch: 16,
                grid_steps: 4,
                seed,
            }
        }
    }
}

/// Runs the FL training and builds the attacker's raw rows.
pub fn build_rows(cfg: &Table5Config) -> (Vec<RawRow>, usize) {
    let data = Arc::new(SyntheticLfw::new(
        cfg.dataset_len,
        cfg.identities,
        0.5,
        cfg.seed,
    ));
    let identities = cfg.identities;
    let seed = cfg.seed;
    let plan = TrainingPlan {
        rounds: cfg.rounds,
        clients_per_round: 3,
        batches_per_cycle: 4,
        batch_size: 16,
        learning_rate: 0.05,
        seed,
    };
    let mut fed = Federation::builder(plan)
        .model(move || zoo::lenet5_with(identities, seed + 1).expect("LeNet-5 builds"))
        .clients(3, data.clone())
        .build()
        .expect("federation builds");
    fed.run().expect("federation runs");
    // Partition probe indices by property.
    let mut prop_idx = Vec::new();
    let mut nonprop_idx = Vec::new();
    for i in 0..data.len() {
        match data.sample(i).property {
            Some(true) => prop_idx.push(i),
            _ => nonprop_idx.push(i),
        }
    }
    // Probe every cycle snapshot with property/non-property batches.
    let mut probe: Sequential = zoo::lenet5_with(identities, seed + 1).expect("LeNet-5 builds");
    let mut rows = Vec::new();
    let half = cfg.probe_batch / 2;
    for cycle in 0..cfg.rounds {
        let snap = fed
            .server()
            .history()
            .snapshot(cycle as usize)
            .expect("history covers every cycle")
            .clone();
        probe.set_weights(&snap).expect("weights fit");
        for rep in 0..cfg.probes_per_cycle {
            let offset = (cycle as usize * cfg.probes_per_cycle + rep) * cfg.probe_batch;
            // Property batch: the attacker's b_adv_prop — images carrying
            // the property.
            let with: Vec<usize> = (0..cfg.probe_batch)
                .map(|k| prop_idx[(offset + k) % prop_idx.len()])
                .collect();
            // Non-property batch (b_adv_nonprop).
            let without: Vec<usize> = (0..cfg.probe_batch)
                .map(|k| nonprop_idx[(offset + half + k) % nonprop_idx.len()])
                .collect();
            for (indices, has_property) in [(with, true), (without, false)] {
                let (x, y) = batch_of(data.as_ref(), &indices);
                let (_, g) = probe.forward_backward(&x, &y).expect("probe gradient");
                probe.zero_grads();
                rows.push(RawRow {
                    cycle,
                    snapshot: g,
                    has_property,
                });
            }
        }
    }
    (rows, probe.num_layers())
}

/// Splits raw rows by cycle into train/validation/test observation sets
/// under a per-cycle protection function.
pub fn observations<F>(
    rows: &[RawRow],
    rounds: u64,
    protect: F,
) -> (
    Vec<DpiaObservation>,
    Vec<DpiaObservation>,
    Vec<DpiaObservation>,
)
where
    F: Fn(u64) -> Vec<usize>,
{
    let _ = rounds;
    let mut train = Vec::new();
    let mut val = Vec::new();
    let mut test = Vec::new();
    for r in rows {
        let obs = DpiaObservation {
            snapshot: r.snapshot.clone(),
            has_property: r.has_property,
            protected: protect(r.cycle),
        };
        // Interleaved by cycle: 3 train, 1 validation, 1 test. The test
        // cycles are unseen by both the attack model and the V_MW search,
        // and the interleaving spans the whole model evolution (DPIA is a
        // long-term attack).
        match r.cycle % 5 {
            0..=2 => train.push(obs),
            3 => val.push(obs),
            _ => test.push(obs),
        }
    }
    (train, val, test)
}

/// Runs the whole table.
pub fn run(profile: Profile, seed: u64) -> Table5 {
    let cfg = Table5Config::for_profile(profile, seed);
    let (rows, n_layers) = build_rows(&cfg);
    let dpia_cfg = DpiaConfig {
        raw_per_layer: 48,
        seed,
        ..DpiaConfig::default()
    };
    // Static rows (paper: None, L4, L3+L4, L3+L4+L5, L2+L3+L4+L5).
    let static_cfgs: [(&str, Vec<usize>); 5] = [
        ("None", vec![]),
        ("L4", vec![3]),
        ("L3+L4", vec![2, 3]),
        ("L3+L4+L5", vec![2, 3, 4]),
        ("L2+L3+L4+L5", vec![1, 2, 3, 4]),
    ];
    let mut static_rows = Vec::new();
    for (label, protected) in static_cfgs {
        let p = protected.clone();
        let (train, _, test) = observations(&rows, cfg.rounds, move |_| p.clone());
        let out = run_dpia(&train, &test, &dpia_cfg).expect("static dpia runs");
        static_rows.push((label.to_owned(), out.auc));
    }
    // Dynamic rows: V_MW search per window size.
    let mut dynamic_rows = Vec::new();
    for size in [2usize, 3, 4] {
        let outcome: VmwSearchOutcome =
            search_v_mw(size, n_layers, cfg.grid_steps, seed, |window| {
                let w = window.clone();
                let (train, val, _) =
                    observations(&rows, cfg.rounds, move |cycle| w.layers_for_round(cycle));
                run_dpia(&train, &val, &dpia_cfg)
                    .map(|o| o.auc)
                    .map_err(|e| gradsec_core::GradSecError::BadConfig {
                        reason: e.to_string(),
                    })
            })
            .expect("v_mw search runs");
        let best =
            MovingWindow::new(size, n_layers, outcome.v_mw.clone(), seed).expect("valid window");
        let w = best.clone();
        let (train, _, test) =
            observations(&rows, cfg.rounds, move |cycle| w.layers_for_round(cycle));
        let test_out = run_dpia(&train, &test, &dpia_cfg).expect("dynamic dpia runs");
        dynamic_rows.push(DynamicRow {
            size,
            v_mw: outcome.v_mw,
            val_auc: outcome.attack_score,
            test_auc: test_out.auc,
            candidates: outcome.evaluated,
        });
    }
    Table5 {
        static_rows,
        dynamic_rows,
    }
}

/// Renders the table in the paper's two-block layout.
pub fn render(t: &Table5) -> String {
    let mut out = String::new();
    out.push_str("Static GradSec\n");
    let mut st = TextTable::new(vec!["protected", "AUC"]);
    for (label, auc) in &t.static_rows {
        st.row(vec![label.clone(), format!("{auc:.3}")]);
    }
    out.push_str(&st.render());
    out.push_str("\nDynamic GradSec\n");
    let mut dt = TextTable::new(vec![
        "window",
        "best V_MW",
        "val AUC",
        "test AUC",
        "candidates",
    ]);
    for r in &t.dynamic_rows {
        let v: Vec<String> = r.v_mw.iter().map(|p| format!("{p:.2}")).collect();
        dt.row(vec![
            format!("MW={}", r.size),
            format!("[{}]", v.join(", ")),
            format!("{:.3}", r.val_auc),
            format!("{:.3}", r.test_auc),
            r.candidates.to_string(),
        ]);
    }
    out.push_str(&dt.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Table5Config {
        Table5Config {
            rounds: 10,
            identities: 4,
            dataset_len: 160,
            probes_per_cycle: 2,
            probe_batch: 8,
            grid_steps: 2,
            seed: 5,
        }
    }

    #[test]
    fn rows_cover_every_cycle_and_both_classes() {
        let cfg = tiny_cfg();
        let (rows, n_layers) = build_rows(&cfg);
        assert_eq!(n_layers, 5);
        assert_eq!(rows.len(), (cfg.rounds as usize) * cfg.probes_per_cycle * 2);
        for cycle in 0..cfg.rounds {
            let in_cycle: Vec<_> = rows.iter().filter(|r| r.cycle == cycle).collect();
            assert!(in_cycle.iter().any(|r| r.has_property));
            assert!(in_cycle.iter().any(|r| !r.has_property));
        }
    }

    #[test]
    fn observation_split_is_by_cycle() {
        let cfg = tiny_cfg();
        let (rows, _) = build_rows(&cfg);
        let (train, val, test) = observations(&rows, cfg.rounds, |_| vec![]);
        assert!(!train.is_empty() && !val.is_empty() && !test.is_empty());
        assert_eq!(train.len() + val.len() + test.len(), rows.len());
        // 10 rounds: cycles 0-5 train, 6-7 val, 8-9 test.
        assert_eq!(train.len(), 6 * 4);
        assert_eq!(val.len(), 2 * 4);
        assert_eq!(test.len(), 2 * 4);
    }

    #[test]
    fn unprotected_dpia_beats_chance_on_tiny_setup() {
        let cfg = tiny_cfg();
        let (rows, _) = build_rows(&cfg);
        let (train, _, test) = observations(&rows, cfg.rounds, |_| vec![]);
        let out = run_dpia(&train, &test, &DpiaConfig::default()).unwrap();
        assert!(out.auc > 0.6, "unprotected dpia auc {}", out.auc);
    }
}
