//! Table 6 — CPU time and TEE memory usage of GradSec (LeNet-5,
//! CIFAR-100, batch size 32).
//!
//! Every row is produced by the deterministic analytical estimator (which
//! the live [`gradsec_core::SecureTrainer`] provably matches — see its
//! `real_cycle_matches_estimate` test), under the Raspberry Pi 3B+
//! calibration of `gradsec_tee::cost`.

use gradsec_core::trainer::estimate_cycle;
use gradsec_core::window::MovingWindow;
use gradsec_nn::{zoo, Sequential};
use gradsec_tee::cost::{CostModel, TimeBreakdown};

use crate::table::TextTable;

/// The paper's cycle convention: 10 batches of 32.
pub const BATCHES: usize = 10;
/// Batch size (Table 6 caption).
pub const BATCH_SIZE: usize = 32;

/// One Table 6 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label, e.g. `"L2 (against DRIA)"`.
    pub label: String,
    /// Protected layer indices (0-based).
    pub protected: Vec<usize>,
    /// Simulated times.
    pub times: TimeBreakdown,
    /// Percentage overhead vs the unprotected baseline.
    pub overhead_pct: f64,
    /// Peak TEE memory in MB.
    pub tee_mb: f64,
}

/// The whole table.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// The unprotected baseline row.
    pub baseline: Row,
    /// Static GradSec rows (single layers + the grouped `{L2, L5}`).
    pub static_rows: Vec<Row>,
    /// Dynamic rows per window size: `(size, position rows, weighted avg)`.
    pub dynamic: Vec<(usize, Vec<Row>, Row)>,
}

fn make_row(
    model: &Sequential,
    label: &str,
    protected: &[usize],
    cost: &CostModel,
    baseline: Option<&TimeBreakdown>,
) -> Row {
    let (times, peak) = estimate_cycle(model, protected, BATCHES, BATCH_SIZE, cost)
        .expect("valid Table 6 configuration");
    let overhead_pct = baseline.map(|b| times.overhead_vs(b)).unwrap_or(0.0);
    Row {
        label: label.to_owned(),
        protected: protected.to_vec(),
        times,
        overhead_pct,
        tee_mb: peak as f64 / (1024.0 * 1024.0),
    }
}

/// The paper's best `V_MW` per window size (Table 6): the distributions
/// its §8.2 search selected.
pub fn paper_v_mw(size: usize) -> Vec<f64> {
    match size {
        2 => vec![0.2, 0.1, 0.6, 0.1],
        3 => vec![0.1, 0.1, 0.8],
        4 => vec![0.1, 0.9],
        _ => panic!("paper only reports MW sizes 2-4"),
    }
}

/// Computes all rows.
pub fn run() -> Table6 {
    let model = zoo::lenet5(1).expect("LeNet-5 builds");
    let cost = CostModel::raspberry_pi3();
    let baseline = make_row(&model, "Without (Baseline)", &[], &cost, None);
    let base_t = baseline.times;
    // Static rows: L1..L5 singles, then the grouped DRIA+MIA config.
    let mut static_rows = Vec::new();
    let static_cfgs: [(&str, Vec<usize>); 6] = [
        ("L1", vec![0]),
        ("L2 (against DRIA)", vec![1]),
        ("L3", vec![2]),
        ("L4", vec![3]),
        ("L5 (against MIA)", vec![4]),
        ("L2+L5 (against DRIA+MIA)", vec![1, 4]),
    ];
    for (label, protected) in static_cfgs {
        static_rows.push(make_row(&model, label, &protected, &cost, Some(&base_t)));
    }
    // Dynamic rows per window size.
    let mut dynamic = Vec::new();
    for size in [2usize, 3, 4] {
        let v_mw = paper_v_mw(size);
        let window =
            MovingWindow::new(size, model.num_layers(), v_mw.clone(), 0).expect("valid window");
        let mut rows = Vec::new();
        let mut weighted: Vec<(TimeBreakdown, f64)> = Vec::new();
        let mut worst_mem = 0.0f64;
        for (pos, &weight) in v_mw.iter().enumerate().take(window.positions()) {
            let layers = window.layers_at(pos);
            let label = layers
                .iter()
                .map(|l| format!("L{}", l + 1))
                .collect::<Vec<_>>()
                .join("+");
            let row = make_row(&model, &label, &layers, &cost, Some(&base_t));
            weighted.push((row.times, weight));
            worst_mem = worst_mem.max(row.tee_mb);
            rows.push(row);
        }
        let avg_times = TimeBreakdown::weighted_average(&weighted);
        let avg = Row {
            label: format!("AVG (V_MW={v_mw:?})"),
            protected: Vec::new(),
            times: avg_times,
            overhead_pct: avg_times.overhead_vs(&base_t),
            // The paper reports the most expensive window position as the
            // dynamic row's memory.
            tee_mb: worst_mem,
        };
        dynamic.push((size, rows, avg));
    }
    Table6 {
        baseline,
        static_rows,
        dynamic,
    }
}

/// Renders the table in the paper's layout.
pub fn render(t: &Table6) -> String {
    let mut out = String::new();
    let mut tt = TextTable::new(vec![
        "Protected layers",
        "CPU time (user + kernel + alloc)",
        "Overhead",
        "TEE memory",
    ]);
    let fmt_row = |r: &Row| -> Vec<String> {
        vec![
            r.label.clone(),
            r.time_row(),
            if r.protected.is_empty() && r.overhead_pct == 0.0 {
                "-".to_owned()
            } else {
                format!("{:.0}%", r.overhead_pct)
            },
            format!("{:.3} MB", r.tee_mb),
        ]
    };
    tt.row(fmt_row(&t.baseline));
    for r in &t.static_rows {
        tt.row(fmt_row(r));
    }
    out.push_str("Static GradSec\n");
    out.push_str(&tt.render());
    for (size, rows, avg) in &t.dynamic {
        out.push_str(&format!("\nDynamic GradSec MW={size}\n"));
        let mut dt = TextTable::new(vec![
            "Protected layers",
            "CPU time (user + kernel + alloc)",
            "Overhead",
            "TEE memory",
        ]);
        for r in rows {
            dt.row(fmt_row(r));
        }
        dt.row(fmt_row(avg));
        out.push_str(&dt.render());
    }
    out
}

impl Row {
    /// The `u + k + a` formatting of the paper.
    pub fn time_row(&self) -> String {
        format!(
            "{:.3}s + {:.3}s + {:.3}s",
            self.times.user_s, self.times.kernel_s, self.times.alloc_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let t = run();
        assert!((t.baseline.times.user_s - 2.191).abs() < 0.02);
        assert_eq!(t.baseline.times.kernel_s, 0.0);
        assert_eq!(t.baseline.tee_mb, 0.0);
    }

    #[test]
    fn row_set_matches_paper_structure() {
        let t = run();
        assert_eq!(t.static_rows.len(), 6);
        let sizes: Vec<usize> = t.dynamic.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(sizes, vec![2, 3, 4]);
        // MW=2 has 4 positions, MW=3 has 3, MW=4 has 2 (Figure 4).
        assert_eq!(t.dynamic[0].1.len(), 4);
        assert_eq!(t.dynamic[1].1.len(), 3);
        assert_eq!(t.dynamic[2].1.len(), 2);
    }

    #[test]
    fn paper_shape_holds() {
        let t = run();
        // L5's overhead dwarfs the conv layers' (paper: 212% vs ~20%).
        let l5 = &t.static_rows[4];
        let l2 = &t.static_rows[1];
        assert!(l5.overhead_pct > 3.0 * l2.overhead_pct);
        // The grouped config costs more than either single config.
        let grouped = &t.static_rows[5];
        assert!(grouped.overhead_pct > l5.overhead_pct);
        // Dynamic MW=2 average is far below the grouped static row
        // (the 56% vs 235% contrast that motivates dynamic GradSec).
        let mw2_avg = &t.dynamic[0].2;
        assert!(mw2_avg.overhead_pct < grouped.overhead_pct / 2.0);
        // Memory: L1 is the most expensive single layer; L3/L4 the
        // cheapest (paper: 1.127 vs 0.286 MB).
        assert!(t.static_rows[0].tee_mb > t.static_rows[2].tee_mb * 3.0);
        assert!((t.static_rows[2].tee_mb - t.static_rows[3].tee_mb).abs() < 1e-9);
    }

    #[test]
    fn renders_nonempty() {
        let s = render(&run());
        assert!(s.contains("Static GradSec"));
        assert!(s.contains("Dynamic GradSec MW=2"));
        assert!(s.contains("L2+L5"));
    }
}
