//! Shared kernel-benchmark workloads.
//!
//! The `kernel_scaling` bench and the `repro_kernels` gate bin time the
//! same per-op, per-backend workloads and write the same
//! `target/kernel_scaling.json`; the model shapes and seeded operand
//! construction live here so the two entry points can never drift apart
//! and silently measure different workloads.

use gradsec_tensor::ops::conv::Conv2dGeometry;
use gradsec_tensor::{init, Tensor};

/// The paper's evaluation batch size (Table 6 uses 32).
pub const BATCH: usize = 32;

/// The four conv geometries of the paper's LeNet-5 (zoo Table 4 shapes).
pub fn lenet5_conv_geometries() -> Vec<Conv2dGeometry> {
    vec![
        Conv2dGeometry::new(3, 32, 32, 12, 5, 2, 2).expect("lenet L1"),
        Conv2dGeometry::new(12, 16, 16, 12, 5, 2, 2).expect("lenet L2"),
        Conv2dGeometry::new(12, 8, 8, 12, 5, 1, 2).expect("lenet L3"),
        Conv2dGeometry::new(12, 8, 8, 12, 5, 1, 2).expect("lenet L4"),
    ]
}

/// The five conv geometries of the paper's AlexNet (zoo Table 4 shapes).
pub fn alexnet_conv_geometries() -> Vec<Conv2dGeometry> {
    vec![
        Conv2dGeometry::new(3, 32, 32, 64, 3, 2, 1).expect("alexnet L1"),
        Conv2dGeometry::new(64, 8, 8, 192, 3, 1, 1).expect("alexnet L2"),
        Conv2dGeometry::new(192, 4, 4, 384, 3, 1, 1).expect("alexnet L3"),
        Conv2dGeometry::new(384, 4, 4, 256, 3, 1, 1).expect("alexnet L4"),
        Conv2dGeometry::new(256, 4, 4, 256, 3, 1, 1).expect("alexnet L5"),
    ]
}

/// Forward-pass FLOPs of one conv layer over a batch: the im2col GEMM
/// performs `F·(C·K·K)·OH·OW` multiply-adds per image (bias adds are
/// noise at these shapes and ignored, as is conventional).
pub fn conv_forward_flops(geo: &Conv2dGeometry, batch: usize) -> f64 {
    let k2 = geo.in_channels * geo.kernel * geo.kernel;
    2.0 * (geo.out_channels * k2 * geo.out_h * geo.out_w * batch) as f64
}

/// Backward-pass FLOPs of one conv layer over a batch: the `dW` GEMM
/// (`Δ·colᵀ`) and the `dcol` GEMM (`Wᵀ·Δ`) each match the forward
/// GEMM's multiply-add count; `db` sums are noise.
pub fn conv_backward_flops(geo: &Conv2dGeometry, batch: usize) -> f64 {
    2.0 * conv_forward_flops(geo, batch)
}

/// FLOPs of an `(m×k)·(k×n)` matrix product: `2·m·k·n`.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * (m * k * n) as f64
}

/// One conv layer's pre-built, seeded operands.
#[derive(Debug, Clone)]
pub struct ConvOperands {
    /// The layer geometry.
    pub geo: Conv2dGeometry,
    /// `(BATCH, C, H, W)` input batch.
    pub input: Tensor,
    /// `(F, C·K·K)` filter matrix.
    pub weights: Tensor,
    /// `(F)` bias vector.
    pub bias: Tensor,
    /// `(BATCH, F, OH, OW)` upstream error for the backward pass.
    pub delta: Tensor,
}

/// Builds seeded operands for every layer of a conv stack.
pub fn conv_stack(geos: &[Conv2dGeometry], seed: u64) -> Vec<ConvOperands> {
    geos.iter()
        .enumerate()
        .map(|(l, &geo)| {
            let s = seed + 10 * l as u64;
            ConvOperands {
                geo,
                input: init::uniform(&[BATCH, geo.in_channels, geo.in_h, geo.in_w], -1.0, 1.0, s),
                weights: init::uniform(
                    &[geo.out_channels, geo.in_channels * geo.kernel * geo.kernel],
                    -0.5,
                    0.5,
                    s + 1,
                ),
                bias: init::uniform(&[geo.out_channels], -0.5, 0.5, s + 2),
                delta: init::uniform(
                    &[BATCH, geo.out_channels, geo.out_h, geo.out_w],
                    -1.0,
                    1.0,
                    s + 3,
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_counts_are_consistent() {
        let geo = Conv2dGeometry::new(3, 32, 32, 64, 3, 2, 1).unwrap();
        // 2 · F·C·K·K·OH·OW per image, linear in the batch.
        assert_eq!(
            conv_forward_flops(&geo, 1),
            2.0 * (64 * 3 * 3 * 3 * 16 * 16) as f64
        );
        assert_eq!(
            conv_forward_flops(&geo, BATCH),
            BATCH as f64 * conv_forward_flops(&geo, 1)
        );
        assert_eq!(
            conv_backward_flops(&geo, 4),
            2.0 * conv_forward_flops(&geo, 4)
        );
        assert_eq!(matmul_flops(2, 3, 4), 48.0);
    }

    #[test]
    fn stacks_build_with_matching_shapes() {
        for geos in [lenet5_conv_geometries(), alexnet_conv_geometries()] {
            let stack = conv_stack(&geos, 7);
            assert_eq!(stack.len(), geos.len());
            for l in &stack {
                assert_eq!(l.input.dims()[0], BATCH);
                assert_eq!(l.weights.dims()[0], l.geo.out_channels);
                assert_eq!(
                    l.delta.dims(),
                    &[BATCH, l.geo.out_channels, l.geo.out_h, l.geo.out_w]
                );
            }
        }
    }
}
