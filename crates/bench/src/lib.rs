//! # gradsec-bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation (§8), plus shared infrastructure.
//!
//! Every experiment honours the `GRADSEC_FULL=1` environment variable:
//! the default *quick* profile shrinks datasets/iterations so the whole
//! suite completes in minutes; the *full* profile runs the paper-scale
//! configurations.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 1 | [`experiments::table1`] | `repro-table1` |
//! | Figure 5 | [`experiments::fig5`] | `repro-fig5` |
//! | Figure 6 | [`experiments::fig6`] | `repro-fig6` |
//! | Table 5 | [`experiments::table5`] | `repro-table5` |
//! | Table 6 | [`experiments::table6`] | `repro-table6` |
//! | Figure 7 | [`experiments::fig7`] | `repro-fig7` |
//! | Figure 8 | [`experiments::fig8`] | `repro-fig8` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod kernels;
pub mod table;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Minutes-scale defaults.
    Quick,
    /// Paper-scale configurations (`GRADSEC_FULL=1`).
    Full,
}

impl Profile {
    /// Reads the profile from the environment.
    pub fn from_env() -> Self {
        if std::env::var("GRADSEC_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Profile::Full
        } else {
            Profile::Quick
        }
    }

    /// `true` for the full profile.
    pub fn is_full(self) -> bool {
        matches!(self, Profile::Full)
    }
}

/// The master seed used by every experiment (override with
/// `GRADSEC_SEED`).
pub fn master_seed() -> u64 {
    std::env::var("GRADSEC_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The workspace `target/` directory, honouring `CARGO_TARGET_DIR`.
/// Cargo runs bins and benches with the *package* directory as cwd, so
/// every JSON summary they export must be anchored here, never on a
/// relative path.
pub fn workspace_target() -> std::path::PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_default_is_quick() {
        // The test environment does not set GRADSEC_FULL.
        if std::env::var("GRADSEC_FULL").is_err() {
            assert_eq!(Profile::from_env(), Profile::Quick);
            assert!(!Profile::from_env().is_full());
        }
    }

    #[test]
    fn seed_default() {
        if std::env::var("GRADSEC_SEED").is_err() {
            assert_eq!(master_seed(), 42);
        }
    }
}
