//! Plain-text table rendering for the repro binaries.

/// A simple aligned-column table printer.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ± percentage the way the paper annotates overheads/gains.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Formats megabytes.
pub fn mb(bytes: usize) -> String {
    format!("{:.3} MB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["config", "auc"]);
        t.row(vec!["none", "0.99"]);
        t.row(vec!["L2+L5 protected", "0.78"]);
        let s = t.render();
        assert!(s.contains("config"));
        assert!(s.lines().count() == 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(30.0), "+30.0%");
        assert_eq!(pct(-8.3), "-8.3%");
        assert_eq!(mb(1024 * 1024), "1.000 MB");
    }
}
