use std::fmt;

use gradsec_nn::NnError;
use gradsec_tee::TeeError;

/// Errors produced by GradSec's core.
#[derive(Debug, Clone, PartialEq)]
pub enum GradSecError {
    /// Underlying model failure.
    Nn(NnError),
    /// Underlying TEE failure (enclave OOM during layer provisioning is
    /// the important one: the protection config does not fit the device).
    Tee(TeeError),
    /// The policy is invalid for the target model.
    BadPolicy {
        /// Human-readable reason.
        reason: String,
    },
    /// A DarkneTZ policy was given non-contiguous layers — the restriction
    /// the paper's §3.4 identifies as DarkneTZ's key limitation.
    NonContiguousSlice {
        /// The offending layer set.
        layers: Vec<usize>,
    },
    /// Invalid configuration value.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GradSecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GradSecError::Nn(e) => write!(f, "model error: {e}"),
            GradSecError::Tee(e) => write!(f, "tee error: {e}"),
            GradSecError::BadPolicy { reason } => write!(f, "bad policy: {reason}"),
            GradSecError::NonContiguousSlice { layers } => write!(
                f,
                "darknetz requires successive layers, got {layers:?} (use GradSec static mode instead)"
            ),
            GradSecError::BadConfig { reason } => write!(f, "bad config: {reason}"),
        }
    }
}

impl std::error::Error for GradSecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GradSecError::Nn(e) => Some(e),
            GradSecError::Tee(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for GradSecError {
    fn from(e: NnError) -> Self {
        GradSecError::Nn(e)
    }
}

impl From<TeeError> for GradSecError {
    fn from(e: TeeError) -> Self {
        GradSecError::Tee(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: GradSecError = NnError::EmptyModel.into();
        assert!(e.to_string().contains("model error"));
        let e: GradSecError = TeeError::BadHandle { handle: 1 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = GradSecError::NonContiguousSlice { layers: vec![1, 4] };
        assert!(e.to_string().contains("successive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GradSecError>();
    }
}
