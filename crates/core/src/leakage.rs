//! The leakage model: what a normal-world attacker observes under a
//! protection policy.
//!
//! §6 of the paper identifies two leakage flaws for a layer `l`'s
//! gradients:
//!
//! * **Flaw 1** — weight diffing: `dW_l = (W_l^t − W_l^{t+1})/λ` needs
//!   only read access to the layer's *weights* across an update.
//! * **Flaw 2** — backprop flow: `dW_l = δ_l · A_{l−1}` (or `⊗`) needs the
//!   backward intermediates.
//!
//! GradSec closes **both** for a protected layer by sheltering
//! `W_l, Z_l, A_{l−1}, δ_l` and the operations touching them (§7,
//! Figure 3). Hence: a layer's gradient leaks **iff the layer is not
//! protected**, and this module reduces every policy question to that
//! predicate, applied per FL cycle.

use gradsec_nn::gradient::{GradientSnapshot, LayerGradient};
use gradsec_tensor::Tensor;

use crate::policy::ProtectionPolicy;

/// Through which channel an unprotected layer's gradient is recoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeakChannel {
    /// Weights readable across the SGD step (Flaw 1, eq. 2).
    WeightDiff,
    /// Backward-pass intermediates readable (Flaw 2, eqs. 3–4).
    BackpropFlow,
}

/// The per-cycle leakage view of a model under a policy.
#[derive(Debug, Clone)]
pub struct LeakageModel {
    policy: ProtectionPolicy,
    n_layers: usize,
}

impl LeakageModel {
    /// Builds the model for `n_layers` under `policy`.
    pub fn new(policy: ProtectionPolicy, n_layers: usize) -> Self {
        LeakageModel { policy, n_layers }
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &ProtectionPolicy {
        &self.policy
    }

    /// Layers protected during `round`.
    pub fn protected(&self, round: u64) -> Vec<usize> {
        self.policy.protected_for_round(round, self.n_layers)
    }

    /// Whether layer `layer`'s gradient leaks during `round`, and through
    /// which channels. Both flaws are open for an unprotected layer: the
    /// attacker can diff the weights *and* watch the backward pass.
    pub fn leak_channels(&self, layer: usize, round: u64) -> Vec<LeakChannel> {
        if self.protected(round).contains(&layer) {
            Vec::new()
        } else {
            vec![LeakChannel::WeightDiff, LeakChannel::BackpropFlow]
        }
    }

    /// `true` when the layer's gradients are confidential this round.
    pub fn is_sealed(&self, layer: usize, round: u64) -> bool {
        self.leak_channels(layer, round).is_empty()
    }

    /// The attacker's view of a gradient snapshot: protected layers are
    /// zeroed out (their columns are *deleted* in the `D_grad` semantics;
    /// the tensor-level view keeps shape for convenience and marks
    /// deletion via the returned mask).
    ///
    /// Returns `(masked_snapshot, deleted_layers)`.
    pub fn attacker_view(
        &self,
        snapshot: &GradientSnapshot,
        round: u64,
    ) -> (GradientSnapshot, Vec<usize>) {
        let protected = self.protected(round);
        let layers = snapshot
            .iter()
            .map(|g| {
                if protected.contains(&g.layer) {
                    LayerGradient {
                        layer: g.layer,
                        dw: Tensor::zeros(g.dw.dims()),
                        db: Tensor::zeros(g.db.dims()),
                    }
                } else {
                    g.clone()
                }
            })
            .collect();
        (GradientSnapshot::new(layers), protected)
    }

    /// Fraction of the model's gradient scalars that leak this round.
    pub fn leaked_fraction(&self, snapshot: &GradientSnapshot, round: u64) -> f32 {
        let protected = self.protected(round);
        let total: usize = snapshot.iter().map(|g| g.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let leaked: usize = snapshot
            .iter()
            .filter(|g| !protected.contains(&g.layer))
            .map(|g| g.len())
            .sum();
        leaked as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::MovingWindow;

    fn snapshot(n: usize) -> GradientSnapshot {
        GradientSnapshot::new(
            (0..n)
                .map(|l| LayerGradient {
                    layer: l,
                    dw: Tensor::ones(&[4]),
                    db: Tensor::ones(&[1]),
                })
                .collect(),
        )
    }

    #[test]
    fn unprotected_layer_leaks_both_flaws() {
        let m = LeakageModel::new(ProtectionPolicy::None, 5);
        let ch = m.leak_channels(2, 0);
        assert!(ch.contains(&LeakChannel::WeightDiff));
        assert!(ch.contains(&LeakChannel::BackpropFlow));
        assert!(!m.is_sealed(2, 0));
    }

    #[test]
    fn protected_layer_is_sealed() {
        let p = ProtectionPolicy::static_layers(&[1, 4]).unwrap();
        let m = LeakageModel::new(p, 5);
        assert!(m.is_sealed(1, 0));
        assert!(m.is_sealed(4, 7));
        assert!(!m.is_sealed(0, 0));
        assert!(!m.is_sealed(2, 0));
    }

    #[test]
    fn attacker_view_zeroes_protected() {
        let p = ProtectionPolicy::static_layers(&[0]).unwrap();
        let m = LeakageModel::new(p, 3);
        let (view, deleted) = m.attacker_view(&snapshot(3), 0);
        assert_eq!(deleted, vec![0]);
        assert!(view.layer(0).unwrap().dw.data().iter().all(|&x| x == 0.0));
        assert!(view.layer(1).unwrap().dw.data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn leaked_fraction_tracks_protection() {
        let snap = snapshot(5);
        let none = LeakageModel::new(ProtectionPolicy::None, 5);
        assert_eq!(none.leaked_fraction(&snap, 0), 1.0);
        let all = LeakageModel::new(
            ProtectionPolicy::static_layers(&[0, 1, 2, 3, 4]).unwrap(),
            5,
        );
        assert_eq!(all.leaked_fraction(&snap, 0), 0.0);
        let two = LeakageModel::new(ProtectionPolicy::static_layers(&[1, 4]).unwrap(), 5);
        assert!((two.leaked_fraction(&snap, 0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn dynamic_leakage_moves_with_the_window() {
        let w = MovingWindow::uniform(2, 5, 11).unwrap();
        let m = LeakageModel::new(ProtectionPolicy::dynamic(w), 5);
        // Over enough rounds every layer is sealed at least once — the
        // "horizontal protection" goal of §1.
        for layer in 0..5 {
            assert!(
                (0..100).any(|r| m.is_sealed(layer, r)),
                "layer {layer} never protected in 100 rounds"
            );
        }
    }
}
