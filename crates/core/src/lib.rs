//! # gradsec-core
//!
//! GradSec itself — the paper's contribution (Middleware '22): selective,
//! enclave-backed protection of DNN layers during federated training.
//!
//! * [`policy`] — protection policies: [`ProtectionPolicy::Static`] may
//!   shelter **non-contiguous** layer sets (GradSec's key capability);
//!   [`policy::DarknetzPolicy`] reproduces the DarkneTZ baseline, which
//!   *rejects* non-contiguous sets; [`ProtectionPolicy::Dynamic`] drives
//!   the moving window.
//! * [`window`] — the moving window `MW` of §7.2: `size_MW` successive
//!   layers whose position is drawn per FL cycle from the probability
//!   vector `V_MW`.
//! * [`leakage`] — which gradients a normal-world attacker obtains under a
//!   policy, closing both flaws of §6 (weight-diff and backprop-flow).
//! * [`memory_model`] — per-layer TEE memory (`W, dW, A_{l−1}, Z_l, δ_l`)
//!   reproducing Table 6's memory column, and TCB comparisons.
//! * [`trainer`] — the secure trainer: executes protected layers in the
//!   simulated enclave, charging the calibrated cost model
//!   (user/kernel/allocation time) and the bounded secure memory pool.
//! * [`search`] — the `V_MW` grid search of §8.2 (train attack instances,
//!   keep the distribution the attack handles worst).
//!
//! # Example
//!
//! ```
//! use gradsec_core::policy::ProtectionPolicy;
//!
//! // The paper's DRIA+MIA configuration: shelter L2 and L5 (1-based),
//! // i.e. layer indices 1 and 4 — non-contiguous, which DarkneTZ cannot do.
//! let policy = ProtectionPolicy::static_layers(&[1, 4]).unwrap();
//! assert_eq!(policy.protected_for_round(0, 5), vec![1, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod leakage;
pub mod memory_model;
pub mod policy;
pub mod report;
pub mod search;
pub mod trainer;
pub mod window;

pub use error::GradSecError;
pub use policy::ProtectionPolicy;
pub use trainer::SecureTrainer;

/// Crate-wide result alias using [`GradSecError`].
pub type Result<T> = std::result::Result<T, GradSecError>;
