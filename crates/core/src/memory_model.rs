//! TEE memory and TCB estimation (Table 6's memory column).
//!
//! Protecting layer `l` at batch size `m` moves into the enclave:
//!
//! * the weights `W_l` and their gradients `dW_l` (2 × `params` scalars),
//! * the input `A_{l−1}` (`m × input_elems`),
//! * the pre-activation `Z_l` and the error `δ_l` (`m × preact_elems`
//!   each),
//!
//! all in `f32`. This formula lands within ~10 % of every row of the
//! paper's Table 6 (and reproduces the L5 row to three decimals), and its
//! *relative* statements exactly: GradSec `{L2, L5}` uses ≈30 % less TEE
//! memory than DarkneTZ `L2..L5`, and dynamic GradSec's worst window
//! ≈8 % less.

use gradsec_nn::layer::Layer;
use gradsec_nn::Sequential;

/// Bytes of secure memory needed to shelter one layer at a batch size.
pub fn layer_tee_bytes(layer: &dyn Layer, batch: usize) -> usize {
    let params = layer.param_count();
    let activations = batch * (layer.input_elems() + 2 * layer.preact_elems());
    4 * (2 * params + activations)
}

/// Bytes needed for a set of layers (the paper sums per-layer costs; a
/// shared boundary between adjacent protected layers is charged to each,
/// matching Table 6's `L1+L2 = L1 + L2` arithmetic).
pub fn layers_tee_bytes(model: &Sequential, layers: &[usize], batch: usize) -> usize {
    layers
        .iter()
        .filter_map(|&l| model.layer(l).ok())
        .map(|l| layer_tee_bytes(l, batch))
        .sum()
}

/// Megabytes variant of [`layers_tee_bytes`] (the paper reports MB).
pub fn layers_tee_mb(model: &Sequential, layers: &[usize], batch: usize) -> f64 {
    layers_tee_bytes(model, layers, batch) as f64 / (1024.0 * 1024.0)
}

/// Trusted-computing-base comparison between two protection configs:
/// returns the percentage *reduction* of `ours` relative to `theirs`
/// (positive = ours is smaller — the paper's "gain in TCB size").
pub fn tcb_gain_percent(model: &Sequential, ours: &[usize], theirs: &[usize], batch: usize) -> f64 {
    let a = layers_tee_bytes(model, ours, batch) as f64;
    let b = layers_tee_bytes(model, theirs, batch) as f64;
    if b == 0.0 {
        return 0.0;
    }
    (1.0 - a / b) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_nn::zoo;

    const BATCH: usize = 32;
    const MB: f64 = 1024.0 * 1024.0;

    /// Paper Table 6, single-layer TEE memory (MB): L1..L5.
    const PAPER: [f64; 5] = [1.127, 0.565, 0.286, 0.286, 0.704];

    #[test]
    fn lenet5_memory_matches_table6_within_tolerance() {
        let m = zoo::lenet5(1).unwrap();
        for (i, &paper) in PAPER.iter().enumerate() {
            let ours = layer_tee_bytes(m.layer(i).unwrap(), BATCH) as f64 / MB;
            let rel = (ours - paper).abs() / paper;
            assert!(
                rel < 0.15,
                "layer L{}: ours {ours:.3} MB vs paper {paper} MB ({:.0}% off)",
                i + 1,
                rel * 100.0
            );
        }
    }

    #[test]
    fn l5_row_is_reproduced_closely() {
        // 2·76,900 + 32·(768 + 2·100) == 184,776 scalars -> 0.7048 MB.
        let m = zoo::lenet5(1).unwrap();
        let ours = layer_tee_bytes(m.layer(4).unwrap(), BATCH) as f64 / MB;
        assert!((ours - 0.704).abs() < 0.01, "L5 {ours:.4} MB");
    }

    #[test]
    fn grouped_protection_gain_matches_table1() {
        // GradSec {L2, L5} vs DarkneTZ L2..L5: paper reports −30% TCB.
        let m = zoo::lenet5(1).unwrap();
        let gain = tcb_gain_percent(&m, &[1, 4], &[1, 2, 3, 4], BATCH);
        assert!(
            (gain - 30.0).abs() < 5.0,
            "grouped TCB gain {gain:.1}% (paper: 30%)"
        );
    }

    #[test]
    fn dynamic_worst_window_gain_matches_table1() {
        // Worst MW=2 window (L1+L2) vs DarkneTZ L2..L5: paper reports −8%.
        let m = zoo::lenet5(1).unwrap();
        let gain = tcb_gain_percent(&m, &[0, 1], &[1, 2, 3, 4], BATCH);
        assert!(
            (gain - 8.0).abs() < 5.0,
            "dynamic TCB gain {gain:.1}% (paper: 8%)"
        );
    }

    #[test]
    fn window_sum_arithmetic_matches_paper() {
        // Table 6 computes L1+L2 as the sum of the single-layer rows.
        let m = zoo::lenet5(1).unwrap();
        let sum = layer_tee_bytes(m.layer(0).unwrap(), BATCH)
            + layer_tee_bytes(m.layer(1).unwrap(), BATCH);
        assert_eq!(layers_tee_bytes(&m, &[0, 1], BATCH), sum);
    }

    #[test]
    fn unknown_layers_are_ignored() {
        let m = zoo::lenet5(1).unwrap();
        assert_eq!(layers_tee_bytes(&m, &[99], BATCH), 0);
        assert_eq!(tcb_gain_percent(&m, &[0], &[], BATCH), 0.0);
    }

    #[test]
    fn whole_lenet_fits_a_5mb_enclave_but_not_3mb() {
        // Context for the paper's "protecting all layers is infeasible"
        // argument: the full model at batch 32 is ~3.1 MB, uncomfortably
        // close to the 3–5 MB carveout once the TA itself is resident.
        let m = zoo::lenet5(1).unwrap();
        let all: Vec<usize> = (0..5).collect();
        let mb = layers_tee_mb(&m, &all, BATCH);
        assert!(mb > 2.5 && mb < 5.0, "full model {mb:.2} MB");
    }
}
