//! Protection policies (paper §7.1–7.2) and the DarkneTZ baseline.

use std::collections::BTreeSet;

use gradsec_fl::scheduler::ProtectionScheduler;
use serde::{Deserialize, Serialize};

use crate::window::MovingWindow;
use crate::{GradSecError, Result};

/// How a client shelters layers across FL cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtectionPolicy {
    /// No protection — the unprotected baseline of Table 6.
    None,
    /// Static GradSec (§7.1): a fixed layer set, **possibly
    /// non-contiguous** — the capability DarkneTZ lacks.
    Static {
        /// The sheltered layer indices (0-based, sorted, deduplicated).
        layers: Vec<usize>,
    },
    /// Dynamic GradSec (§7.2): the moving window.
    Dynamic(MovingWindow),
}

impl ProtectionPolicy {
    /// Builds a static policy from any layer set.
    ///
    /// # Errors
    ///
    /// Returns [`GradSecError::BadPolicy`] for an empty set (use
    /// [`ProtectionPolicy::None`] for that).
    pub fn static_layers(layers: &[usize]) -> Result<Self> {
        if layers.is_empty() {
            return Err(GradSecError::BadPolicy {
                reason: "static policy needs at least one layer (use None otherwise)".to_owned(),
            });
        }
        let set: BTreeSet<usize> = layers.iter().copied().collect();
        Ok(ProtectionPolicy::Static {
            layers: set.into_iter().collect(),
        })
    }

    /// Builds the dynamic policy.
    pub fn dynamic(window: MovingWindow) -> Self {
        ProtectionPolicy::Dynamic(window)
    }

    /// Validates the policy against a concrete model depth.
    ///
    /// # Errors
    ///
    /// Returns [`GradSecError::BadPolicy`] when any referenced layer is out
    /// of range.
    pub fn validate(&self, n_layers: usize) -> Result<()> {
        match self {
            ProtectionPolicy::None => Ok(()),
            ProtectionPolicy::Static { layers } => {
                if let Some(&bad) = layers.iter().find(|&&l| l >= n_layers) {
                    return Err(GradSecError::BadPolicy {
                        reason: format!("layer {bad} out of range for {n_layers}-layer model"),
                    });
                }
                Ok(())
            }
            ProtectionPolicy::Dynamic(w) => {
                if w.positions() + w.size() - 1 != n_layers {
                    return Err(GradSecError::BadPolicy {
                        reason: format!(
                            "window configured for {} layers, model has {n_layers}",
                            w.positions() + w.size() - 1
                        ),
                    });
                }
                Ok(())
            }
        }
    }

    /// The layers sheltered during FL cycle `round` on a model with
    /// `n_layers` layers.
    pub fn protected_for_round(&self, round: u64, n_layers: usize) -> Vec<usize> {
        match self {
            ProtectionPolicy::None => Vec::new(),
            ProtectionPolicy::Static { layers } => {
                layers.iter().copied().filter(|&l| l < n_layers).collect()
            }
            ProtectionPolicy::Dynamic(w) => w.layers_for_round(round),
        }
    }

    /// Splits a static layer set into maximal contiguous slices — the
    /// paper's "one or two separate slices" view of static GradSec.
    pub fn slices(layers: &[usize]) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = Vec::new();
        let mut sorted: Vec<usize> = layers.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for l in sorted {
            match out.last_mut() {
                Some((_, end)) if *end + 1 == l => *end = l,
                _ => out.push((l, l)),
            }
        }
        out
    }
}

/// Policies drive the federation directly: hand a [`ProtectionPolicy`] to
/// `FederationBuilder::scheduler` and every round's sheltered set follows
/// the policy's (deterministic, per-round) draw.
impl ProtectionScheduler for ProtectionPolicy {
    fn layers_for_round(&self, round: u64) -> Vec<usize> {
        match self {
            ProtectionPolicy::None => Vec::new(),
            ProtectionPolicy::Static { layers } => layers.clone(),
            ProtectionPolicy::Dynamic(w) => w.layers_for_round(round),
        }
    }
}

/// The DarkneTZ baseline (paper §3.4): protection restricted to **one
/// contiguous slice** of layers. Construction fails for non-successive
/// sets — exactly the limitation that forces DarkneTZ to shelter
/// `L2..L5` (four layers) where GradSec shelters only `{L2, L5}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DarknetzPolicy {
    first: usize,
    last: usize,
}

impl DarknetzPolicy {
    /// Builds a DarkneTZ policy from a layer set.
    ///
    /// # Errors
    ///
    /// Returns [`GradSecError::NonContiguousSlice`] when the set has gaps
    /// and [`GradSecError::BadPolicy`] when it is empty.
    pub fn new(layers: &[usize]) -> Result<Self> {
        if layers.is_empty() {
            return Err(GradSecError::BadPolicy {
                reason: "darknetz policy needs at least one layer".to_owned(),
            });
        }
        let slices = ProtectionPolicy::slices(layers);
        if slices.len() != 1 {
            return Err(GradSecError::NonContiguousSlice {
                layers: layers.to_vec(),
            });
        }
        Ok(DarknetzPolicy {
            first: slices[0].0,
            last: slices[0].1,
        })
    }

    /// The smallest DarkneTZ policy that covers a (possibly
    /// non-contiguous) GradSec layer set — i.e. what DarkneTZ is *forced*
    /// to protect to match GradSec's coverage: the full hull including all
    /// intermediate layers (the paper's DRIA+MIA comparison, Table 1).
    ///
    /// # Errors
    ///
    /// Returns [`GradSecError::BadPolicy`] for an empty set.
    pub fn covering(layers: &[usize]) -> Result<Self> {
        let min = layers.iter().min().ok_or_else(|| GradSecError::BadPolicy {
            reason: "cannot cover an empty layer set".to_owned(),
        })?;
        let max = layers.iter().max().expect("non-empty");
        Ok(DarknetzPolicy {
            first: *min,
            last: *max,
        })
    }

    /// The protected layers (always one contiguous run).
    pub fn layers(&self) -> Vec<usize> {
        (self.first..=self.last).collect()
    }

    /// Converts into the equivalent GradSec static policy (for running
    /// the baseline through the same trainer).
    pub fn to_policy(&self) -> ProtectionPolicy {
        ProtectionPolicy::Static {
            layers: self.layers(),
        }
    }
}

/// The baseline schedules its contiguous hull every round, so DarkneTZ
/// runs through the identical federation path as GradSec in comparisons.
impl ProtectionScheduler for DarknetzPolicy {
    fn layers_for_round(&self, _round: u64) -> Vec<usize> {
        self.layers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_sorts_and_dedups() {
        let p = ProtectionPolicy::static_layers(&[4, 1, 4]).unwrap();
        assert_eq!(p.protected_for_round(9, 5), vec![1, 4]);
        assert!(ProtectionPolicy::static_layers(&[]).is_err());
    }

    #[test]
    fn validation_against_model_depth() {
        let p = ProtectionPolicy::static_layers(&[1, 4]).unwrap();
        assert!(p.validate(5).is_ok());
        assert!(p.validate(4).is_err());
        assert!(ProtectionPolicy::None.validate(0).is_ok());
        let w = MovingWindow::uniform(2, 5, 0).unwrap();
        let d = ProtectionPolicy::dynamic(w);
        assert!(d.validate(5).is_ok());
        assert!(d.validate(6).is_err());
    }

    #[test]
    fn dynamic_policy_moves() {
        let w = MovingWindow::uniform(2, 5, 3).unwrap();
        let p = ProtectionPolicy::dynamic(w);
        let sets: Vec<Vec<usize>> = (0..30).map(|r| p.protected_for_round(r, 5)).collect();
        assert!(sets.iter().all(|s| s.len() == 2));
        assert!(
            sets.windows(2).any(|w| w[0] != w[1]),
            "window should move across rounds"
        );
    }

    #[test]
    fn slices_decomposition() {
        assert_eq!(ProtectionPolicy::slices(&[1, 4]), vec![(1, 1), (4, 4)]);
        assert_eq!(ProtectionPolicy::slices(&[1, 2, 3]), vec![(1, 3)]);
        assert_eq!(
            ProtectionPolicy::slices(&[0, 1, 3, 4]),
            vec![(0, 1), (3, 4)]
        );
        assert_eq!(ProtectionPolicy::slices(&[]), vec![]);
    }

    #[test]
    fn darknetz_rejects_non_contiguous() {
        // The paper's central comparison: {L2, L5} is fine for GradSec,
        // impossible for DarkneTZ.
        assert!(ProtectionPolicy::static_layers(&[1, 4]).is_ok());
        let err = DarknetzPolicy::new(&[1, 4]).unwrap_err();
        assert!(matches!(err, GradSecError::NonContiguousSlice { .. }));
        assert!(DarknetzPolicy::new(&[1, 2, 3]).is_ok());
        assert!(DarknetzPolicy::new(&[]).is_err());
    }

    #[test]
    fn darknetz_covering_hull() {
        // To match GradSec's {L2, L5}, DarkneTZ must take L2..L5 — four
        // layers instead of two (Table 1, line 2 vs 3).
        let hull = DarknetzPolicy::covering(&[1, 4]).unwrap();
        assert_eq!(hull.layers(), vec![1, 2, 3, 4]);
        let p = hull.to_policy();
        assert_eq!(p.protected_for_round(0, 5), vec![1, 2, 3, 4]);
    }

    #[test]
    fn none_protects_nothing() {
        assert!(ProtectionPolicy::None.protected_for_round(5, 5).is_empty());
    }

    #[test]
    fn policies_schedule_the_federation() {
        // ProtectionScheduler draws agree with protected_for_round.
        let none = ProtectionPolicy::None;
        assert!(ProtectionScheduler::layers_for_round(&none, 3).is_empty());
        let stat = ProtectionPolicy::static_layers(&[4, 1]).unwrap();
        assert_eq!(ProtectionScheduler::layers_for_round(&stat, 9), vec![1, 4]);
        let dynamic = ProtectionPolicy::dynamic(MovingWindow::uniform(2, 5, 3).unwrap());
        for round in 0..20 {
            assert_eq!(
                ProtectionScheduler::layers_for_round(&dynamic, round),
                dynamic.protected_for_round(round, 5)
            );
        }
        let hull = DarknetzPolicy::covering(&[1, 4]).unwrap();
        assert_eq!(
            ProtectionScheduler::layers_for_round(&hull, 0),
            vec![1, 2, 3, 4]
        );
    }
}
