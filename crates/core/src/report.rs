//! Cycle reports: the user/kernel/allocation decomposition plus enclave
//! statistics for one FL training cycle (the row format of Table 6).

use serde::{Deserialize, Serialize};

use gradsec_tee::cost::TimeBreakdown;

/// Everything measured about one protected training cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Layers sheltered during the cycle.
    pub protected: Vec<usize>,
    /// Simulated time decomposition.
    pub times: TimeBreakdown,
    /// Peak secure-memory bytes (Table 6's "TEE Memory Usage (at exec)").
    pub tee_peak_bytes: usize,
    /// Secure-monitor crossings taken.
    pub crossings: u64,
    /// Mean training loss over the cycle.
    pub mean_loss: f32,
    /// Batches processed.
    pub batches: usize,
    /// Samples processed.
    pub samples: usize,
}

impl CycleReport {
    /// Peak TEE memory in MB.
    pub fn tee_peak_mb(&self) -> f64 {
        self.tee_peak_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Percentage overhead of this cycle against a baseline cycle.
    pub fn overhead_percent(&self, baseline: &CycleReport) -> f64 {
        self.times.overhead_vs(&baseline.times)
    }

    /// Formats the row like the paper's Table 6: `user + kernel + alloc`.
    pub fn time_row(&self) -> String {
        format!(
            "{:.3}s + {:.3}s + {:.3}s",
            self.times.user_s, self.times.kernel_s, self.times.alloc_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(user: f64, kernel: f64, alloc: f64) -> CycleReport {
        CycleReport {
            protected: vec![],
            times: TimeBreakdown {
                user_s: user,
                kernel_s: kernel,
                alloc_s: alloc,
            },
            tee_peak_bytes: 1024 * 1024,
            crossings: 0,
            mean_loss: 0.0,
            batches: 10,
            samples: 320,
        }
    }

    #[test]
    fn overhead_and_formatting() {
        let baseline = report(2.0, 0.0, 0.0);
        let l5ish = report(2.0, 0.2, 4.0);
        assert!((l5ish.overhead_percent(&baseline) - 210.0).abs() < 1.0);
        assert_eq!(l5ish.time_row(), "2.000s + 0.200s + 4.000s");
        assert!((l5ish.tee_peak_mb() - 1.0).abs() < 1e-9);
    }
}
