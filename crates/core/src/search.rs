//! `V_MW` search (paper §8.2).
//!
//! > "To find the best distribution of V_MW for each value of size_MW, we
//! > train different instances of the attack model on a gradient train set
//! > with differently located missing data [...] We evaluate each attack
//! > model instance on a gradient validation set and we retain the V_MW
//! > distribution of the worst instance."
//!
//! [`search_v_mw`] enumerates a simplex grid of candidate distributions,
//! asks a caller-supplied evaluator (typically: simulate the dynamic
//! schedule, build `D_grad`, train the DPIA forest, return validation
//! AUC) and keeps the distribution under which the attack performs
//! *worst*.

use crate::window::MovingWindow;
use crate::{GradSecError, Result};

/// Enumerates every probability vector of length `positions` whose
/// entries are multiples of `1/steps` and sum to 1.
///
/// The count is `C(steps + positions − 1, positions − 1)`; with the
/// paper's 4 window positions and a 0.1 grid that is 286 candidates.
pub fn simplex_grid(positions: usize, steps: usize) -> Vec<Vec<f64>> {
    fn rec(remaining: usize, slots: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if slots == 1 {
            prefix.push(remaining);
            out.push(prefix.clone());
            prefix.pop();
            return;
        }
        for take in 0..=remaining {
            prefix.push(take);
            rec(remaining - take, slots - 1, prefix, out);
            prefix.pop();
        }
    }
    if positions == 0 || steps == 0 {
        return Vec::new();
    }
    let mut raw = Vec::new();
    rec(steps, positions, &mut Vec::new(), &mut raw);
    raw.into_iter()
        .map(|counts| {
            counts
                .into_iter()
                .map(|c| c as f64 / steps as f64)
                .collect()
        })
        .collect()
}

/// Outcome of a `V_MW` search.
#[derive(Debug, Clone)]
pub struct VmwSearchOutcome {
    /// The best (most protective) distribution found.
    pub v_mw: Vec<f64>,
    /// The attack's validation score under it (lower = better defence).
    pub attack_score: f32,
    /// Number of candidates evaluated.
    pub evaluated: usize,
}

/// Searches the simplex grid for the `V_MW` minimising the attack score.
///
/// `evaluate` receives each candidate window (size `size`, seeded with
/// `seed`) and returns the attack's validation metric (e.g. DPIA AUC).
///
/// # Errors
///
/// Returns [`GradSecError::BadConfig`] for an empty grid and propagates
/// evaluator failures.
pub fn search_v_mw<F>(
    size: usize,
    n_layers: usize,
    steps: usize,
    seed: u64,
    mut evaluate: F,
) -> Result<VmwSearchOutcome>
where
    F: FnMut(&MovingWindow) -> Result<f32>,
{
    if size == 0 || size > n_layers {
        return Err(GradSecError::BadConfig {
            reason: format!("window size {size} invalid for {n_layers} layers"),
        });
    }
    let positions = n_layers - size + 1;
    let grid = simplex_grid(positions, steps);
    if grid.is_empty() {
        return Err(GradSecError::BadConfig {
            reason: "empty V_MW candidate grid".to_owned(),
        });
    }
    let mut best: Option<(Vec<f64>, f32)> = None;
    let mut evaluated = 0;
    for v in grid {
        let window = MovingWindow::new(size, n_layers, v.clone(), seed)?;
        let score = evaluate(&window)?;
        evaluated += 1;
        if best.as_ref().map(|(_, s)| score < *s).unwrap_or(true) {
            best = Some((v, score));
        }
    }
    let (v_mw, attack_score) = best.expect("non-empty grid evaluated");
    Ok(VmwSearchOutcome {
        v_mw,
        attack_score,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts_and_normalisation() {
        // C(10 + 3, 3) = 286 for 4 positions at 0.1 resolution.
        let g = simplex_grid(4, 10);
        assert_eq!(g.len(), 286);
        for v in &g {
            assert_eq!(v.len(), 4);
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&p| p >= 0.0));
        }
        assert_eq!(simplex_grid(1, 5), vec![vec![1.0]]);
        assert!(simplex_grid(0, 5).is_empty());
        assert!(simplex_grid(3, 0).is_empty());
    }

    #[test]
    fn grid_contains_the_papers_distribution() {
        let g = simplex_grid(4, 10);
        let paper = vec![0.2, 0.1, 0.6, 0.1];
        assert!(g
            .iter()
            .any(|v| v.iter().zip(&paper).all(|(a, b)| (a - b).abs() < 1e-9)));
    }

    #[test]
    fn search_finds_a_known_optimum() {
        // Score = distance to the paper's [0.2, 0.1, 0.6, 0.1]; the search
        // must find exactly it on the 0.1 grid.
        let target = [0.2f64, 0.1, 0.6, 0.1];
        let out = search_v_mw(2, 5, 10, 7, |w| {
            let d: f64 = w
                .v_mw()
                .iter()
                .zip(&target)
                .map(|(a, b)| (a - b).abs())
                .sum();
            Ok(d as f32)
        })
        .unwrap();
        assert_eq!(out.evaluated, 286);
        assert!(out.attack_score < 1e-6);
        for (a, b) in out.v_mw.iter().zip(&target) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn search_propagates_evaluator_errors() {
        let r = search_v_mw(2, 5, 2, 0, |_| {
            Err(GradSecError::BadConfig {
                reason: "boom".to_owned(),
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn search_validates_size() {
        assert!(search_v_mw(0, 5, 2, 0, |_| Ok(0.0)).is_err());
        assert!(search_v_mw(6, 5, 2, 0, |_| Ok(0.0)).is_err());
    }
}
