//! The GradSec secure trainer.
//!
//! Executes one FL cycle with the protected layers living in the simulated
//! enclave:
//!
//! 1. **Provisioning** — for each protected layer, secure memory for
//!    `W, dW, A_{l−1}, Z_l, δ_l` is allocated from the bounded pool (a
//!    configuration that does not fit the device fails exactly like a real
//!    TA hitting `TEE_ERROR_OUT_OF_MEMORY`), charging the allocation
//!    clock.
//! 2. **Training** — the real SGD computation runs (the arithmetic is
//!    identical in both worlds); the simulator charges each layer's MAC
//!    operations to the user or kernel clock depending on placement, and
//!    each contiguous protected run costs one enclave entry + exit per
//!    batch through the secure monitor.
//! 3. **Reporting** — the cycle's [`CycleReport`] carries the Table 6 row:
//!    user/kernel/allocation seconds and peak TEE bytes.

use gradsec_data::{batch_of, Dataset};
use gradsec_nn::layer::{Layer, LayerKind};
use gradsec_nn::optim::Sgd;
use gradsec_nn::Sequential;
use gradsec_tee::cost::{CostModel, SimClock, TimeBreakdown};
use gradsec_tee::memory::SecureMemory;
use gradsec_tee::monitor::SecureMonitor;

use crate::memory_model::layer_tee_bytes;
use crate::policy::ProtectionPolicy;
use crate::report::CycleReport;
use crate::{GradSecError, Result};

/// Forward-pass MAC count of one layer for one sample.
///
/// Backward roughly doubles-and-a-half this (weight gradients + input
/// gradients), so the full per-sample cost is `3 ×` this value — the
/// convention the cost model was calibrated under.
pub fn layer_fwd_macs(layer: &dyn Layer) -> usize {
    match layer.kind() {
        LayerKind::Conv2d { filters, .. } => {
            let positions = layer.preact_elems() / filters.max(1);
            positions * (layer.param_count().saturating_sub(filters))
        }
        LayerKind::Dense { inputs, outputs } => inputs * outputs,
    }
}

/// Full (forward + backward) MAC count of one layer for one sample.
pub fn layer_cycle_macs(layer: &dyn Layer) -> usize {
    3 * layer_fwd_macs(layer)
}

/// Splits a sorted protected set into maximal contiguous runs.
fn contiguous_runs(protected: &[usize]) -> Vec<(usize, usize)> {
    ProtectionPolicy::slices(protected)
}

/// Analytically estimates one cycle's Table 6 row without running any
/// training — the deterministic fast path used by the benchmark harness.
///
/// # Errors
///
/// Returns [`GradSecError::BadPolicy`] for out-of-range layers.
pub fn estimate_cycle(
    model: &Sequential,
    protected: &[usize],
    batches: usize,
    batch_size: usize,
    cost: &CostModel,
) -> Result<(TimeBreakdown, usize)> {
    let n = model.num_layers();
    if let Some(&bad) = protected.iter().find(|&&l| l >= n) {
        return Err(GradSecError::BadPolicy {
            reason: format!("layer {bad} out of range for {n}-layer model"),
        });
    }
    let mut clock = SimClock::new();
    let mut peak = 0usize;
    for &l in protected {
        let layer = model.layer(l)?;
        clock.charge_layer_alloc(layer.param_count(), cost);
        peak += layer_tee_bytes(layer, batch_size);
    }
    let samples = (batches * batch_size) as f64;
    for (i, layer) in model.iter().enumerate() {
        let ops = layer_cycle_macs(layer) as f64 * samples;
        if protected.contains(&i) {
            clock.charge_secure_ops(ops, cost);
        } else {
            clock.charge_normal_ops(ops, cost);
        }
    }
    let runs = contiguous_runs(protected).len() as u64;
    clock.charge_crossings(2 * runs * batches as u64, cost);
    Ok((clock.breakdown(), peak))
}

/// The secure trainer: drop-in [`gradsec_fl::trainer::LocalTrainer`] that
/// executes the cycle under a given enclave budget and cost model.
#[derive(Debug)]
pub struct SecureTrainer {
    cost: CostModel,
    budget: usize,
    last_report: Option<CycleReport>,
}

impl SecureTrainer {
    /// Creates a trainer with the Pi-calibrated cost model and the default
    /// 4 MiB enclave.
    pub fn new() -> Self {
        SecureTrainer {
            cost: CostModel::raspberry_pi3(),
            budget: gradsec_tee::memory::DEFAULT_BUDGET,
            last_report: None,
        }
    }

    /// Overrides the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides the secure-memory budget in bytes.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// The report of the most recent cycle.
    pub fn last_report(&self) -> Option<&CycleReport> {
        self.last_report.as_ref()
    }

    /// Runs one protected training cycle (the long-hand form of
    /// [`gradsec_fl::trainer::LocalTrainer::train_cycle`] that returns the
    /// full report).
    ///
    /// # Errors
    ///
    /// * [`GradSecError::Tee`] with `OutOfSecureMemory` when the protected
    ///   set does not fit the enclave budget,
    /// * [`GradSecError::BadPolicy`] for out-of-range layers,
    /// * model errors from training itself.
    pub fn run_cycle(
        &mut self,
        model: &mut Sequential,
        dataset: &dyn Dataset,
        batches: &[Vec<usize>],
        learning_rate: f32,
        protected: &[usize],
    ) -> Result<CycleReport> {
        let n = model.num_layers();
        if let Some(&bad) = protected.iter().find(|&&l| l >= n) {
            return Err(GradSecError::BadPolicy {
                reason: format!("layer {bad} out of range for {n}-layer model"),
            });
        }
        let batch_size = batches.first().map(|b| b.len()).unwrap_or(0);
        let mut memory = SecureMemory::with_budget(self.budget);
        let mut monitor = SecureMonitor::new();
        let mut clock = SimClock::new();
        // Provisioning: allocate every protected layer's enclave residency.
        let mut held = Vec::new();
        for &l in protected {
            let layer = model.layer(l)?;
            let bytes = layer_tee_bytes(layer, batch_size);
            let alloc = memory.alloc(bytes)?;
            clock.charge_layer_alloc(layer.param_count(), &self.cost);
            held.push(alloc);
        }
        // Pre-compute per-layer op counts.
        let ops_per_sample: Vec<usize> = model.iter().map(layer_cycle_macs).collect();
        let runs = contiguous_runs(protected);
        // Train for real, charging the clocks per batch.
        let mut opt = Sgd::new(learning_rate);
        let mut loss_sum = 0.0f32;
        let mut samples = 0usize;
        for idx in batches {
            let (x, y) = batch_of(dataset, idx);
            let stats = model
                .train_batch(&x, &y, &mut opt)
                .map_err(GradSecError::from)?;
            loss_sum += stats.loss;
            samples += idx.len();
            for (i, &ops) in ops_per_sample.iter().enumerate() {
                let total = (ops * idx.len()) as f64;
                if protected.contains(&i) {
                    clock.charge_secure_ops(total, &self.cost);
                } else {
                    clock.charge_normal_ops(total, &self.cost);
                }
            }
            // One enclave entry + exit per contiguous protected run.
            for _ in &runs {
                monitor.smc_enter()?;
                monitor.smc_exit()?;
            }
            clock.charge_crossings(2 * runs.len() as u64, &self.cost);
        }
        let peak = memory.peak();
        for alloc in held {
            memory.free(alloc)?;
        }
        let report = CycleReport {
            protected: protected.to_vec(),
            times: clock.breakdown(),
            tee_peak_bytes: peak,
            crossings: clock.crossings(),
            mean_loss: if batches.is_empty() {
                0.0
            } else {
                loss_sum / batches.len() as f32
            },
            batches: batches.len(),
            samples,
        };
        self.last_report = Some(report.clone());
        Ok(report)
    }
}

impl Default for SecureTrainer {
    fn default() -> Self {
        SecureTrainer::new()
    }
}

impl gradsec_fl::trainer::LocalTrainer for SecureTrainer {
    fn train_cycle(
        &mut self,
        model: &mut Sequential,
        dataset: &dyn Dataset,
        batches: &[Vec<usize>],
        learning_rate: f32,
        protected_layers: &[usize],
    ) -> gradsec_fl::Result<gradsec_fl::trainer::CycleStats> {
        let report = self
            .run_cycle(model, dataset, batches, learning_rate, protected_layers)
            .map_err(|e| match e {
                GradSecError::Nn(e) => gradsec_fl::FlError::Nn(e),
                GradSecError::Tee(e) => gradsec_fl::FlError::Tee(e),
                other => gradsec_fl::FlError::BadConfig {
                    reason: other.to_string(),
                },
            })?;
        Ok(gradsec_fl::trainer::CycleStats {
            mean_loss: report.mean_loss,
            batches: report.batches,
            samples: report.samples,
            time: report.times,
            tee_peak_bytes: report.tee_peak_bytes,
            crossings: report.crossings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use gradsec_tee::TeeError;

    fn batches(n: usize, size: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|b| (b * size..(b + 1) * size).collect())
            .collect()
    }

    #[test]
    fn macs_match_calibration_convention() {
        // LeNet-5 fwd MACs: 4×230,400 + 76,800 = 998,400;
        // cycle MACs = 3× = 2,995,200 (the cost-model calibration).
        let m = zoo::lenet5(1).unwrap();
        let fwd: usize = m.iter().map(layer_fwd_macs).sum();
        assert_eq!(fwd, 998_400);
        let cycle: usize = m.iter().map(layer_cycle_macs).sum();
        assert_eq!(cycle, 2_995_200);
        assert_eq!(layer_fwd_macs(m.layer(0).unwrap()), 230_400);
        assert_eq!(layer_fwd_macs(m.layer(4).unwrap()), 76_800);
    }

    #[test]
    fn estimate_baseline_matches_table6() {
        let m = zoo::lenet5(1).unwrap();
        let cost = CostModel::raspberry_pi3();
        let (t, peak) = estimate_cycle(&m, &[], 10, 32, &cost).unwrap();
        assert!(
            (t.user_s - 2.191).abs() < 0.02,
            "baseline user {}",
            t.user_s
        );
        assert_eq!(t.kernel_s, 0.0);
        assert_eq!(t.alloc_s, 0.0);
        assert_eq!(peak, 0);
    }

    #[test]
    fn estimate_l2_row_matches_table6_shape() {
        // Paper L2 row: 1.672 + 0.652 + 0.34 (20% overhead), 0.565 MB.
        let m = zoo::lenet5(1).unwrap();
        let cost = CostModel::raspberry_pi3();
        let (t, peak) = estimate_cycle(&m, &[1], 10, 32, &cost).unwrap();
        let (base, _) = estimate_cycle(&m, &[], 10, 32, &cost).unwrap();
        let overhead = t.overhead_vs(&base);
        assert!(
            (5.0..40.0).contains(&overhead),
            "L2 overhead {overhead:.0}% out of the paper's ballpark (20%)"
        );
        let mb = peak as f64 / (1024.0 * 1024.0);
        assert!((mb - 0.565).abs() < 0.1, "L2 memory {mb:.3} MB");
    }

    #[test]
    fn estimate_l5_row_allocation_dominates() {
        // Paper L5 row: 212% overhead, almost all from the 4.68 s alloc.
        let m = zoo::lenet5(1).unwrap();
        let cost = CostModel::raspberry_pi3();
        let (t, _) = estimate_cycle(&m, &[4], 10, 32, &cost).unwrap();
        let (base, _) = estimate_cycle(&m, &[], 10, 32, &cost).unwrap();
        assert!(t.alloc_s > 4.0 && t.alloc_s < 5.5, "L5 alloc {}", t.alloc_s);
        let overhead = t.overhead_vs(&base);
        assert!(
            (180.0..260.0).contains(&overhead),
            "L5 overhead {overhead:.0}% (paper: 212%)"
        );
    }

    #[test]
    fn grouped_beats_darknetz_on_both_axes() {
        // The Table 1 comparison: GradSec {L2,L5} vs DarkneTZ L2..L5.
        let m = zoo::lenet5(1).unwrap();
        let cost = CostModel::raspberry_pi3();
        let (ours, our_mem) = estimate_cycle(&m, &[1, 4], 10, 32, &cost).unwrap();
        let (theirs, their_mem) = estimate_cycle(&m, &[1, 2, 3, 4], 10, 32, &cost).unwrap();
        let time_gain = (1.0 - ours.total_s() / theirs.total_s()) * 100.0;
        let mem_gain = (1.0 - our_mem as f64 / their_mem as f64) * 100.0;
        assert!(
            (2.0..20.0).contains(&time_gain),
            "time gain {time_gain:.1}% (paper: 8.3%)"
        );
        assert!(
            (20.0..40.0).contains(&mem_gain),
            "memory gain {mem_gain:.1}% (paper: 30%)"
        );
    }

    #[test]
    fn real_cycle_matches_estimate() {
        // The live trainer must charge exactly what the analytical
        // estimator predicts (same clocks, same rules).
        let ds = SyntheticCifar100::with_classes(64, 4, 3);
        let mut m = zoo::lenet5_with(4, 2).unwrap();
        let mut t = SecureTrainer::new();
        let report = t
            .run_cycle(&mut m, &ds, &batches(2, 8), 0.01, &[1, 4])
            .unwrap();
        let m2 = zoo::lenet5_with(4, 2).unwrap();
        let (est, peak) = estimate_cycle(&m2, &[1, 4], 2, 8, &CostModel::raspberry_pi3()).unwrap();
        assert!((report.times.total_s() - est.total_s()).abs() < 1e-9);
        assert_eq!(report.tee_peak_bytes, peak);
        assert_eq!(report.crossings, 2 * 2 * 2); // 2 runs × 2 batches × enter+exit
        assert!(report.mean_loss.is_finite());
        assert_eq!(report.samples, 16);
    }

    #[test]
    fn oversized_protection_hits_enclave_oom() {
        // A 256 KiB enclave cannot hold L1 (≈1.1 MB at batch 32).
        let ds = SyntheticCifar100::with_classes(64, 4, 3);
        let mut m = zoo::lenet5_with(4, 2).unwrap();
        let mut t = SecureTrainer::new().with_budget(256 * 1024);
        let err = t
            .run_cycle(&mut m, &ds, &batches(1, 32), 0.01, &[0])
            .unwrap_err();
        assert!(matches!(
            err,
            GradSecError::Tee(TeeError::OutOfSecureMemory { .. })
        ));
    }

    #[test]
    fn out_of_range_layer_rejected() {
        let ds = SyntheticCifar100::with_classes(16, 2, 3);
        let mut m = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap();
        let mut t = SecureTrainer::new();
        assert!(matches!(
            t.run_cycle(&mut m, &ds, &batches(1, 4), 0.01, &[7]),
            Err(GradSecError::BadPolicy { .. })
        ));
        assert!(estimate_cycle(&m, &[7], 1, 4, &CostModel::free()).is_err());
    }

    #[test]
    fn unprotected_cycle_has_zero_enclave_cost() {
        let ds = SyntheticCifar100::with_classes(16, 2, 3);
        let mut m = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap();
        let mut t = SecureTrainer::new();
        let r = t.run_cycle(&mut m, &ds, &batches(2, 4), 0.05, &[]).unwrap();
        assert_eq!(r.times.kernel_s, 0.0);
        assert_eq!(r.times.alloc_s, 0.0);
        assert_eq!(r.tee_peak_bytes, 0);
        assert_eq!(r.crossings, 0);
        assert!(r.times.user_s > 0.0);
    }

    #[test]
    fn works_as_fl_local_trainer() {
        use gradsec_fl::trainer::LocalTrainer;
        let ds = SyntheticCifar100::with_classes(32, 2, 3);
        let mut m = zoo::lenet5_with(2, 2).unwrap();
        let mut t = SecureTrainer::new();
        let stats = t
            .train_cycle(&mut m, &ds, &batches(2, 8), 0.01, &[1])
            .unwrap();
        assert!(stats.tee_peak_bytes > 0);
        assert!(stats.time.kernel_s > 0.0);
        assert!(t.last_report().is_some());
    }
}
