//! The moving window `MW` of dynamic GradSec (paper §7.2).
//!
//! The window covers `size_MW` successive layers; its position for each FL
//! cycle is drawn from the probability vector `V_MW`, whose length for an
//! `n`-layer network is `n − size_MW + 1` (paper Figure 4). The intuition:
//! protect *all* layers over time without ever holding them all in the
//! enclave at once, weighting positions by their sensitivity to the
//! attack.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{GradSecError, Result};

/// A validated moving-window configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingWindow {
    size: usize,
    v_mw: Vec<f64>,
    seed: u64,
}

impl MovingWindow {
    /// Creates a moving window of `size` successive layers over an
    /// `n_layers` network, with position distribution `v_mw` and a seed
    /// for the per-cycle draws.
    ///
    /// # Errors
    ///
    /// Returns [`GradSecError::BadPolicy`] when `size` is zero or exceeds
    /// the layer count, when `v_mw` has the wrong length
    /// (`n_layers − size + 1`), contains negatives, or does not sum to 1
    /// (within 1e-6).
    pub fn new(size: usize, n_layers: usize, v_mw: Vec<f64>, seed: u64) -> Result<Self> {
        if size == 0 || size > n_layers {
            return Err(GradSecError::BadPolicy {
                reason: format!("window size {size} invalid for {n_layers} layers"),
            });
        }
        let expected = n_layers - size + 1;
        if v_mw.len() != expected {
            return Err(GradSecError::BadPolicy {
                reason: format!(
                    "V_MW has {} entries; a {n_layers}-layer model with size_MW {size} needs {expected}",
                    v_mw.len()
                ),
            });
        }
        if v_mw.iter().any(|&p| p < 0.0) {
            return Err(GradSecError::BadPolicy {
                reason: "V_MW contains negative probabilities".to_owned(),
            });
        }
        let sum: f64 = v_mw.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(GradSecError::BadPolicy {
                reason: format!("V_MW sums to {sum}, expected 1"),
            });
        }
        Ok(MovingWindow { size, v_mw, seed })
    }

    /// Uniform `V_MW` over all positions.
    ///
    /// # Errors
    ///
    /// Propagates size validation.
    pub fn uniform(size: usize, n_layers: usize, seed: u64) -> Result<Self> {
        let positions = n_layers.checked_sub(size).map(|d| d + 1).unwrap_or(0);
        if positions == 0 {
            return Err(GradSecError::BadPolicy {
                reason: format!("window size {size} invalid for {n_layers} layers"),
            });
        }
        MovingWindow::new(
            size,
            n_layers,
            vec![1.0 / positions as f64; positions],
            seed,
        )
    }

    /// Window size (`size_MW`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The position distribution `V_MW`.
    pub fn v_mw(&self) -> &[f64] {
        &self.v_mw
    }

    /// Number of possible positions (`n − size_MW + 1`).
    pub fn positions(&self) -> usize {
        self.v_mw.len()
    }

    /// The layers covered when the window sits at `position`.
    pub fn layers_at(&self, position: usize) -> Vec<usize> {
        (position..position + self.size).collect()
    }

    /// Draws the window position for an FL cycle. Deterministic per
    /// `(seed, round)` so every component (server schedule, client
    /// trainer, attacker simulation) agrees on the cycle's configuration.
    pub fn position_for_round(&self, round: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(round),
        );
        let draw: f64 = rng.random_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, &p) in self.v_mw.iter().enumerate() {
            acc += p;
            if draw < acc {
                return i;
            }
        }
        self.v_mw.len() - 1
    }

    /// The protected layers for an FL cycle.
    pub fn layers_for_round(&self, round: u64) -> Vec<usize> {
        self.layers_at(self.position_for_round(round))
    }

    /// Empirical position frequencies over `rounds` cycles (used by the
    /// weighted-average rows of Table 6 and by tests).
    pub fn empirical_frequencies(&self, rounds: u64) -> Vec<f64> {
        let mut counts = vec![0u64; self.positions()];
        for r in 0..rounds {
            counts[self.position_for_round(r)] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / rounds as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's best DPIA configuration: size 2, V = [.2,.1,.6,.1].
    fn paper_window() -> MovingWindow {
        MovingWindow::new(2, 5, vec![0.2, 0.1, 0.6, 0.1], 7).unwrap()
    }

    #[test]
    fn validation() {
        assert!(MovingWindow::new(0, 5, vec![1.0], 0).is_err());
        assert!(MovingWindow::new(6, 5, vec![1.0], 0).is_err());
        assert!(MovingWindow::new(2, 5, vec![0.5, 0.5], 0).is_err()); // needs 4
        assert!(MovingWindow::new(2, 5, vec![0.5, 0.5, 0.5, -0.5], 0).is_err());
        assert!(MovingWindow::new(2, 5, vec![0.3, 0.3, 0.3, 0.3], 0).is_err());
        assert!(paper_window().positions() == 4);
    }

    #[test]
    fn figure4_positions() {
        // "The number of possible locations for an MW in a neural network
        // with n layers is n − size_MW + 1" — Figure 4 shows 4 for n=5,
        // size=2.
        let w = MovingWindow::uniform(2, 5, 0).unwrap();
        assert_eq!(w.positions(), 4);
        assert_eq!(w.layers_at(0), vec![0, 1]);
        assert_eq!(w.layers_at(3), vec![3, 4]);
    }

    #[test]
    fn draws_follow_v_mw() {
        let w = paper_window();
        let freq = w.empirical_frequencies(20_000);
        for (f, p) in freq.iter().zip(w.v_mw()) {
            assert!((f - p).abs() < 0.02, "freq {f} vs target {p}");
        }
    }

    #[test]
    fn deterministic_per_round() {
        let w = paper_window();
        for r in 0..50 {
            assert_eq!(w.position_for_round(r), w.position_for_round(r));
        }
        // Different seeds give different schedules.
        let w2 = MovingWindow::new(2, 5, vec![0.2, 0.1, 0.6, 0.1], 8).unwrap();
        let a: Vec<usize> = (0..50).map(|r| w.position_for_round(r)).collect();
        let b: Vec<usize> = (0..50).map(|r| w2.position_for_round(r)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn degenerate_distribution_pins_the_window() {
        let w = MovingWindow::new(3, 5, vec![0.0, 1.0, 0.0], 1).unwrap();
        for r in 0..20 {
            assert_eq!(w.layers_for_round(r), vec![1, 2, 3]);
        }
    }

    #[test]
    fn full_coverage_window() {
        // size_MW = n: a single position covering the whole network.
        let w = MovingWindow::uniform(5, 5, 0).unwrap();
        assert_eq!(w.positions(), 1);
        assert_eq!(w.layers_for_round(3), vec![0, 1, 2, 3, 4]);
    }
}
