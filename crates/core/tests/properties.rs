//! Property-based tests for GradSec's policies, window and cost
//! accounting.

use gradsec_core::memory_model::layers_tee_bytes;
use gradsec_core::policy::{DarknetzPolicy, ProtectionPolicy};
use gradsec_core::search::simplex_grid;
use gradsec_core::trainer::estimate_cycle;
use gradsec_core::window::MovingWindow;
use gradsec_nn::zoo;
use gradsec_tee::cost::CostModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_always_covers_size_successive_layers(
        size in 1usize..5, n_layers in 5usize..9, seed in 0u64..1000, round in 0u64..1000
    ) {
        let w = MovingWindow::uniform(size, n_layers, seed).unwrap();
        let layers = w.layers_for_round(round);
        prop_assert_eq!(layers.len(), size);
        for pair in layers.windows(2) {
            prop_assert_eq!(pair[1], pair[0] + 1);
        }
        prop_assert!(*layers.last().unwrap() < n_layers);
    }

    #[test]
    fn window_draws_are_deterministic(seed in 0u64..1000, round in 0u64..1000) {
        let a = MovingWindow::uniform(2, 5, seed).unwrap();
        let b = MovingWindow::uniform(2, 5, seed).unwrap();
        prop_assert_eq!(a.position_for_round(round), b.position_for_round(round));
    }

    #[test]
    fn slices_partition_any_layer_set(layers in proptest::collection::btree_set(0usize..12, 0..8)) {
        let v: Vec<usize> = layers.iter().copied().collect();
        let slices = ProtectionPolicy::slices(&v);
        // Every layer appears in exactly one slice; slices are disjoint,
        // ordered and maximal.
        let mut covered = Vec::new();
        for (a, b) in &slices {
            prop_assert!(a <= b);
            for l in *a..=*b {
                covered.push(l);
            }
        }
        prop_assert_eq!(covered, v.clone());
        for pair in slices.windows(2) {
            prop_assert!(pair[0].1 + 1 < pair[1].0, "slices must be maximal");
        }
    }

    #[test]
    fn darknetz_accepts_exactly_contiguous_sets(start in 0usize..8, len in 1usize..5, gap in 0usize..3) {
        let contiguous: Vec<usize> = (start..start + len).collect();
        prop_assert!(DarknetzPolicy::new(&contiguous).is_ok());
        if gap > 0 {
            let mut gapped = contiguous.clone();
            gapped.push(start + len + gap);
            prop_assert!(DarknetzPolicy::new(&gapped).is_err());
            // The covering hull always spans min..=max.
            let hull = DarknetzPolicy::covering(&gapped).unwrap();
            prop_assert_eq!(hull.layers().len(), len + gap + 1);
        }
    }

    #[test]
    fn estimate_cycle_is_monotone_in_protection(subset in proptest::collection::btree_set(0usize..5, 0..5)) {
        // Adding a layer to the protected set never reduces total time or
        // memory.
        let model = zoo::lenet5_with(10, 1).unwrap();
        let cost = CostModel::raspberry_pi3();
        let base: Vec<usize> = subset.iter().copied().collect();
        let (t0, m0) = estimate_cycle(&model, &base, 4, 8, &cost).unwrap();
        for extra in 0..5usize {
            if subset.contains(&extra) {
                continue;
            }
            let mut bigger = base.clone();
            bigger.push(extra);
            bigger.sort_unstable();
            let (t1, m1) = estimate_cycle(&model, &bigger, 4, 8, &cost).unwrap();
            prop_assert!(t1.total_s() >= t0.total_s() - 1e-9);
            prop_assert!(m1 >= m0);
        }
    }

    #[test]
    fn memory_model_is_additive(split in 1usize..4) {
        let model = zoo::lenet5_with(10, 1).unwrap();
        let all: Vec<usize> = (0..5).collect();
        let (left, right) = all.split_at(split);
        let whole = layers_tee_bytes(&model, &all, 16);
        let parts = layers_tee_bytes(&model, left, 16) + layers_tee_bytes(&model, right, 16);
        prop_assert_eq!(whole, parts);
    }

    #[test]
    fn simplex_grid_vectors_are_distributions(positions in 1usize..5, steps in 1usize..8) {
        for v in simplex_grid(positions, steps) {
            prop_assert_eq!(v.len(), positions);
            let sum: f64 = v.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn leakage_fraction_bounds(round in 0u64..100, size in 1usize..5) {
        use gradsec_core::leakage::LeakageModel;
        use gradsec_nn::gradient::{GradientSnapshot, LayerGradient};
        use gradsec_tensor::Tensor;
        let snap = GradientSnapshot::new(
            (0..5)
                .map(|l| LayerGradient {
                    layer: l,
                    dw: Tensor::ones(&[3]),
                    db: Tensor::ones(&[1]),
                })
                .collect(),
        );
        let w = MovingWindow::uniform(size, 5, 7).unwrap();
        let m = LeakageModel::new(ProtectionPolicy::dynamic(w), 5);
        let f = m.leaked_fraction(&snap, round);
        let expected = (5 - size) as f32 / 5.0;
        prop_assert!((f - expected).abs() < 1e-6);
    }
}
