//! Batch iteration with deterministic shuffling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Produces shuffled index batches over a dataset, one epoch at a time.
///
/// # Example
///
/// ```
/// use gradsec_data::Batcher;
///
/// let batcher = Batcher::new(10, 4, 42);
/// let batches = batcher.epoch(0);
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2
/// let all: usize = batches.iter().map(Vec::len).sum();
/// assert_eq!(all, 10);
/// ```
#[derive(Debug, Clone)]
pub struct Batcher {
    len: usize,
    batch_size: usize,
    seed: u64,
}

impl Batcher {
    /// Creates a batcher over `len` samples with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0`.
    pub fn new(len: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher {
            len,
            batch_size,
            seed,
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of batches per epoch (last one may be partial).
    pub fn batches_per_epoch(&self) -> usize {
        self.len.div_ceil(self.batch_size)
    }

    /// Returns the shuffled batches for `epoch`; each epoch gets an
    /// independent but deterministic permutation.
    pub fn epoch(&self, epoch: u64) -> Vec<Vec<usize>> {
        let mut indices: Vec<usize> = (0..self.len).collect();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(epoch.wrapping_mul(0x9E37)));
        indices.shuffle(&mut rng);
        indices
            .chunks(self.batch_size)
            .map(|c| c.to_vec())
            .collect()
    }

    /// Returns the first `n` full batches of `epoch` (a fixed-size
    /// training slice; the reproduction's "one FL cycle = 10 batches"
    /// convention uses this).
    pub fn epoch_batches(&self, epoch: u64, n: usize) -> Vec<Vec<usize>> {
        self.epoch(epoch)
            .into_iter()
            .filter(|b| b.len() == self.batch_size)
            .take(n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_once() {
        let b = Batcher::new(23, 5, 1);
        let mut seen = [false; 23];
        for batch in b.epoch(0) {
            for i in batch {
                assert!(!seen[i], "index {i} repeated");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn epochs_shuffle_differently_but_deterministically() {
        let b = Batcher::new(50, 10, 2);
        assert_eq!(b.epoch(0), b.epoch(0));
        assert_ne!(b.epoch(0), b.epoch(1));
        let other_seed = Batcher::new(50, 10, 3);
        assert_ne!(b.epoch(0), other_seed.epoch(0));
    }

    #[test]
    fn batch_counts() {
        assert_eq!(Batcher::new(10, 4, 0).batches_per_epoch(), 3);
        assert_eq!(Batcher::new(12, 4, 0).batches_per_epoch(), 3);
        assert_eq!(Batcher::new(0, 4, 0).batches_per_epoch(), 0);
    }

    #[test]
    fn fixed_slice_takes_full_batches_only() {
        let b = Batcher::new(10, 4, 5);
        let slice = b.epoch_batches(0, 5);
        // Only two full batches of 4 exist.
        assert_eq!(slice.len(), 2);
        assert!(slice.iter().all(|s| s.len() == 4));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = Batcher::new(10, 0, 0);
    }
}
