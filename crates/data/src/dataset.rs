//! The dataset abstraction.

use gradsec_tensor::Tensor;

/// One labelled image.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// `(C, H, W)` image tensor, values roughly in `[0, 1]`.
    pub image: Tensor,
    /// Class label in `0..num_classes`.
    pub label: usize,
    /// Optional binary attribute — the DPIA target property (paper §3.2:
    /// "a private property (prop) seen by the FL model during training").
    pub property: Option<bool>,
}

/// A deterministic, lazily-generated dataset.
///
/// Implementations must make `sample(i)` a pure function of the dataset
/// configuration and `i`, so that experiments are reproducible regardless
/// of access order or parallelism.
pub trait Dataset: Send + Sync {
    /// Number of samples.
    fn len(&self) -> usize;

    /// `true` when the dataset holds no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct class labels.
    fn num_classes(&self) -> usize;

    /// Per-sample image dimensions `(C, H, W)`.
    fn image_dims(&self) -> (usize, usize, usize);

    /// Generates sample `index`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `index >= len()`.
    fn sample(&self, index: usize) -> Sample;
}

/// One-hot encodes `labels` into an `(N, classes)` matrix (the paper's
/// `Y` in Table 2).
///
/// # Panics
///
/// Panics when any label is out of range.
pub fn one_hot(labels: &[usize], classes: usize) -> Tensor {
    let mut y = Tensor::zeros(&[labels.len(), classes]);
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < classes, "label {l} out of range for {classes} classes");
        y.data_mut()[i * classes + l] = 1.0;
    }
    y
}

/// Materialises a batch: stacks the images of `indices` into an
/// `(N, C, H, W)` tensor and one-hot encodes their labels.
///
/// # Panics
///
/// Panics when any index is out of range.
pub fn batch_of(ds: &dyn Dataset, indices: &[usize]) -> (Tensor, Tensor) {
    let (c, h, w) = ds.image_dims();
    let n = indices.len();
    let mut x = Tensor::zeros(&[n, c, h, w]);
    let mut labels = Vec::with_capacity(n);
    let img_len = c * h * w;
    for (row, &idx) in indices.iter().enumerate() {
        let s = ds.sample(idx);
        x.data_mut()[row * img_len..(row + 1) * img_len].copy_from_slice(s.image.data());
        labels.push(s.label);
    }
    let y = one_hot(&labels, ds.num_classes());
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tiny;
    impl Dataset for Tiny {
        fn len(&self) -> usize {
            3
        }
        fn num_classes(&self) -> usize {
            2
        }
        fn image_dims(&self) -> (usize, usize, usize) {
            (1, 2, 2)
        }
        fn sample(&self, index: usize) -> Sample {
            assert!(index < 3);
            Sample {
                image: Tensor::full(&[1, 2, 2], index as f32),
                label: index % 2,
                property: Some(index == 0),
            }
        }
    }

    #[test]
    fn one_hot_basic() {
        let y = one_hot(&[0, 2, 1], 3);
        assert_eq!(y.data(), &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        let _ = one_hot(&[3], 3);
    }

    #[test]
    fn batch_of_stacks_in_order() {
        let ds = Tiny;
        let (x, y) = batch_of(&ds, &[2, 0]);
        assert_eq!(x.dims(), &[2, 1, 2, 2]);
        assert_eq!(&x.data()[..4], &[2.0; 4]);
        assert_eq!(&x.data()[4..], &[0.0; 4]);
        assert_eq!(y.dims(), &[2, 2]);
        assert_eq!(y.get(&[0, 0]).unwrap(), 1.0); // label 0
        assert_eq!(y.get(&[1, 0]).unwrap(), 1.0); // label 0
    }

    #[test]
    fn default_is_empty() {
        let ds = Tiny;
        assert!(!ds.is_empty());
    }
}
