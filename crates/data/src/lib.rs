//! # gradsec-data
//!
//! Synthetic dataset substrate for the GradSec reproduction.
//!
//! The paper evaluates on CIFAR-100 (DRIA, MIA) and LFW with a gender
//! property (DPIA). Neither dataset ships with this reproduction, so this
//! crate generates synthetic stand-ins that preserve what the attacks
//! exploit:
//!
//! * [`SyntheticCifar100`] — 32×32×3 images with strong class-conditioned
//!   structure (frequency gratings + blobs + per-sample noise). DRIA only
//!   needs inputs that are recoverable from convolutional gradients; MIA
//!   needs a dataset a model can overfit — both hold by construction.
//! * [`SyntheticLfw`] — face-like images with identity labels and a binary
//!   `property` (the paper's "gender") that adds a distinctive mid-level
//!   component, so batches containing the property measurably bias the
//!   aggregated gradients DPIA consumes.
//! * [`SyntheticMicro`] — a featherweight low-dimensional vector dataset
//!   for fleet-scale (10⁴+ client) federation benches, where CIFAR-sized
//!   samples would drown the measurement in pixel traffic.
//!
//! Everything is generated lazily and deterministically from a seed —
//! `sample(i)` is a pure function of `(seed, i)`.
//!
//! # Example
//!
//! ```
//! use gradsec_data::{Dataset, SyntheticCifar100};
//!
//! let ds = SyntheticCifar100::new(1000, 42);
//! assert_eq!(ds.len(), 1000);
//! let s = ds.sample(7);
//! assert_eq!(s.image.dims(), &[3, 32, 32]);
//! assert!(s.label < ds.num_classes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod dataset;
pub mod split;
mod synth_cifar;
mod synth_lfw;
mod synth_micro;

pub use batch::Batcher;
pub use dataset::{batch_of, one_hot, Dataset, Sample};
pub use synth_cifar::SyntheticCifar100;
pub use synth_lfw::SyntheticLfw;
pub use synth_micro::SyntheticMicro;
