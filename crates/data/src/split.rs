//! Deterministic dataset splits.
//!
//! The attacks need disjoint index sets:
//!
//! * MIA needs *member* (`D1 ⊂ D`) and *non-member* (`D2 ⊄ D`) sets
//!   (paper §3.2),
//! * DPIA needs attacker train/validation/test gradient sets (paper §8.2),
//! * FL needs per-client shards.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits `0..len` into consecutive disjoint chunks of the given sizes
/// after a seeded shuffle.
///
/// # Panics
///
/// Panics when the sizes sum to more than `len`.
pub fn split_sizes(len: usize, sizes: &[usize], seed: u64) -> Vec<Vec<usize>> {
    let total: usize = sizes.iter().sum();
    assert!(
        total <= len,
        "split sizes sum to {total}, exceeding dataset length {len}"
    );
    let mut indices: Vec<usize> = (0..len).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut out = Vec::with_capacity(sizes.len());
    let mut start = 0;
    for &s in sizes {
        out.push(indices[start..start + s].to_vec());
        start += s;
    }
    out
}

/// Splits `0..len` into `shards` near-equal disjoint shards (FL client
/// data partitions).
///
/// # Panics
///
/// Panics when `shards == 0`.
pub fn shard(len: usize, shards: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(shards > 0, "shard count must be positive");
    let mut indices: Vec<usize> = (0..len).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(indices[start..start + size].to_vec());
        start += size;
    }
    out
}

/// The member/non-member split MIA requires: `n` member indices and `n`
/// non-member indices, disjoint.
///
/// # Panics
///
/// Panics when `2n > len`.
pub fn member_split(len: usize, n: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut parts = split_sizes(len, &[n, n], seed);
    let non_member = parts.pop().expect("two parts requested");
    let member = parts.pop().expect("two parts requested");
    (member, non_member)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_sizes_disjoint_and_sized() {
        let parts = split_sizes(100, &[30, 20, 10], 1);
        assert_eq!(parts[0].len(), 30);
        assert_eq!(parts[1].len(), 20);
        assert_eq!(parts[2].len(), 10);
        let all: HashSet<usize> = parts.iter().flatten().copied().collect();
        assert_eq!(all.len(), 60, "parts overlap");
    }

    #[test]
    #[should_panic(expected = "exceeding dataset length")]
    fn split_sizes_rejects_oversubscription() {
        let _ = split_sizes(10, &[6, 5], 0);
    }

    #[test]
    fn shards_partition_everything() {
        let parts = shard(101, 4, 2);
        assert_eq!(parts.len(), 4);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![26, 25, 25, 25]);
        let all: HashSet<usize> = parts.iter().flatten().copied().collect();
        assert_eq!(all.len(), 101);
    }

    #[test]
    fn member_split_disjoint() {
        let (m, nm) = member_split(100, 40, 3);
        assert_eq!(m.len(), 40);
        assert_eq!(nm.len(), 40);
        let ms: HashSet<usize> = m.into_iter().collect();
        assert!(nm.iter().all(|i| !ms.contains(i)));
    }

    #[test]
    fn deterministic() {
        assert_eq!(shard(50, 3, 7), shard(50, 3, 7));
        assert_ne!(shard(50, 3, 7), shard(50, 3, 8));
    }
}
