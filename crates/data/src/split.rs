//! Deterministic dataset splits.
//!
//! The attacks need disjoint index sets:
//!
//! * MIA needs *member* (`D1 ⊂ D`) and *non-member* (`D2 ⊄ D`) sets
//!   (paper §3.2),
//! * DPIA needs attacker train/validation/test gradient sets (paper §8.2),
//! * FL needs per-client shards.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits `0..len` into consecutive disjoint chunks of the given sizes
/// after a seeded shuffle.
///
/// # Panics
///
/// Panics when the sizes sum to more than `len`.
pub fn split_sizes(len: usize, sizes: &[usize], seed: u64) -> Vec<Vec<usize>> {
    let total: usize = sizes.iter().sum();
    assert!(
        total <= len,
        "split sizes sum to {total}, exceeding dataset length {len}"
    );
    let mut indices: Vec<usize> = (0..len).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut out = Vec::with_capacity(sizes.len());
    let mut start = 0;
    for &s in sizes {
        out.push(indices[start..start + s].to_vec());
        start += s;
    }
    out
}

/// Splits `0..len` into `shards` near-equal disjoint shards (FL client
/// data partitions).
///
/// # Panics
///
/// Panics when `shards == 0`.
pub fn shard(len: usize, shards: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(shards > 0, "shard count must be positive");
    let mut indices: Vec<usize> = (0..len).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(indices[start..start + size].to_vec());
        start += size;
    }
    out
}

/// Splits sample indices into `shards` near-equal disjoint shards that
/// are **label-skewed** (pathologically non-IID): indices are grouped by
/// label, shuffled *within* each label group under the seed, concatenated
/// in ascending label order, and dealt out as contiguous chunks — so each
/// shard holds samples from as few distinct classes as its size allows.
/// `labels[i]` is the label of sample `i`; shard sizes match
/// [`shard`]'s (`len / shards` each, remainder spread over the first
/// shards).
///
/// # Panics
///
/// Panics when `shards == 0`.
pub fn shard_by_label(labels: &[usize], shards: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(shards > 0, "shard count must be positive");
    let len = labels.len();
    let mut by_label: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, &label) in labels.iter().enumerate() {
        by_label.entry(label).or_default().push(i);
    }
    let mut ordered = Vec::with_capacity(len);
    for (label, mut group) in by_label {
        // Salt the within-label shuffle by the label so no two groups
        // share a permutation.
        let mut rng = StdRng::seed_from_u64(seed ^ (label as u64).wrapping_mul(0x9E37_79B9));
        group.shuffle(&mut rng);
        ordered.extend(group);
    }
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(ordered[start..start + size].to_vec());
        start += size;
    }
    out
}

/// The member/non-member split MIA requires: `n` member indices and `n`
/// non-member indices, disjoint.
///
/// # Panics
///
/// Panics when `2n > len`.
pub fn member_split(len: usize, n: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut parts = split_sizes(len, &[n, n], seed);
    let non_member = parts.pop().expect("two parts requested");
    let member = parts.pop().expect("two parts requested");
    (member, non_member)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_sizes_disjoint_and_sized() {
        let parts = split_sizes(100, &[30, 20, 10], 1);
        assert_eq!(parts[0].len(), 30);
        assert_eq!(parts[1].len(), 20);
        assert_eq!(parts[2].len(), 10);
        let all: HashSet<usize> = parts.iter().flatten().copied().collect();
        assert_eq!(all.len(), 60, "parts overlap");
    }

    #[test]
    #[should_panic(expected = "exceeding dataset length")]
    fn split_sizes_rejects_oversubscription() {
        let _ = split_sizes(10, &[6, 5], 0);
    }

    #[test]
    fn shards_partition_everything() {
        let parts = shard(101, 4, 2);
        assert_eq!(parts.len(), 4);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![26, 25, 25, 25]);
        let all: HashSet<usize> = parts.iter().flatten().copied().collect();
        assert_eq!(all.len(), 101);
    }

    #[test]
    fn member_split_disjoint() {
        let (m, nm) = member_split(100, 40, 3);
        assert_eq!(m.len(), 40);
        assert_eq!(nm.len(), 40);
        let ms: HashSet<usize> = m.into_iter().collect();
        assert!(nm.iter().all(|i| !ms.contains(i)));
    }

    #[test]
    fn label_shards_partition_everything_and_skew() {
        // 120 samples, 6 classes of 20, 6 shards of 20: each shard must
        // end up holding exactly one class.
        let labels: Vec<usize> = (0..120).map(|i| i % 6).collect();
        let parts = shard_by_label(&labels, 6, 11);
        assert_eq!(parts.len(), 6);
        let all: HashSet<usize> = parts.iter().flatten().copied().collect();
        assert_eq!(all.len(), 120);
        for part in &parts {
            let classes: HashSet<usize> = part.iter().map(|&i| labels[i]).collect();
            assert_eq!(classes.len(), 1, "shard spans classes {classes:?}");
        }
        // Sizes match the IID sharder's.
        let sizes: Vec<usize> = shard_by_label(&labels, 7, 11)
            .iter()
            .map(Vec::len)
            .collect();
        let iid: Vec<usize> = shard(120, 7, 11).iter().map(Vec::len).collect();
        assert_eq!(sizes, iid);
    }

    #[test]
    fn label_shards_deterministic() {
        let labels: Vec<usize> = (0..101).map(|i| i % 3).collect();
        assert_eq!(shard_by_label(&labels, 4, 7), shard_by_label(&labels, 4, 7));
        assert_ne!(shard_by_label(&labels, 4, 7), shard_by_label(&labels, 4, 8));
    }

    #[test]
    fn deterministic() {
        assert_eq!(shard(50, 3, 7), shard(50, 3, 7));
        assert_ne!(shard(50, 3, 7), shard(50, 3, 8));
    }
}
