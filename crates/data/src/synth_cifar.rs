//! Synthetic CIFAR-100 stand-in.
//!
//! Each of the 100 classes owns a deterministic visual signature built
//! from two frequency gratings, a Gaussian blob and a colour cast; each
//! sample perturbs its class signature with per-sample phase jitter and
//! pixel noise. The result is a dataset that (a) a CNN can genuinely
//! learn/overfit — required for MIA — and (b) has enough per-image
//! structure for DRIA's gradient-matching reconstruction to show visually
//! meaningful success/failure, mirroring the role CIFAR-100 plays in the
//! paper.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gradsec_tensor::Tensor;

use crate::dataset::{Dataset, Sample};

/// CIFAR-like image edge length.
const HW: usize = 32;
/// CIFAR-like channel count.
const CHANNELS: usize = 3;

/// A synthetic 100-class, 32×32×3 image dataset.
#[derive(Debug, Clone)]
pub struct SyntheticCifar100 {
    len: usize,
    classes: usize,
    seed: u64,
    noise: f32,
}

impl SyntheticCifar100 {
    /// Creates a dataset of `len` samples with the default 100 classes and
    /// moderate noise.
    pub fn new(len: usize, seed: u64) -> Self {
        SyntheticCifar100 {
            len,
            classes: 100,
            seed,
            noise: 0.15,
        }
    }

    /// Creates a dataset with a custom class count (tests use small ones).
    pub fn with_classes(len: usize, classes: usize, seed: u64) -> Self {
        SyntheticCifar100 {
            len,
            classes: classes.max(1),
            seed,
            noise: 0.15,
        }
    }

    /// Sets the per-pixel noise standard deviation.
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    fn sample_rng(&self, index: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index as u64),
        )
    }

    /// Deterministic per-class signature parameters.
    fn class_params(&self, class: usize) -> ClassParams {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xD1B5_4A32_D192_ED03)
                .wrapping_add(class as u64),
        );
        ClassParams {
            fx: rng.random_range(1..5) as f32,
            fy: rng.random_range(1..5) as f32,
            blob_x: rng.random_range(6.0..26.0),
            blob_y: rng.random_range(6.0..26.0),
            blob_sigma: rng.random_range(3.0..7.0),
            color: [
                rng.random_range(0.2..0.8),
                rng.random_range(0.2..0.8),
                rng.random_range(0.2..0.8),
            ],
            grating_weight: rng.random_range(0.25..0.45),
        }
    }
}

struct ClassParams {
    fx: f32,
    fy: f32,
    blob_x: f32,
    blob_y: f32,
    blob_sigma: f32,
    color: [f32; 3],
    grating_weight: f32,
}

impl Dataset for SyntheticCifar100 {
    fn len(&self) -> usize {
        self.len
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn image_dims(&self) -> (usize, usize, usize) {
        (CHANNELS, HW, HW)
    }

    fn sample(&self, index: usize) -> Sample {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        let mut rng = self.sample_rng(index);
        let label = rng.random_range(0..self.classes);
        let p = self.class_params(label);
        // Per-sample jitter: phase shift and blob offset.
        let phase: f32 = rng.random_range(0.0..std::f32::consts::TAU);
        let dx: f32 = rng.random_range(-2.0..2.0);
        let dy: f32 = rng.random_range(-2.0..2.0);
        let mut img = Tensor::zeros(&[CHANNELS, HW, HW]);
        let tau = std::f32::consts::TAU;
        for c in 0..CHANNELS {
            for y in 0..HW {
                for x in 0..HW {
                    let grating = ((p.fx * x as f32 / HW as f32) * tau + phase).sin()
                        * ((p.fy * y as f32 / HW as f32) * tau + phase).cos();
                    let bx = x as f32 - (p.blob_x + dx);
                    let by = y as f32 - (p.blob_y + dy);
                    let blob = (-(bx * bx + by * by) / (2.0 * p.blob_sigma * p.blob_sigma)).exp();
                    let base = p.color[c]
                        + p.grating_weight * grating
                        + 0.35 * blob * (1.0 - 0.3 * c as f32);
                    let noise: f32 = {
                        // Cheap Gaussian-ish noise: mean of 2 uniforms.
                        let a: f32 = rng.random_range(-1.0..1.0);
                        let b: f32 = rng.random_range(-1.0..1.0);
                        0.5 * (a + b) * self.noise
                    };
                    let v = (base + noise).clamp(0.0, 1.0);
                    img.data_mut()[c * HW * HW + y * HW + x] = v;
                }
            }
        }
        Sample {
            image: img,
            label,
            property: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_index() {
        let ds = SyntheticCifar100::new(50, 9);
        let a = ds.sample(13);
        let b = ds.sample(13);
        assert_eq!(a, b);
        let c = ds.sample(14);
        assert_ne!(a.image, c.image);
    }

    #[test]
    fn seeds_change_content() {
        let a = SyntheticCifar100::new(10, 1).sample(0);
        let b = SyntheticCifar100::new(10, 2).sample(0);
        assert_ne!(a.image, b.image);
    }

    #[test]
    fn values_in_unit_interval() {
        let ds = SyntheticCifar100::new(5, 3);
        for i in 0..5 {
            let s = ds.sample(i);
            assert!(s.image.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn labels_cover_classes() {
        let ds = SyntheticCifar100::with_classes(400, 4, 7);
        let mut seen = [false; 4];
        for i in 0..400 {
            seen[ds.sample(i).label] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 classes should appear");
    }

    #[test]
    fn same_class_images_correlate_more_than_cross_class() {
        // The class signature must dominate the noise for learning to work.
        let ds = SyntheticCifar100::with_classes(500, 3, 11);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for i in 0..500 {
            let s = ds.sample(i);
            if by_class[s.label].len() < 2 {
                by_class[s.label].push(i);
            }
        }
        let dist = |i: usize, j: usize| -> f32 {
            ds.sample(i).image.distance(&ds.sample(j).image).unwrap()
        };
        let within = dist(by_class[0][0], by_class[0][1]);
        let across = dist(by_class[0][0], by_class[1][0]);
        assert!(
            within < across,
            "within-class distance {within} should be below cross-class {across}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let ds = SyntheticCifar100::new(3, 1);
        let _ = ds.sample(3);
    }

    #[test]
    fn property_absent() {
        let ds = SyntheticCifar100::new(3, 1);
        assert_eq!(ds.sample(0).property, None);
    }
}
