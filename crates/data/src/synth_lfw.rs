//! Synthetic LFW stand-in with a binary target property.
//!
//! The paper's DPIA experiment trains LeNet-5 on LFW and infers a private
//! attribute (e.g. gender) from aggregated gradients. The synthetic
//! analogue generates face-like images: an elliptical "head" on a
//! background, identity-conditioned feature geometry (eye spacing, mouth
//! curvature), and — crucially — a binary `property` that superimposes a
//! distinctive component (a top-of-head band, standing in for hair/
//! accessory cues). Batches containing the property therefore shift the
//! gradient statistics, which is precisely the leakage DPIA exploits.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gradsec_tensor::Tensor;

use crate::dataset::{Dataset, Sample};

/// Image edge (LFW crops resized to CIFAR scale, as the paper's LeNet-5
/// input geometry requires 32×32×3).
const HW: usize = 32;
const CHANNELS: usize = 3;

/// A synthetic face dataset with identities and a binary property.
#[derive(Debug, Clone)]
pub struct SyntheticLfw {
    len: usize,
    identities: usize,
    seed: u64,
    property_rate: f64,
    noise: f32,
}

impl SyntheticLfw {
    /// Creates a dataset of `len` samples over `identities` classes; the
    /// property appears on a sample with probability `property_rate`.
    pub fn new(len: usize, identities: usize, property_rate: f64, seed: u64) -> Self {
        SyntheticLfw {
            len,
            identities: identities.max(1),
            seed,
            property_rate: property_rate.clamp(0.0, 1.0),
            noise: 0.1,
        }
    }

    /// Sets the per-pixel noise standard deviation.
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// The configured property prevalence.
    pub fn property_rate(&self) -> f64 {
        self.property_rate
    }

    fn sample_rng(&self, index: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(index as u64),
        )
    }

    fn identity_params(&self, id: usize) -> IdentityParams {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xE703_7ED1_A0B4_28DB)
                .wrapping_add(id as u64),
        );
        IdentityParams {
            skin: rng.random_range(0.45..0.85),
            eye_dx: rng.random_range(4.0..7.0),
            eye_y: rng.random_range(11.0..14.0),
            mouth_curve: rng.random_range(-1.5..1.5),
            head_rx: rng.random_range(9.0..12.0),
            head_ry: rng.random_range(11.0..14.0),
        }
    }
}

struct IdentityParams {
    skin: f32,
    eye_dx: f32,
    eye_y: f32,
    mouth_curve: f32,
    head_rx: f32,
    head_ry: f32,
}

impl Dataset for SyntheticLfw {
    fn len(&self) -> usize {
        self.len
    }

    fn num_classes(&self) -> usize {
        self.identities
    }

    fn image_dims(&self) -> (usize, usize, usize) {
        (CHANNELS, HW, HW)
    }

    fn sample(&self, index: usize) -> Sample {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        let mut rng = self.sample_rng(index);
        let label = rng.random_range(0..self.identities);
        let has_property = rng.random_bool(self.property_rate);
        let p = self.identity_params(label);
        let jx: f32 = rng.random_range(-1.0..1.0);
        let jy: f32 = rng.random_range(-1.0..1.0);
        let cx = 16.0 + jx;
        let cy = 17.0 + jy;
        let mut img = Tensor::zeros(&[CHANNELS, HW, HW]);
        for y in 0..HW {
            for x in 0..HW {
                let fx = x as f32;
                let fy = y as f32;
                // Head ellipse.
                let ex = (fx - cx) / p.head_rx;
                let ey = (fy - cy) / p.head_ry;
                let inside = ex * ex + ey * ey <= 1.0;
                let mut base = if inside { p.skin } else { 0.15 };
                if inside {
                    // Eyes: two dark dots.
                    for side in [-1.0f32, 1.0] {
                        let dx = fx - (cx + side * p.eye_dx);
                        let dy = fy - (cy - 17.0 + p.eye_y);
                        if dx * dx + dy * dy < 2.2 {
                            base = 0.05;
                        }
                    }
                    // Mouth: a curved dark band.
                    let my = cy + 6.0 + p.mouth_curve * ((fx - cx) / 6.0).powi(2);
                    if (fy - my).abs() < 0.9 && (fx - cx).abs() < 5.0 {
                        base = 0.1;
                    }
                }
                // The private property: a distinctive band across the top
                // of the head (the DPIA leakage source).
                if has_property {
                    let band_y = cy - p.head_ry;
                    if (fy - band_y).abs() < 2.5 && (fx - cx).abs() < p.head_rx {
                        base = 0.9;
                    }
                }
                let noise: f32 = {
                    let a: f32 = rng.random_range(-1.0..1.0);
                    let b: f32 = rng.random_range(-1.0..1.0);
                    0.5 * (a + b) * self.noise
                };
                for c in 0..CHANNELS {
                    // Slight channel tinting for colour realism.
                    let tint = 1.0 - 0.12 * c as f32;
                    let v = (base * tint + noise).clamp(0.0, 1.0);
                    img.data_mut()[c * HW * HW + y * HW + x] = v;
                }
            }
        }
        Sample {
            image: img,
            label,
            property: Some(has_property),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_labelled() {
        let ds = SyntheticLfw::new(100, 10, 0.5, 3);
        let a = ds.sample(5);
        let b = ds.sample(5);
        assert_eq!(a, b);
        assert!(a.label < 10);
        assert!(a.property.is_some());
    }

    #[test]
    fn property_rate_is_respected() {
        let ds = SyntheticLfw::new(2000, 10, 0.3, 7);
        let with: usize = (0..2000)
            .filter(|&i| ds.sample(i).property == Some(true))
            .count();
        let rate = with as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn extreme_rates() {
        let none = SyntheticLfw::new(50, 5, 0.0, 1);
        assert!((0..50).all(|i| none.sample(i).property == Some(false)));
        let all = SyntheticLfw::new(50, 5, 1.0, 1);
        assert!((0..50).all(|i| all.sample(i).property == Some(true)));
    }

    #[test]
    fn property_changes_pixels() {
        // Find a property/non-property pair of the same identity and check
        // the images differ substantially in the band region.
        let ds = SyntheticLfw::new(500, 4, 0.5, 11);
        let mut with = None;
        let mut without = None;
        for i in 0..500 {
            let s = ds.sample(i);
            if s.label == 0 {
                match s.property {
                    Some(true) if with.is_none() => with = Some(s),
                    Some(false) if without.is_none() => without = Some(s),
                    _ => {}
                }
            }
            if with.is_some() && without.is_some() {
                break;
            }
        }
        let (w, wo) = (with.unwrap(), without.unwrap());
        let d = w.image.distance(&wo.image).unwrap();
        assert!(d > 1.0, "property pair distance too small: {d}");
    }

    #[test]
    fn values_in_unit_interval() {
        let ds = SyntheticLfw::new(5, 3, 0.5, 13);
        for i in 0..5 {
            assert!(ds
                .sample(i)
                .image
                .data()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = SyntheticLfw::new(1, 1, 0.5, 1).sample(1);
    }
}
