//! A featherweight synthetic dataset for fleet-scale federation runs.
//!
//! The engine-scaling and shard-scaling benches simulate 10⁴+ clients per
//! round; at that scale the 3,072-dimensional CIFAR stand-in would spend
//! all its time (and hundreds of megabytes of per-client model replicas)
//! on pixels nobody looks at. [`SyntheticMicro`] keeps the same contract —
//! lazily generated, `sample(i)` a pure function of `(seed, i)`, genuinely
//! learnable class structure — at a configurable handful of dimensions, so
//! a 10,000-client fleet of `tiny_mlp` replicas fits in a few megabytes.
//!
//! Samples are class centroids (seeded uniform draws in `[0, 1]`) plus
//! small per-sample noise; labels round-robin over the classes so every
//! shard of a near-equal split sees every class.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gradsec_tensor::Tensor;

use crate::dataset::{Dataset, Sample};

/// A tiny `dim`-dimensional vector dataset (shaped `(1, dim, 1)` to fit
/// the image contract) with `classes` linearly separable classes.
#[derive(Debug, Clone)]
pub struct SyntheticMicro {
    len: usize,
    classes: usize,
    dim: usize,
    seed: u64,
    noise: f32,
}

impl SyntheticMicro {
    /// Creates a dataset of `len` samples over `classes` classes in
    /// `dim` dimensions (both clamped to at least 1).
    pub fn new(len: usize, classes: usize, dim: usize, seed: u64) -> Self {
        SyntheticMicro {
            len,
            classes: classes.max(1),
            dim: dim.max(1),
            seed,
            noise: 0.05,
        }
    }

    /// Sets the per-feature noise amplitude.
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// The feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn centroid(&self, class: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xD1B5_4A32_D192_ED03)
                .wrapping_add(class as u64),
        )
    }
}

impl Dataset for SyntheticMicro {
    fn len(&self) -> usize {
        self.len
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn image_dims(&self) -> (usize, usize, usize) {
        (1, self.dim, 1)
    }

    fn sample(&self, index: usize) -> Sample {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        let label = index % self.classes;
        let mut centroid_rng = self.centroid(label);
        let mut jitter_rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index as u64),
        );
        let mut image = Tensor::zeros(&[1, self.dim, 1]);
        for v in image.data_mut() {
            let base: f32 = centroid_rng.random_range(0.0..1.0);
            let jitter: f32 = jitter_rng.random_range(-1.0..1.0);
            *v = (base + self.noise * jitter).clamp(0.0, 1.0);
        }
        Sample {
            image,
            label,
            property: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let ds = SyntheticMicro::new(100, 4, 8, 7);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.num_classes(), 4);
        assert_eq!(ds.image_dims(), (1, 8, 1));
        let a = ds.sample(13);
        let b = ds.sample(13);
        assert_eq!(a, b, "sample(i) must be a pure function");
        assert!(a.image.data().iter().all(|v| (0.0..=1.0).contains(v)));
        assert_eq!(a.label, 13 % 4);
    }

    #[test]
    fn classes_are_separated() {
        // Same-class samples sit near their centroid; different classes
        // sit near different centroids.
        let ds = SyntheticMicro::new(64, 2, 16, 3);
        let dist = |x: &Tensor, y: &Tensor| -> f32 {
            x.data()
                .iter()
                .zip(y.data())
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f32>()
                .sqrt()
        };
        let a0 = ds.sample(0).image;
        let a1 = ds.sample(2).image; // same class (even)
        let b0 = ds.sample(1).image; // other class (odd)
        assert!(dist(&a0, &a1) < dist(&a0, &b0));
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let ds = SyntheticMicro::new(4, 0, 0, 1);
        assert_eq!(ds.num_classes(), 1);
        assert_eq!(ds.dim(), 1);
        let s = ds.sample(3);
        assert_eq!(s.label, 0);
        assert_eq!(s.image.dims(), &[1, 1, 1]);
    }
}
