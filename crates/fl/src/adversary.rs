//! Seeded adversarial client personas for hostile-fleet simulation.
//!
//! The fault layer ([`crate::faults`]) covers *failure*; this module
//! covers *malice*. An [`AdversaryPlan`] assigns each client a
//! [`Persona`] — update poisoner, update scaler, free-rider, or
//! colluding observer — as a **pure function of (scenario seed, client
//! id)**, using the same salted-RNG discipline as `faults::FaultPlan`:
//! no shared stream, no wall clock, so the same fleet is hostile in the
//! same way on every worker, shard, process and transport.
//!
//! Personas act entirely on the client side of the round exchange:
//!
//! * **Poisoner** — trains honestly, then uploads
//!   `global − strength·(trained − global) + noise`: the negated update
//!   plus seeded uniform noise, the classic sign-flip model-poisoning
//!   attack.
//! * **Scaler** — uploads `global + boost·(trained − global)`, the
//!   boosted-update (model replacement) attack.
//! * **Free-rider** — skips training entirely and echoes the downloaded
//!   global weights back, claiming a full cycle's samples.
//! * **Colluder** — trains honestly (so colluding fleets stay
//!   bit-identical across process boundaries) but records every global
//!   snapshot it observes into a shared [`CollusionLog`], which
//!   fleet-scale membership-inference harnesses in `gradsec_attacks`
//!   consume after the run.
//!
//! The server-side defenses live next door: robust aggregation in
//! [`crate::aggregate`] ([`crate::Aggregator`]) and per-client
//! [`ReputationBook`] scores accumulated from round outcomes and fed
//! back into selection.
//!
//! **Determinism.** Persona assignment and every poisoner noise draw
//! key on `(seed, salt, client, round)` through
//! [`crate::faults::decision_rng`]'s SplitMix64 mix. Nothing here
//! touches the server's selection/screening RNG stream — asserted by
//! `clean_fleet_consumes_no_server_rng` in the runner tests.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tensor::Tensor;

use crate::faults::decision_rng;
use crate::message::{need, Wire};
use crate::{FlError, Result};

/// Domain-separation salts for adversary decisions, disjoint from the
/// fault salts so a hostile fleet and a faulty fleet never correlate.
const SALT_PERSONA: u64 = 0x5045_5253_4F4E_4131; // "PERSONA1"
const SALT_POISON: u64 = 0x504F_4953_4F4E_5231; // "POISONR1"

/// The behavior a hostile client exhibits for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Persona {
    /// Sign-flips its update and adds seeded uniform noise.
    Poisoner,
    /// Boosts its update by a large factor (model replacement).
    Scaler,
    /// Skips training and echoes the global model back.
    FreeRider,
    /// Trains honestly but records global snapshots for offline
    /// membership-inference analysis.
    Colluder,
}

impl Persona {
    /// Short stable name, used in reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Persona::Poisoner => "poisoner",
            Persona::Scaler => "scaler",
            Persona::FreeRider => "free-rider",
            Persona::Colluder => "colluder",
        }
    }
}

/// The full adversarial scenario of one federation run: which fraction
/// of the fleet is hostile, in what mix, and how strongly.
///
/// Follows the `FaultPlan` pattern: seeded constructor, chained
/// `#[must_use]` knobs, [`validate`](Self::validate) called at assembly,
/// and a [`Wire`] impl so distributed shard processes re-derive the
/// exact same personas from the `ShardConfig`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    seed: u64,
    poisoners: f64,
    scalers: f64,
    free_riders: f64,
    colluders: f64,
    poison_strength: f32,
    poison_noise: f32,
    scale_boost: f32,
}

impl AdversaryPlan {
    /// A quiet plan (no hostile clients) under `seed`, with default
    /// attack strengths: poison strength 1 (pure sign flip), poison
    /// noise 0.1, scale boost 8.
    pub fn seeded(seed: u64) -> Self {
        AdversaryPlan {
            seed,
            poisoners: 0.0,
            scalers: 0.0,
            free_riders: 0.0,
            colluders: 0.0,
            poison_strength: 1.0,
            poison_noise: 0.1,
            scale_boost: 8.0,
        }
    }

    /// Fraction of the fleet assigned [`Persona::Poisoner`].
    #[must_use]
    pub fn poisoners(mut self, fraction: f64) -> Self {
        self.poisoners = fraction;
        self
    }

    /// Fraction of the fleet assigned [`Persona::Scaler`].
    #[must_use]
    pub fn scalers(mut self, fraction: f64) -> Self {
        self.scalers = fraction;
        self
    }

    /// Fraction of the fleet assigned [`Persona::FreeRider`].
    #[must_use]
    pub fn free_riders(mut self, fraction: f64) -> Self {
        self.free_riders = fraction;
        self
    }

    /// Fraction of the fleet assigned [`Persona::Colluder`].
    #[must_use]
    pub fn colluders(mut self, fraction: f64) -> Self {
        self.colluders = fraction;
        self
    }

    /// Multiplier on the negated update a poisoner uploads.
    #[must_use]
    pub fn poison_strength(mut self, strength: f32) -> Self {
        self.poison_strength = strength;
        self
    }

    /// Half-width of the uniform noise a poisoner adds per coefficient.
    #[must_use]
    pub fn poison_noise(mut self, noise: f32) -> Self {
        self.poison_noise = noise;
        self
    }

    /// Multiplier on the update a scaler uploads.
    #[must_use]
    pub fn scale_boost(mut self, boost: f32) -> Self {
        self.scale_boost = boost;
        self
    }

    /// The scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when no persona fraction is positive — the plan changes
    /// nothing about the run.
    pub fn is_quiet(&self) -> bool {
        self.poisoners == 0.0
            && self.scalers == 0.0
            && self.free_riders == 0.0
            && self.colluders == 0.0
    }

    /// Checks every knob is in range.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for fractions outside `[0, 1]`, a
    /// mix summing past 1, or non-finite strengths.
    pub fn validate(&self) -> Result<()> {
        for (name, f) in [
            ("poisoners", self.poisoners),
            ("scalers", self.scalers),
            ("free_riders", self.free_riders),
            ("colluders", self.colluders),
        ] {
            if !(0.0..=1.0).contains(&f) || f.is_nan() {
                return Err(FlError::BadConfig {
                    reason: format!("{name} fraction must be in [0, 1], got {f}"),
                });
            }
        }
        let total = self.poisoners + self.scalers + self.free_riders + self.colluders;
        if total > 1.0 {
            return Err(FlError::BadConfig {
                reason: format!("persona fractions sum to {total} > 1"),
            });
        }
        for (name, v) in [
            ("poison_strength", self.poison_strength),
            ("poison_noise", self.poison_noise),
            ("scale_boost", self.scale_boost),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(FlError::BadConfig {
                    reason: format!("{name} must be finite and >= 0, got {v}"),
                });
            }
        }
        Ok(())
    }

    /// The persona of `client`, or `None` for an honest client — a pure
    /// function of `(seed, client)`, identical on every worker, shard,
    /// process and transport.
    pub fn persona_of(&self, client: u64) -> Option<Persona> {
        if self.is_quiet() {
            return None;
        }
        let u: f64 = decision_rng(self.seed, SALT_PERSONA, client, 0).random();
        let mut edge = self.poisoners;
        if u < edge {
            return Some(Persona::Poisoner);
        }
        edge += self.scalers;
        if u < edge {
            return Some(Persona::Scaler);
        }
        edge += self.free_riders;
        if u < edge {
            return Some(Persona::FreeRider);
        }
        edge += self.colluders;
        if u < edge {
            return Some(Persona::Colluder);
        }
        None
    }

    /// The ids of all hostile clients in a fleet of `n`.
    pub fn hostile_in(&self, n: u64) -> Vec<u64> {
        (0..n).filter(|&c| self.persona_of(c).is_some()).collect()
    }

    /// The poisoned weights `client` uploads in `round`:
    /// `global − strength·(trained − global) + noise`, where the noise
    /// is per-coefficient uniform in `[−noise, noise)` drawn from a
    /// private `(seed, client, round)` RNG.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Nn`] if `trained` and `global` disagree on
    /// architecture.
    pub fn poisoned(
        &self,
        client: u64,
        round: u64,
        global: &ModelWeights,
        trained: &ModelWeights,
    ) -> Result<ModelWeights> {
        let mut out = global.clone();
        out.add_scaled(global, self.poison_strength)?;
        out.add_scaled(trained, -self.poison_strength)?;
        if self.poison_noise > 0.0 {
            let mut rng = decision_rng(self.seed, SALT_POISON, client, round);
            let noise = uniform_like(global, &mut rng, self.poison_noise);
            out.add_scaled(&noise, 1.0)?;
        }
        Ok(out)
    }

    /// The boosted weights a scaler uploads:
    /// `global + boost·(trained − global)`.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Nn`] if `trained` and `global` disagree on
    /// architecture.
    pub fn scaled(&self, global: &ModelWeights, trained: &ModelWeights) -> Result<ModelWeights> {
        let mut out = global.clone();
        out.scale(1.0 - self.scale_boost);
        out.add_scaled(trained, self.scale_boost)?;
        Ok(out)
    }
}

/// Weights shaped like `like` with every coefficient uniform in
/// `[−width, width)`, drawn in canonical layer order (w then b).
fn uniform_like(like: &ModelWeights, rng: &mut StdRng, width: f32) -> ModelWeights {
    let mut draw = |dims: &[usize]| {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|_| {
                let u: f32 = rng.random();
                (2.0 * u - 1.0) * width
            })
            .collect();
        Tensor::from_vec(data, dims).expect("noise tensor mirrors an existing shape")
    };
    ModelWeights::new(
        like.iter()
            .map(|l| LayerWeights {
                w: draw(l.w.dims()),
                b: draw(l.b.dims()),
            })
            .collect(),
    )
}

impl Wire for AdversaryPlan {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.seed);
        buf.put_f64_le(self.poisoners);
        buf.put_f64_le(self.scalers);
        buf.put_f64_le(self.free_riders);
        buf.put_f64_le(self.colluders);
        buf.put_f32_le(self.poison_strength);
        buf.put_f32_le(self.poison_noise);
        buf.put_f32_le(self.scale_boost);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8 + 4 * 8 + 3 * 4, "adversary plan")?;
        let plan = AdversaryPlan {
            seed: buf.get_u64_le(),
            poisoners: buf.get_f64_le(),
            scalers: buf.get_f64_le(),
            free_riders: buf.get_f64_le(),
            colluders: buf.get_f64_le(),
            poison_strength: buf.get_f32_le(),
            poison_noise: buf.get_f32_le(),
            scale_boost: buf.get_f32_le(),
        };
        plan.validate()?;
        Ok(plan)
    }
}

/// The view a client's adversarial behavior needs at cycle time: its
/// persona, the scenario knobs, and (for colluders assembled in the
/// coordinator process) the shared observation log.
#[derive(Debug, Clone)]
pub struct Adversary {
    /// This client's persona.
    pub persona: Persona,
    /// The scenario configuration.
    pub plan: Arc<AdversaryPlan>,
    /// Where colluders record global snapshots. `None` in shard-server
    /// processes — collusion records are an in-process observability
    /// artifact, never part of the round exchange, so their absence
    /// cannot perturb bit-identity.
    pub log: Option<Arc<CollusionLog>>,
}

#[derive(Debug, Default)]
struct CollusionRecords {
    colluders: BTreeSet<u64>,
    snapshots: BTreeMap<u64, ModelWeights>,
}

/// What a colluding coalition observed: which clients colluded and the
/// global model snapshot of every round any colluder participated in.
///
/// Keyed structures are ordered maps, so the recorded content is
/// independent of worker interleaving. Fleet-scale MIA harnesses in
/// `gradsec_attacks` consume the snapshot sequence after the run.
#[derive(Debug, Default)]
pub struct CollusionLog {
    inner: Mutex<CollusionRecords>,
}

impl CollusionLog {
    /// Records that `client` observed `global` in `round`.
    pub fn observe(&self, client: u64, round: u64, global: &ModelWeights) {
        let mut inner = self.inner.lock().expect("collusion log poisoned");
        inner.colluders.insert(client);
        inner
            .snapshots
            .entry(round)
            .or_insert_with(|| global.clone());
    }

    /// The colluding client ids seen so far, ascending.
    pub fn colluders(&self) -> Vec<u64> {
        let inner = self.inner.lock().expect("collusion log poisoned");
        inner.colluders.iter().copied().collect()
    }

    /// The observed `(round, global weights)` snapshots, round-ascending.
    pub fn snapshots(&self) -> Vec<(u64, ModelWeights)> {
        let inner = self.inner.lock().expect("collusion log poisoned");
        inner
            .snapshots
            .iter()
            .map(|(&r, w)| (r, w.clone()))
            .collect()
    }

    /// Number of distinct rounds observed.
    pub fn rounds_observed(&self) -> usize {
        self.inner
            .lock()
            .expect("collusion log poisoned")
            .snapshots
            .len()
    }
}

/// Per-client reputation accumulated from round outcomes and fed back
/// into selection: completing a round earns a point, straggling or
/// failing loses one, and clients whose score sinks below the threshold
/// are filtered from the eligible set *before* the selection shuffle —
/// the filter is a deterministic `retain`, so enabling reputation never
/// consumes extra RNG from the server stream.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReputationBook {
    threshold: i64,
    scores: BTreeMap<u64, i64>,
}

impl ReputationBook {
    /// An empty book: clients start at score 0 and stay eligible while
    /// their score is at least `threshold` (so a threshold of, say, −2
    /// tolerates two bad rounds before exclusion).
    pub fn new(threshold: i64) -> Self {
        ReputationBook {
            threshold,
            scores: BTreeMap::new(),
        }
    }

    /// The exclusion threshold.
    pub fn threshold(&self) -> i64 {
        self.threshold
    }

    /// `client`'s current score (0 if never seen).
    pub fn score(&self, client: u64) -> i64 {
        self.scores.get(&client).copied().unwrap_or(0)
    }

    /// Rewards `client` for completing a round.
    pub fn credit(&mut self, client: u64) {
        *self.scores.entry(client).or_insert(0) += 1;
    }

    /// Penalizes `client` for straggling or failing a round.
    pub fn debit(&mut self, client: u64) {
        *self.scores.entry(client).or_insert(0) -= 1;
    }

    /// Whether `client` may still be selected.
    pub fn eligible(&self, client: u64) -> bool {
        self.score(client) >= self.threshold
    }

    /// Number of clients with a recorded score.
    pub fn tracked(&self) -> usize {
        self.scores.len()
    }

    /// Applies one round of outcome feedback: every completing client
    /// is credited, every shed client debited, and every tracked client
    /// the round did *not* touch decays toward zero (`s ← s·3/4`,
    /// truncating toward zero, entries reaching zero forgotten).
    ///
    /// Decaying only the untouched keeps both halves of the feature
    /// honest: a device that churned away (or was excluded and is never
    /// selected again) sheds its debt within a few rounds and becomes
    /// eligible once more, while a persistent straggler — debited every
    /// round it appears in — never decays and stays below threshold.
    /// Decaying everyone each round would instead let an always-bad
    /// client oscillate around the threshold (truncation pulls `−1`
    /// back to `0` between debits) and erode earned credit.
    pub fn note_round(&mut self, completed: &[u64], shed: &[u64]) {
        for &c in completed {
            self.credit(c);
        }
        for &c in shed {
            self.debit(c);
        }
        self.scores.retain(|c, s| {
            if !completed.contains(c) && !shed.contains(c) {
                *s = *s * 3 / 4;
            }
            *s != 0
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(v: f32) -> ModelWeights {
        ModelWeights::new(vec![LayerWeights {
            w: Tensor::full(&[2, 2], v),
            b: Tensor::full(&[2], v),
        }])
    }

    #[test]
    fn persona_assignment_is_pure_and_respects_fractions() {
        let plan = AdversaryPlan::seeded(9).poisoners(0.2).colluders(0.1);
        let n = 4000u64;
        let first: Vec<_> = (0..n).map(|c| plan.persona_of(c)).collect();
        let second: Vec<_> = (0..n).map(|c| plan.persona_of(c)).collect();
        assert_eq!(first, second);
        let poisoners = first
            .iter()
            .filter(|p| **p == Some(Persona::Poisoner))
            .count();
        let colluders = first
            .iter()
            .filter(|p| **p == Some(Persona::Colluder))
            .count();
        let frac = poisoners as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.03, "poisoner fraction {frac}");
        let frac = colluders as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.03, "colluder fraction {frac}");
        assert!(AdversaryPlan::seeded(9).persona_of(3).is_none());
    }

    #[test]
    fn different_seeds_pick_different_hostile_sets() {
        let a = AdversaryPlan::seeded(1).poisoners(0.3);
        let b = AdversaryPlan::seeded(2).poisoners(0.3);
        assert_ne!(a.hostile_in(256), b.hostile_in(256));
    }

    #[test]
    fn poisoned_flips_the_update_deterministically() {
        let plan = AdversaryPlan::seeded(7).poisoners(1.0).poison_noise(0.0);
        let global = weights(1.0);
        let trained = weights(1.5);
        let poisoned = plan.poisoned(0, 0, &global, &trained).unwrap();
        for l in poisoned.iter() {
            for &x in l.w.data() {
                assert!((x - 0.5).abs() < 1e-6, "expected 1 - 0.5 = 0.5, got {x}");
            }
        }
        let noisy = AdversaryPlan::seeded(7).poisoners(1.0).poison_noise(0.2);
        let a = noisy.poisoned(3, 5, &global, &trained).unwrap();
        let b = noisy.poisoned(3, 5, &global, &trained).unwrap();
        assert_eq!(a, b);
        let other_round = noisy.poisoned(3, 6, &global, &trained).unwrap();
        assert_ne!(a, other_round);
    }

    #[test]
    fn scaled_boosts_the_update() {
        let plan = AdversaryPlan::seeded(7).scalers(1.0).scale_boost(10.0);
        let global = weights(1.0);
        let trained = weights(1.1);
        let scaled = plan.scaled(&global, &trained).unwrap();
        for l in scaled.iter() {
            for &x in l.w.data() {
                assert!((x - 2.0).abs() < 1e-4, "expected 1 + 10*0.1 = 2, got {x}");
            }
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(AdversaryPlan::seeded(0).poisoners(1.5).validate().is_err());
        assert!(AdversaryPlan::seeded(0)
            .poisoners(0.6)
            .scalers(0.6)
            .validate()
            .is_err());
        assert!(AdversaryPlan::seeded(0)
            .poison_strength(f32::NAN)
            .validate()
            .is_err());
        assert!(AdversaryPlan::seeded(0)
            .poisoners(0.2)
            .scalers(0.1)
            .validate()
            .is_ok());
    }

    #[test]
    fn plan_round_trips_on_the_wire() {
        let plan = AdversaryPlan::seeded(42)
            .poisoners(0.25)
            .scalers(0.05)
            .free_riders(0.1)
            .colluders(0.1)
            .poison_strength(2.0)
            .poison_noise(0.05)
            .scale_boost(16.0);
        let mut buf = BytesMut::new();
        plan.encode_into(&mut buf);
        let mut bytes = buf.freeze();
        let back = AdversaryPlan::decode_from(&mut bytes).unwrap();
        assert_eq!(plan, back);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn collusion_log_is_order_independent() {
        let log = CollusionLog::default();
        log.observe(5, 1, &weights(1.0));
        log.observe(2, 0, &weights(0.5));
        log.observe(5, 0, &weights(0.5));
        assert_eq!(log.colluders(), vec![2, 5]);
        assert_eq!(log.rounds_observed(), 2);
        let snaps = log.snapshots();
        assert_eq!(snaps[0].0, 0);
        assert_eq!(snaps[1].0, 1);
    }

    #[test]
    fn reputation_filters_after_threshold() {
        let mut book = ReputationBook::new(-2);
        assert!(book.eligible(7));
        book.debit(7);
        book.debit(7);
        assert!(book.eligible(7));
        book.debit(7);
        assert!(!book.eligible(7));
        book.credit(7);
        assert!(book.eligible(7));
        assert_eq!(book.score(7), -2);
        assert_eq!(book.tracked(), 1);
    }

    #[test]
    fn churned_device_decays_back_to_eligible() {
        // A device that straggled below threshold, then disappeared
        // (never selected again, so never touched by an outcome),
        // sheds its debt over a few rounds and regains eligibility.
        let mut book = ReputationBook::new(-2);
        for _ in 0..4 {
            book.note_round(&[], &[7]);
        }
        assert_eq!(book.score(7), -4);
        assert!(!book.eligible(7));
        let mut rounds = 0;
        while !book.eligible(7) {
            book.note_round(&[1], &[]); // other clients' round; 7 untouched
            rounds += 1;
            assert!(rounds < 16, "client 7 never recovered");
        }
        // −4 → −3 → −2: two decay rounds reach the −2 threshold.
        assert_eq!(rounds, 2);
        // Left alone, the debt is fully forgotten and the entry dropped.
        book.note_round(&[1], &[]);
        book.note_round(&[1], &[]);
        assert_eq!(book.score(7), 0);
        assert!(!book.scores.contains_key(&7), "zero score not forgotten");
    }

    #[test]
    fn persistent_straggler_never_decays_free() {
        // A client shed every round it appears in is touched every
        // round, so decay never applies: it crosses the threshold and
        // stays below it no matter how long the federation runs.
        let mut book = ReputationBook::new(-2);
        for round in 0..20 {
            book.note_round(&[1, 2], &[7]);
            if round >= 2 {
                assert!(!book.eligible(7), "straggler escaped at round {round}");
            }
        }
        assert_eq!(book.score(7), -20);
        // Completing clients keep their earned credit while active.
        assert_eq!(book.score(1), 20);
    }

    #[test]
    fn decay_erodes_idle_credit_toward_zero() {
        // Earned credit is not a permanent shield: a formerly-good
        // client that stops participating drifts back to the neutral
        // score instead of banking goodwill forever.
        let mut book = ReputationBook::new(-2);
        for _ in 0..5 {
            book.note_round(&[7], &[]);
        }
        assert_eq!(book.score(7), 5);
        for _ in 0..8 {
            book.note_round(&[1], &[]);
        }
        assert_eq!(book.score(7), 0);
        assert!(book.eligible(7));
    }
}
