//! FedAvg aggregation (Figure 2-➍), flat or sharded.
//!
//! Two entry points share one canonical fold:
//!
//! * [`fedavg`] — the classic slice-in, weights-out aggregation over one
//!   round's updates in selection order.
//! * [`PartialAggregate`] — the sharded path. Each engine shard packs its
//!   updates into a partial tagged with their *global selection slots*;
//!   partials [`merge`](PartialAggregate::merge) exactly (list
//!   concatenation plus integer sample counts — no floating point), and
//!   [`finish`](PartialAggregate::finish) restores canonical slot order
//!   before running the very same fold `fedavg` runs.
//!
//! That split is what makes the merge *associativity-safe*: f32 addition
//! is not associative, so summing per-shard weight averages would make the
//! global model depend on the shard layout. By deferring every
//! floating-point operation to the canonically-ordered finish, any
//! grouping of updates into partials — 1 shard or 64, merged in any order
//! — produces bit-identical global weights.

use gradsec_nn::model::ModelWeights;

use crate::message::UpdateUpload;
use crate::{FlError, Result};

/// The canonical FedAvg fold: sample-weighted averaging of the updates'
/// post-training weights, accumulated strictly in iteration order. Both
/// [`fedavg`] and [`PartialAggregate::finish`] bottom out here, so the
/// flat and sharded paths cannot drift apart numerically.
fn fold_updates<'a, I>(mut updates: I, total: usize) -> Result<ModelWeights>
where
    I: Iterator<Item = &'a UpdateUpload>,
{
    if total == 0 {
        return Err(FlError::BadAggregation {
            reason: "total sample count is zero".to_owned(),
        });
    }
    let first = updates.next().ok_or_else(|| FlError::BadAggregation {
        reason: "no updates to aggregate".to_owned(),
    })?;
    let mut acc = first.weights.clone();
    acc.scale(first.num_samples as f32 / total as f32);
    for u in updates {
        acc.add_scaled(&u.weights, u.num_samples as f32 / total as f32)
            .map_err(|e| FlError::BadAggregation {
                reason: format!("update from client {}: {e}", u.client_id),
            })?;
    }
    Ok(acc)
}

/// Combines client updates into the next global model by sample-weighted
/// averaging of their post-training weights (McMahan et al.'s FedAvg, the
/// aggregation the paper's server performs).
///
/// # Errors
///
/// Returns [`FlError::BadAggregation`] for an empty update set, a zero
/// total sample count, or architecture mismatches between updates.
pub fn fedavg(updates: &[UpdateUpload]) -> Result<ModelWeights> {
    if updates.is_empty() {
        return Err(FlError::BadAggregation {
            reason: "no updates to aggregate".to_owned(),
        });
    }
    let total: usize = updates.iter().map(|u| u.num_samples).sum();
    fold_updates(updates.iter(), total)
}

/// The finished global aggregate of one round.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateOutcome {
    /// The next global model.
    pub weights: ModelWeights,
    /// Mean training loss across the round's updates, in selection order
    /// (the round report's `mean_loss`).
    pub mean_loss: f32,
    /// Total samples the round trained on.
    pub total_samples: usize,
}

/// A shard's contribution to one round's aggregate: updates tagged with
/// their global selection slots, merged exactly and finished in canonical
/// order (see the module docs for why the fold is deferred).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartialAggregate {
    terms: Vec<(usize, UpdateUpload)>,
}

impl PartialAggregate {
    /// An empty partial.
    pub fn new() -> Self {
        PartialAggregate::default()
    }

    /// Adds one update at its global selection slot.
    pub fn push(&mut self, slot: usize, upload: UpdateUpload) {
        self.terms.push((slot, upload));
    }

    /// Folds another partial into this one. The merge is exact — pure
    /// list concatenation, no floating point — so it is associative and
    /// commutative by construction; ordering is restored at
    /// [`finish`](Self::finish).
    pub fn merge(&mut self, other: PartialAggregate) {
        self.terms.extend(other.terms);
    }

    /// The collected `(global slot, update)` terms, in push order (the
    /// canonical ordering happens at [`finish`](Self::finish), not here).
    /// This is the view the wire codec serialises.
    pub fn terms(&self) -> &[(usize, UpdateUpload)] {
        &self.terms
    }

    /// Number of updates collected so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when no update has been collected.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total samples across the collected updates (exact integer
    /// arithmetic, so shard-layout independent).
    pub fn total_samples(&self) -> usize {
        self.terms.iter().map(|(_, u)| u.num_samples).sum()
    }

    /// Restores canonical slot order and runs the one FedAvg fold, plus
    /// the round's mean-loss reduction in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadAggregation`] for an empty partial, duplicate
    /// slots (one update per selected client), a zero total sample count,
    /// or architecture mismatches.
    pub fn finish(mut self) -> Result<AggregateOutcome> {
        if self.terms.is_empty() {
            return Err(FlError::BadAggregation {
                reason: "no updates to aggregate".to_owned(),
            });
        }
        self.terms.sort_by_key(|(slot, _)| *slot);
        if let Some(w) = self.terms.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(FlError::BadAggregation {
                reason: format!("two updates claim selection slot {}", w[0].0),
            });
        }
        let total = self.total_samples();
        let weights = fold_updates(self.terms.iter().map(|(_, u)| u), total)?;
        let mean_loss = self.terms.iter().map(|(_, u)| u.train_loss).sum::<f32>()
            / self.terms.len().max(1) as f32;
        Ok(AggregateOutcome {
            weights,
            mean_loss,
            total_samples: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_nn::model::LayerWeights;
    use gradsec_tensor::Tensor;

    fn upload(client: u64, value: f32, samples: usize) -> UpdateUpload {
        UpdateUpload {
            client_id: client,
            round: 0,
            weights: ModelWeights::new(vec![LayerWeights {
                w: Tensor::full(&[2], value),
                b: Tensor::full(&[1], value),
            }]),
            num_samples: samples,
            train_loss: 0.0,
            cost: Default::default(),
        }
    }

    #[test]
    fn equal_weights_average() {
        let g = fedavg(&[upload(0, 1.0, 10), upload(1, 3.0, 10)]).unwrap();
        assert!(g
            .layer(0)
            .unwrap()
            .w
            .approx_eq(&Tensor::full(&[2], 2.0), 1e-6));
    }

    #[test]
    fn sample_weighting() {
        // 1.0 with 30 samples, 5.0 with 10 samples -> (30·1 + 10·5)/40 = 2.
        let g = fedavg(&[upload(0, 1.0, 30), upload(1, 5.0, 10)]).unwrap();
        assert!(g
            .layer(0)
            .unwrap()
            .w
            .approx_eq(&Tensor::full(&[2], 2.0), 1e-6));
    }

    #[test]
    fn single_update_is_identity() {
        let u = upload(0, 7.0, 5);
        let g = fedavg(std::slice::from_ref(&u)).unwrap();
        assert_eq!(g, u.weights);
    }

    #[test]
    fn rejects_empty_and_zero_samples() {
        assert!(fedavg(&[]).is_err());
        assert!(fedavg(&[upload(0, 1.0, 0)]).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let a = upload(0, 1.0, 10);
        let mut b = upload(1, 1.0, 10);
        b.weights = ModelWeights::new(vec![
            LayerWeights {
                w: Tensor::zeros(&[2]),
                b: Tensor::zeros(&[1]),
            },
            LayerWeights {
                w: Tensor::zeros(&[2]),
                b: Tensor::zeros(&[1]),
            },
        ]);
        assert!(fedavg(&[a, b]).is_err());
    }

    /// Awkwardly-weighted f32 values that would expose any reordering of
    /// the fold if the partial path regrouped the sums.
    fn awkward_uploads() -> Vec<UpdateUpload> {
        [0.1f32, 0.7, 1e-3, 3.33, 0.2, 5.5, 0.9, 1e4]
            .iter()
            .enumerate()
            .map(|(i, &v)| upload(i as u64, v, 3 * i + 1))
            .collect()
    }

    #[test]
    fn partial_aggregate_is_bit_identical_to_fedavg_for_any_grouping() {
        let updates = awkward_uploads();
        let want = fedavg(&updates).unwrap();
        // Every contiguous two-way split, merged both ways.
        for cut in 0..=updates.len() {
            for swap in [false, true] {
                let mut left = PartialAggregate::new();
                let mut right = PartialAggregate::new();
                for (slot, u) in updates.iter().enumerate() {
                    let p = if slot < cut { &mut left } else { &mut right };
                    p.push(slot, u.clone());
                }
                let mut merged = PartialAggregate::new();
                if swap {
                    merged.merge(right);
                    merged.merge(left);
                } else {
                    merged.merge(left);
                    merged.merge(right);
                }
                let out = merged.finish().unwrap();
                assert_eq!(out.weights, want, "cut {cut} swap {swap} diverged");
            }
        }
    }

    #[test]
    fn partial_aggregate_reports_loss_and_samples_in_slot_order() {
        let mut updates = awkward_uploads();
        for (i, u) in updates.iter_mut().enumerate() {
            u.train_loss = i as f32;
        }
        let flat_loss =
            updates.iter().map(|u| u.train_loss).sum::<f32>() / updates.len().max(1) as f32;
        let mut agg = PartialAggregate::new();
        // Push in reverse — finish must restore slot order.
        for (slot, u) in updates.iter().enumerate().rev() {
            agg.push(slot, u.clone());
        }
        assert_eq!(agg.len(), updates.len());
        let out = agg.finish().unwrap();
        assert_eq!(out.weights, fedavg(&updates).unwrap());
        assert_eq!(out.mean_loss, flat_loss);
        assert_eq!(
            out.total_samples,
            updates.iter().map(|u| u.num_samples).sum::<usize>()
        );
    }

    #[test]
    fn partial_aggregate_rejects_empty_and_duplicate_slots() {
        assert!(PartialAggregate::new().finish().is_err());
        let mut agg = PartialAggregate::new();
        agg.push(0, upload(0, 1.0, 4));
        agg.push(0, upload(1, 2.0, 4));
        let err = agg.finish().unwrap_err();
        assert!(err.to_string().contains("selection slot"), "{err}");
    }
}
