//! FedAvg aggregation (Figure 2-➍), flat or sharded.
//!
//! Two entry points share one canonical fold:
//!
//! * [`fedavg`] — the classic slice-in, weights-out aggregation over one
//!   round's updates in selection order.
//! * [`PartialAggregate`] — the sharded path. Each engine shard packs its
//!   updates into a partial tagged with their *global selection slots*;
//!   partials [`merge`](PartialAggregate::merge) exactly (list
//!   concatenation plus integer sample counts — no floating point), and
//!   [`finish`](PartialAggregate::finish) restores canonical slot order
//!   before running the very same fold `fedavg` runs.
//!
//! That split is what makes the merge *associativity-safe*: f32 addition
//! is not associative, so summing per-shard weight averages would make the
//! global model depend on the shard layout. By deferring every
//! floating-point operation to the canonically-ordered finish, any
//! grouping of updates into partials — 1 shard or 64, merged in any order
//! — produces bit-identical global weights.

use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tensor::Tensor;

use crate::message::UpdateUpload;
use crate::{FlError, Result};

/// The aggregation rule a round commits with. [`FedAvg`](Self::FedAvg)
/// is the paper's sample-weighted average; the robust variants are the
/// standard Byzantine-tolerant estimators evaluated against hostile
/// fleets ([`crate::adversary`]):
///
/// * [`TrimmedMean`](Self::TrimmedMean) — coordinate-wise mean after
///   dropping the `trim` lowest and highest values per coordinate
///   (Yin et al.); `trim = 0` delegates *literally* to the FedAvg fold,
///   so the two agree bit-for-bit.
/// * [`Median`](Self::Median) — coordinate-wise median (even counts
///   average the two middle values).
/// * [`NormClip`](Self::NormClip) — clips each update's delta from the
///   previous global model to L2 norm `tau`, then sample-weighted
///   FedAvg over the clipped updates.
///
/// The choice is coordinator-side state: it never crosses the wire, so
/// every execution path (flat, sharded, distributed) aggregates with
/// the one rule configured on the builder.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Aggregator {
    /// Sample-weighted averaging (the default).
    #[default]
    FedAvg,
    /// Coordinate-wise trimmed mean, unweighted.
    TrimmedMean {
        /// How many extremes to drop per side, per coordinate.
        trim: usize,
    },
    /// Coordinate-wise median, unweighted.
    Median,
    /// Per-update L2 delta clipping followed by FedAvg.
    NormClip {
        /// Maximum L2 norm of an update's delta from the previous
        /// global model.
        tau: f32,
    },
}

impl Aggregator {
    /// Short stable name for reports and bench rows.
    pub fn name(&self) -> String {
        match self {
            Aggregator::FedAvg => "fedavg".to_owned(),
            Aggregator::TrimmedMean { trim } => format!("trimmed-mean({trim})"),
            Aggregator::Median => "median".to_owned(),
            Aggregator::NormClip { tau } => format!("norm-clip({tau})"),
        }
    }

    /// Checks the rule's parameters are usable.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for a non-finite or non-positive
    /// clipping norm.
    pub fn validate(&self) -> Result<()> {
        if let Aggregator::NormClip { tau } = self {
            if !tau.is_finite() || *tau <= 0.0 {
                return Err(FlError::BadConfig {
                    reason: format!("norm-clip tau must be finite and positive, got {tau}"),
                });
            }
        }
        Ok(())
    }
}

/// The canonical FedAvg fold: sample-weighted averaging of the updates'
/// post-training weights, accumulated strictly in iteration order. Both
/// [`fedavg`] and [`PartialAggregate::finish`] bottom out here, so the
/// flat and sharded paths cannot drift apart numerically.
fn fold_updates<'a, I>(mut updates: I, total: usize) -> Result<ModelWeights>
where
    I: Iterator<Item = &'a UpdateUpload>,
{
    if total == 0 {
        return Err(FlError::BadAggregation {
            reason: "total sample count is zero".to_owned(),
        });
    }
    let first = updates.next().ok_or_else(|| FlError::BadAggregation {
        reason: "no updates to aggregate".to_owned(),
    })?;
    let mut acc = first.weights.clone();
    acc.scale(first.num_samples as f32 / total as f32);
    for u in updates {
        acc.add_scaled(&u.weights, u.num_samples as f32 / total as f32)
            .map_err(|e| FlError::BadAggregation {
                reason: format!("update from client {}: {e}", u.client_id),
            })?;
    }
    Ok(acc)
}

/// Combines client updates into the next global model by sample-weighted
/// averaging of their post-training weights (McMahan et al.'s FedAvg, the
/// aggregation the paper's server performs).
///
/// # Errors
///
/// Returns [`FlError::BadAggregation`] for an empty update set, a zero
/// total sample count, or architecture mismatches between updates.
pub fn fedavg(updates: &[UpdateUpload]) -> Result<ModelWeights> {
    if updates.is_empty() {
        return Err(FlError::BadAggregation {
            reason: "no updates to aggregate".to_owned(),
        });
    }
    let total: usize = updates.iter().map(|u| u.num_samples).sum();
    fold_updates(updates.iter(), total)
}

/// The finished global aggregate of one round.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateOutcome {
    /// The next global model.
    pub weights: ModelWeights,
    /// Mean training loss across the round's updates, in selection order
    /// (the round report's `mean_loss`).
    pub mean_loss: f32,
    /// Total samples the round trained on.
    pub total_samples: usize,
}

/// A shard's contribution to one round's aggregate: updates tagged with
/// their global selection slots, merged exactly and finished in canonical
/// order (see the module docs for why the fold is deferred).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartialAggregate {
    terms: Vec<(usize, UpdateUpload)>,
}

impl PartialAggregate {
    /// An empty partial.
    pub fn new() -> Self {
        PartialAggregate::default()
    }

    /// Adds one update at its global selection slot.
    pub fn push(&mut self, slot: usize, upload: UpdateUpload) {
        self.terms.push((slot, upload));
    }

    /// Folds another partial into this one. The merge is exact — pure
    /// list concatenation, no floating point — so it is associative and
    /// commutative by construction; ordering is restored at
    /// [`finish`](Self::finish).
    pub fn merge(&mut self, other: PartialAggregate) {
        self.terms.extend(other.terms);
    }

    /// The collected `(global slot, update)` terms, in push order (the
    /// canonical ordering happens at [`finish`](Self::finish), not here).
    /// This is the view the wire codec serialises.
    pub fn terms(&self) -> &[(usize, UpdateUpload)] {
        &self.terms
    }

    /// Number of updates collected so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when no update has been collected.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total samples across the collected updates (exact integer
    /// arithmetic, so shard-layout independent).
    pub fn total_samples(&self) -> usize {
        self.terms.iter().map(|(_, u)| u.num_samples).sum()
    }

    /// Restores canonical slot order and runs the one FedAvg fold, plus
    /// the round's mean-loss reduction in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadAggregation`] for an empty partial, duplicate
    /// slots (one update per selected client), a zero total sample count,
    /// or architecture mismatches.
    pub fn finish(self) -> Result<AggregateOutcome> {
        self.finish_with(Aggregator::FedAvg, None)
    }

    /// Like [`finish`](Self::finish), but committing with an arbitrary
    /// [`Aggregator`]. `reference` is the previous global model, needed
    /// only by [`Aggregator::NormClip`] (the delta-clipping baseline);
    /// the other rules ignore it. `FedAvg` and `TrimmedMean { trim: 0 }`
    /// run *literally* the canonical FedAvg fold, so a robust run with
    /// no trimming is bit-identical to the plain path.
    ///
    /// # Errors
    ///
    /// Everything [`finish`](Self::finish) rejects, plus a trim that
    /// leaves no coordinates (`2·trim ≥ n`), a missing reference for
    /// norm clipping, and shape mismatches between updates.
    pub fn finish_with(
        mut self,
        aggregator: Aggregator,
        reference: Option<&ModelWeights>,
    ) -> Result<AggregateOutcome> {
        if self.terms.is_empty() {
            return Err(FlError::BadAggregation {
                reason: "no updates to aggregate".to_owned(),
            });
        }
        self.terms.sort_by_key(|(slot, _)| *slot);
        if let Some(w) = self.terms.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(FlError::BadAggregation {
                reason: format!("two updates claim selection slot {}", w[0].0),
            });
        }
        let total = self.total_samples();
        let n = self.terms.len();
        let weights = match aggregator {
            Aggregator::FedAvg | Aggregator::TrimmedMean { trim: 0 } => {
                fold_updates(self.terms.iter().map(|(_, u)| u), total)?
            }
            Aggregator::TrimmedMean { trim } => {
                if 2 * trim >= n {
                    return Err(FlError::BadAggregation {
                        reason: format!("trim {trim} leaves no values out of {n} updates"),
                    });
                }
                coordinate_reduce(
                    &self
                        .terms
                        .iter()
                        .map(|(_, u)| &u.weights)
                        .collect::<Vec<_>>(),
                    |vals| {
                        vals.sort_unstable_by(f32::total_cmp);
                        let kept = &vals[trim..vals.len() - trim];
                        kept.iter().sum::<f32>() / kept.len() as f32
                    },
                )?
            }
            Aggregator::Median => coordinate_reduce(
                &self
                    .terms
                    .iter()
                    .map(|(_, u)| &u.weights)
                    .collect::<Vec<_>>(),
                |vals| {
                    vals.sort_unstable_by(f32::total_cmp);
                    let mid = vals.len() / 2;
                    if vals.len() % 2 == 1 {
                        vals[mid]
                    } else {
                        0.5 * (vals[mid - 1] + vals[mid])
                    }
                },
            )?,
            Aggregator::NormClip { tau } => {
                aggregator.validate()?;
                let reference = reference.ok_or_else(|| FlError::BadAggregation {
                    reason: "norm clipping needs the previous global model as reference".to_owned(),
                })?;
                let clipped: Vec<UpdateUpload> = self
                    .terms
                    .iter()
                    .map(|(_, u)| {
                        let norm = delta_norm(&u.weights, reference)?;
                        if norm <= f64::from(tau) {
                            return Ok(u.clone());
                        }
                        let factor = f64::from(tau) / norm;
                        let mut w = reference.clone();
                        w.add_scaled(&u.weights, factor as f32)?;
                        w.add_scaled(reference, -(factor as f32))?;
                        let mut out = u.clone();
                        out.weights = w;
                        Ok(out)
                    })
                    .collect::<Result<_>>()?;
                fold_updates(clipped.iter(), total)?
            }
        };
        let mean_loss = self.terms.iter().map(|(_, u)| u.train_loss).sum::<f32>()
            / self.terms.len().max(1) as f32;
        Ok(AggregateOutcome {
            weights,
            mean_loss,
            total_samples: total,
        })
    }
}

/// The L2 norm of `w − reference` across all coordinates, accumulated
/// in f64 (a fixed, canonical order — deterministic regardless of
/// shard/worker layout since it runs on one update at a time).
fn delta_norm(w: &ModelWeights, reference: &ModelWeights) -> Result<f64> {
    if w.num_layers() != reference.num_layers() {
        return Err(FlError::BadAggregation {
            reason: "update and reference disagree on layer count".to_owned(),
        });
    }
    let mut sum = 0.0f64;
    for (a, b) in w.iter().zip(reference.iter()) {
        if a.w.dims() != b.w.dims() || a.b.dims() != b.b.dims() {
            return Err(FlError::BadAggregation {
                reason: "update and reference disagree on layer shapes".to_owned(),
            });
        }
        for (x, y) in a.w.data().iter().zip(b.w.data()) {
            let d = f64::from(x - y);
            sum += d * d;
        }
        for (x, y) in a.b.data().iter().zip(b.b.data()) {
            let d = f64::from(x - y);
            sum += d * d;
        }
    }
    Ok(sum.sqrt())
}

/// Applies `reduce` to every coordinate across the updates' weights:
/// for each position, the values from all updates land in a scratch
/// slice (in canonical slot order) and `reduce` folds them to the
/// output coefficient. All robust coordinate-wise estimators bottom
/// out here.
fn coordinate_reduce(
    ws: &[&ModelWeights],
    reduce: impl Fn(&mut [f32]) -> f32,
) -> Result<ModelWeights> {
    let first = ws.first().ok_or_else(|| FlError::BadAggregation {
        reason: "no updates to aggregate".to_owned(),
    })?;
    for w in &ws[1..] {
        if w.num_layers() != first.num_layers() {
            return Err(FlError::BadAggregation {
                reason: "updates disagree on layer count".to_owned(),
            });
        }
        for (a, b) in w.iter().zip(first.iter()) {
            if a.w.dims() != b.w.dims() || a.b.dims() != b.b.dims() {
                return Err(FlError::BadAggregation {
                    reason: "updates disagree on layer shapes".to_owned(),
                });
            }
        }
    }
    let mut scratch = vec![0.0f32; ws.len()];
    let mut layers = Vec::with_capacity(first.num_layers());
    for li in 0..first.num_layers() {
        let mut reduce_one = |pick: fn(&LayerWeights) -> &Tensor| -> Tensor {
            let template = pick(first.layer(li).expect("layer index"));
            let dims = template.dims().to_vec();
            let n = template.data().len();
            let data: Vec<f32> = (0..n)
                .map(|i| {
                    for (k, w) in ws.iter().enumerate() {
                        scratch[k] = pick(w.layer(li).expect("layer index")).data()[i];
                    }
                    reduce(&mut scratch)
                })
                .collect();
            Tensor::from_vec(data, &dims).expect("reduced tensor mirrors an existing shape")
        };
        let w = reduce_one(|l| &l.w);
        let b = reduce_one(|l| &l.b);
        layers.push(LayerWeights { w, b });
    }
    Ok(ModelWeights::new(layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_nn::model::LayerWeights;
    use gradsec_tensor::Tensor;

    fn upload(client: u64, value: f32, samples: usize) -> UpdateUpload {
        UpdateUpload {
            client_id: client,
            round: 0,
            weights: ModelWeights::new(vec![LayerWeights {
                w: Tensor::full(&[2], value),
                b: Tensor::full(&[1], value),
            }]),
            num_samples: samples,
            train_loss: 0.0,
            cost: Default::default(),
        }
    }

    #[test]
    fn equal_weights_average() {
        let g = fedavg(&[upload(0, 1.0, 10), upload(1, 3.0, 10)]).unwrap();
        assert!(g
            .layer(0)
            .unwrap()
            .w
            .approx_eq(&Tensor::full(&[2], 2.0), 1e-6));
    }

    #[test]
    fn sample_weighting() {
        // 1.0 with 30 samples, 5.0 with 10 samples -> (30·1 + 10·5)/40 = 2.
        let g = fedavg(&[upload(0, 1.0, 30), upload(1, 5.0, 10)]).unwrap();
        assert!(g
            .layer(0)
            .unwrap()
            .w
            .approx_eq(&Tensor::full(&[2], 2.0), 1e-6));
    }

    #[test]
    fn single_update_is_identity() {
        let u = upload(0, 7.0, 5);
        let g = fedavg(std::slice::from_ref(&u)).unwrap();
        assert_eq!(g, u.weights);
    }

    #[test]
    fn rejects_empty_and_zero_samples() {
        assert!(fedavg(&[]).is_err());
        assert!(fedavg(&[upload(0, 1.0, 0)]).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let a = upload(0, 1.0, 10);
        let mut b = upload(1, 1.0, 10);
        b.weights = ModelWeights::new(vec![
            LayerWeights {
                w: Tensor::zeros(&[2]),
                b: Tensor::zeros(&[1]),
            },
            LayerWeights {
                w: Tensor::zeros(&[2]),
                b: Tensor::zeros(&[1]),
            },
        ]);
        assert!(fedavg(&[a, b]).is_err());
    }

    /// Awkwardly-weighted f32 values that would expose any reordering of
    /// the fold if the partial path regrouped the sums.
    fn awkward_uploads() -> Vec<UpdateUpload> {
        [0.1f32, 0.7, 1e-3, 3.33, 0.2, 5.5, 0.9, 1e4]
            .iter()
            .enumerate()
            .map(|(i, &v)| upload(i as u64, v, 3 * i + 1))
            .collect()
    }

    #[test]
    fn partial_aggregate_is_bit_identical_to_fedavg_for_any_grouping() {
        let updates = awkward_uploads();
        let want = fedavg(&updates).unwrap();
        // Every contiguous two-way split, merged both ways.
        for cut in 0..=updates.len() {
            for swap in [false, true] {
                let mut left = PartialAggregate::new();
                let mut right = PartialAggregate::new();
                for (slot, u) in updates.iter().enumerate() {
                    let p = if slot < cut { &mut left } else { &mut right };
                    p.push(slot, u.clone());
                }
                let mut merged = PartialAggregate::new();
                if swap {
                    merged.merge(right);
                    merged.merge(left);
                } else {
                    merged.merge(left);
                    merged.merge(right);
                }
                let out = merged.finish().unwrap();
                assert_eq!(out.weights, want, "cut {cut} swap {swap} diverged");
            }
        }
    }

    #[test]
    fn partial_aggregate_reports_loss_and_samples_in_slot_order() {
        let mut updates = awkward_uploads();
        for (i, u) in updates.iter_mut().enumerate() {
            u.train_loss = i as f32;
        }
        let flat_loss =
            updates.iter().map(|u| u.train_loss).sum::<f32>() / updates.len().max(1) as f32;
        let mut agg = PartialAggregate::new();
        // Push in reverse — finish must restore slot order.
        for (slot, u) in updates.iter().enumerate().rev() {
            agg.push(slot, u.clone());
        }
        assert_eq!(agg.len(), updates.len());
        let out = agg.finish().unwrap();
        assert_eq!(out.weights, fedavg(&updates).unwrap());
        assert_eq!(out.mean_loss, flat_loss);
        assert_eq!(
            out.total_samples,
            updates.iter().map(|u| u.num_samples).sum::<usize>()
        );
    }

    fn collect(updates: &[UpdateUpload]) -> PartialAggregate {
        let mut agg = PartialAggregate::new();
        for (slot, u) in updates.iter().enumerate() {
            agg.push(slot, u.clone());
        }
        agg
    }

    #[test]
    fn trimmed_mean_drops_the_outlier() {
        // Three honest updates at ~1.0, one poisoned at -100.
        let updates = vec![
            upload(0, 1.0, 10),
            upload(1, 1.1, 10),
            upload(2, 0.9, 10),
            upload(3, -100.0, 10),
        ];
        let fed = collect(&updates).finish().unwrap();
        let trimmed = collect(&updates)
            .finish_with(Aggregator::TrimmedMean { trim: 1 }, None)
            .unwrap();
        let fed_val = fed.weights.layer(0).unwrap().w.data()[0];
        let trim_val = trimmed.weights.layer(0).unwrap().w.data()[0];
        assert!(
            fed_val < -20.0,
            "fedavg should be dragged down, got {fed_val}"
        );
        assert!(
            (trim_val - 1.0).abs() < 0.1,
            "trimmed mean held, got {trim_val}"
        );
    }

    #[test]
    fn median_resists_minority_outliers() {
        let updates = vec![upload(0, 1.0, 10), upload(1, 1.0, 10), upload(2, 500.0, 10)];
        let med = collect(&updates)
            .finish_with(Aggregator::Median, None)
            .unwrap();
        assert_eq!(med.weights.layer(0).unwrap().w.data()[0], 1.0);
        // Even count: average of the two middles.
        let updates = vec![upload(0, 1.0, 10), upload(1, 3.0, 10)];
        let med = collect(&updates)
            .finish_with(Aggregator::Median, None)
            .unwrap();
        assert_eq!(med.weights.layer(0).unwrap().w.data()[0], 2.0);
    }

    #[test]
    fn trim_zero_is_bit_identical_to_fedavg() {
        let updates = awkward_uploads();
        let fed = collect(&updates).finish().unwrap();
        let trim0 = collect(&updates)
            .finish_with(Aggregator::TrimmedMean { trim: 0 }, None)
            .unwrap();
        assert_eq!(fed.weights, trim0.weights);
    }

    #[test]
    fn trim_too_large_is_rejected() {
        let updates = vec![upload(0, 1.0, 10), upload(1, 2.0, 10)];
        assert!(collect(&updates)
            .finish_with(Aggregator::TrimmedMean { trim: 1 }, None)
            .is_err());
    }

    #[test]
    fn norm_clip_bounds_a_boosted_update() {
        let reference = upload(0, 0.0, 1).weights;
        let updates = vec![upload(0, 0.1, 10), upload(1, 1000.0, 10)];
        let clipped = collect(&updates)
            .finish_with(Aggregator::NormClip { tau: 0.5 }, Some(&reference))
            .unwrap();
        let val = clipped.weights.layer(0).unwrap().w.data()[0];
        assert!(
            val.abs() < 0.5,
            "clipped aggregate stayed bounded, got {val}"
        );
        // Missing reference is an error, not a silent fallback.
        assert!(collect(&updates)
            .finish_with(Aggregator::NormClip { tau: 0.5 }, None)
            .is_err());
        // Within-norm updates pass through exactly: identical to fedavg.
        let gentle = vec![upload(0, 0.01, 10), upload(1, 0.02, 10)];
        let plain = collect(&gentle).finish().unwrap();
        let clipped = collect(&gentle)
            .finish_with(Aggregator::NormClip { tau: 10.0 }, Some(&reference))
            .unwrap();
        assert_eq!(plain.weights, clipped.weights);
    }

    #[test]
    fn aggregator_names_and_validation() {
        assert_eq!(Aggregator::FedAvg.name(), "fedavg");
        assert_eq!(Aggregator::Median.name(), "median");
        assert_eq!(
            Aggregator::TrimmedMean { trim: 2 }.name(),
            "trimmed-mean(2)"
        );
        assert!(Aggregator::NormClip { tau: 0.0 }.validate().is_err());
        assert!(Aggregator::NormClip { tau: f32::NAN }.validate().is_err());
        assert!(Aggregator::NormClip { tau: 1.0 }.validate().is_ok());
    }

    #[test]
    fn partial_aggregate_rejects_empty_and_duplicate_slots() {
        assert!(PartialAggregate::new().finish().is_err());
        let mut agg = PartialAggregate::new();
        agg.push(0, upload(0, 1.0, 4));
        agg.push(0, upload(1, 2.0, 4));
        let err = agg.finish().unwrap_err();
        assert!(err.to_string().contains("selection slot"), "{err}");
    }
}
