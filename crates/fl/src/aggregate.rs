//! FedAvg aggregation (Figure 2-➍).

use gradsec_nn::model::ModelWeights;

use crate::message::UpdateUpload;
use crate::{FlError, Result};

/// Combines client updates into the next global model by sample-weighted
/// averaging of their post-training weights (McMahan et al.'s FedAvg, the
/// aggregation the paper's server performs).
///
/// # Errors
///
/// Returns [`FlError::BadAggregation`] for an empty update set, a zero
/// total sample count, or architecture mismatches between updates.
pub fn fedavg(updates: &[UpdateUpload]) -> Result<ModelWeights> {
    if updates.is_empty() {
        return Err(FlError::BadAggregation {
            reason: "no updates to aggregate".to_owned(),
        });
    }
    let total: usize = updates.iter().map(|u| u.num_samples).sum();
    if total == 0 {
        return Err(FlError::BadAggregation {
            reason: "total sample count is zero".to_owned(),
        });
    }
    let mut acc = updates[0].weights.clone();
    acc.scale(updates[0].num_samples as f32 / total as f32);
    for u in &updates[1..] {
        acc.add_scaled(&u.weights, u.num_samples as f32 / total as f32)
            .map_err(|e| FlError::BadAggregation {
                reason: format!("update from client {}: {e}", u.client_id),
            })?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_nn::model::LayerWeights;
    use gradsec_tensor::Tensor;

    fn upload(client: u64, value: f32, samples: usize) -> UpdateUpload {
        UpdateUpload {
            client_id: client,
            round: 0,
            weights: ModelWeights::new(vec![LayerWeights {
                w: Tensor::full(&[2], value),
                b: Tensor::full(&[1], value),
            }]),
            num_samples: samples,
            train_loss: 0.0,
            cost: Default::default(),
        }
    }

    #[test]
    fn equal_weights_average() {
        let g = fedavg(&[upload(0, 1.0, 10), upload(1, 3.0, 10)]).unwrap();
        assert!(g
            .layer(0)
            .unwrap()
            .w
            .approx_eq(&Tensor::full(&[2], 2.0), 1e-6));
    }

    #[test]
    fn sample_weighting() {
        // 1.0 with 30 samples, 5.0 with 10 samples -> (30·1 + 10·5)/40 = 2.
        let g = fedavg(&[upload(0, 1.0, 30), upload(1, 5.0, 10)]).unwrap();
        assert!(g
            .layer(0)
            .unwrap()
            .w
            .approx_eq(&Tensor::full(&[2], 2.0), 1e-6));
    }

    #[test]
    fn single_update_is_identity() {
        let u = upload(0, 7.0, 5);
        let g = fedavg(std::slice::from_ref(&u)).unwrap();
        assert_eq!(g, u.weights);
    }

    #[test]
    fn rejects_empty_and_zero_samples() {
        assert!(fedavg(&[]).is_err());
        assert!(fedavg(&[upload(0, 1.0, 0)]).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let a = upload(0, 1.0, 10);
        let mut b = upload(1, 1.0, 10);
        b.weights = ModelWeights::new(vec![
            LayerWeights {
                w: Tensor::zeros(&[2]),
                b: Tensor::zeros(&[1]),
            },
            LayerWeights {
                w: Tensor::zeros(&[2]),
                b: Tensor::zeros(&[1]),
            },
        ]);
        assert!(fedavg(&[a, b]).is_err());
    }
}
