//! The shard-server process: hosts one contiguous shard of FL clients
//! behind the envelope protocol, driven by a
//! [`DistributedCoordinator`](gradsec_fl::distributed::DistributedCoordinator)
//! in another process.
//!
//! Usage: `shard-server <coordinator-addr>` — the process connects back
//! to the coordinator, receives its shard configuration over the
//! shard-control handshake, and serves screen/round requests until a
//! Goodbye (or EOF) ends the session. All logic lives in
//! [`gradsec_fl::distributed::serve_shard`]; this binary only parses its
//! argument and maps the result to an exit code the coordinator's
//! teardown watchdog can observe.

use std::process::ExitCode;

fn main() -> ExitCode {
    match gradsec_fl::distributed::shard_server_main(std::env::args().skip(1)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shard-server: {e}");
            ExitCode::FAILURE
        }
    }
}
