//! FL clients and their devices.

use std::sync::Arc;

use gradsec_data::{Batcher, Dataset};
use gradsec_nn::Sequential;
use gradsec_tee::attestation::{sign_quote, Challenge, Measurement};
use gradsec_tee::ta::Uuid;

use crate::adversary::{Adversary, Persona};
use crate::message::{AttestationResponse, ModelDownload, UpdateUpload};
use crate::trainer::{CycleStats, LocalTrainer};
use crate::Result;

/// Hardware profile of a client device.
///
/// The paper's selection step (Figure 2-➊) discards devices without a TEE;
/// this profile is what that check inspects.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Whether the device has TrustZone at all.
    pub has_tee: bool,
    /// Secure-memory carveout in bytes (3–5 MB typical, paper §3.3).
    pub tee_budget: usize,
    /// Device attestation key (provisioned at manufacture; shared with the
    /// verifier in this symmetric simulation).
    ///
    /// The FL server verifies quotes against its provisioning registry —
    /// [`DeviceProfile::provisioned_key`] of the id the client reports in
    /// its transport handshake — so a device whose key differs from
    /// `provisioned_key(id)` fails screening, exactly as an unprovisioned
    /// device would in the field.
    pub attestation_key: Vec<u8>,
    /// The GradSec TA installed on this device, if any.
    pub ta: Option<InstalledTa>,
}

/// A TA installed on a device.
#[derive(Debug, Clone)]
pub struct InstalledTa {
    /// TA identity.
    pub uuid: Uuid,
    /// The TA code bytes (what attestation measures).
    pub code: Vec<u8>,
}

impl DeviceProfile {
    /// The attestation key provisioned for a device at manufacture. In
    /// this symmetric simulation the verifier (FL server) derives the same
    /// key from the device id — the registry a remote client is checked
    /// against after its transport handshake.
    pub fn provisioned_key(device_id: u64) -> Vec<u8> {
        format!("device-key-{device_id}").into_bytes()
    }

    /// A well-provisioned TrustZone device running the genuine GradSec TA.
    pub fn trustzone(device_id: u64) -> Self {
        DeviceProfile {
            has_tee: true,
            tee_budget: 4 * 1024 * 1024,
            attestation_key: Self::provisioned_key(device_id),
            ta: Some(InstalledTa {
                uuid: Uuid::from_name("gradsec-ta"),
                code: b"gradsec-ta-code-v1".to_vec(),
            }),
        }
    }

    /// A legacy device with no TEE.
    pub fn legacy(device_id: u64) -> Self {
        DeviceProfile {
            has_tee: false,
            tee_budget: 0,
            attestation_key: Self::provisioned_key(device_id),
            ta: None,
        }
    }

    /// A compromised device running modified TA code — its measurement
    /// will not match the server's whitelist.
    pub fn compromised(device_id: u64) -> Self {
        DeviceProfile {
            has_tee: true,
            tee_budget: 4 * 1024 * 1024,
            attestation_key: Self::provisioned_key(device_id),
            ta: Some(InstalledTa {
                uuid: Uuid::from_name("gradsec-ta"),
                code: b"gradsec-ta-code-BACKDOORED".to_vec(),
            }),
        }
    }
}

/// One federated-learning client: a device, a local data shard and a
/// model replica.
pub struct FlClient {
    id: u64,
    device: DeviceProfile,
    dataset: Arc<dyn Dataset>,
    shard: Vec<usize>,
    model: Sequential,
    trainer: Box<dyn LocalTrainer>,
    last_stats: Option<CycleStats>,
    adversary: Option<Adversary>,
}

impl std::fmt::Debug for FlClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlClient")
            .field("id", &self.id)
            .field("has_tee", &self.device.has_tee)
            .field("shard_len", &self.shard.len())
            .finish()
    }
}

impl FlClient {
    /// Creates a client.
    pub fn new(
        id: u64,
        device: DeviceProfile,
        dataset: Arc<dyn Dataset>,
        shard: Vec<usize>,
        model: Sequential,
        trainer: Box<dyn LocalTrainer>,
    ) -> Self {
        FlClient {
            id,
            device,
            dataset,
            shard,
            model,
            trainer,
            last_stats: None,
            adversary: None,
        }
    }

    /// Client id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The device profile.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The local shard size.
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    /// Replaces the local trainer (e.g. swap the plain trainer for the
    /// GradSec secure trainer).
    pub fn set_trainer(&mut self, trainer: Box<dyn LocalTrainer>) {
        self.trainer = trainer;
    }

    /// Statistics of the most recent cycle.
    pub fn last_stats(&self) -> Option<&CycleStats> {
        self.last_stats.as_ref()
    }

    /// Assigns this client an adversarial persona (see
    /// [`crate::adversary`]). All persona behavior is confined to
    /// [`run_cycle`](Self::run_cycle) — attestation and the transport
    /// exchange stay honest, so screening and bit-identity are
    /// unaffected by *who* the client is, only by what it uploads.
    pub fn set_adversary(&mut self, adversary: Adversary) {
        self.adversary = Some(adversary);
    }

    /// This client's persona, if hostile.
    pub fn persona(&self) -> Option<Persona> {
        self.adversary.as_ref().map(|a| a.persona)
    }

    /// Responds to an attestation challenge. Devices without a TEE (or
    /// without the TA) answer with no quote and are filtered out by the
    /// server.
    pub fn attest(&self, challenge: &Challenge) -> AttestationResponse {
        let quote = match (&self.device.has_tee, &self.device.ta) {
            (true, Some(ta)) => {
                let m = Measurement(gradsec_tee::crypto::sha256::sha256(&ta.code));
                Some(sign_quote(
                    &self.device.attestation_key,
                    ta.uuid,
                    m,
                    challenge,
                ))
            }
            _ => None,
        };
        AttestationResponse { quote }
    }

    /// Runs one local training cycle from a model download and returns the
    /// update upload (Figure 2-➌/➍).
    ///
    /// # Errors
    ///
    /// Propagates model/TEE failures.
    pub fn run_cycle(&mut self, download: &ModelDownload) -> Result<UpdateUpload> {
        if self.persona() == Some(Persona::FreeRider) {
            return self.free_ride(download);
        }
        self.model.set_weights(&download.weights)?;
        let batcher = Batcher::new(
            self.shard.len(),
            download.plan.batch_size,
            download.plan.seed ^ self.id ^ download.round.wrapping_mul(0x9E37),
        );
        // Map shard-relative batch indices to dataset indices.
        let batches: Vec<Vec<usize>> = batcher
            .epoch_batches(download.round, download.plan.batches_per_cycle)
            .into_iter()
            .map(|b| b.into_iter().map(|i| self.shard[i]).collect())
            .collect();
        let stats = self.trainer.train_cycle(
            &mut self.model,
            self.dataset.as_ref(),
            &batches,
            download.plan.learning_rate,
            &download.protected_layers,
        )?;
        self.last_stats = Some(stats);
        self.model.clear_caches();
        let weights = match &self.adversary {
            Some(adv) => match adv.persona {
                Persona::Poisoner => adv.plan.poisoned(
                    self.id,
                    download.round,
                    &download.weights,
                    &self.model.weights(),
                )?,
                Persona::Scaler => adv.plan.scaled(&download.weights, &self.model.weights())?,
                Persona::Colluder => {
                    if let Some(log) = &adv.log {
                        log.observe(self.id, download.round, &download.weights);
                    }
                    self.model.weights()
                }
                Persona::FreeRider => unreachable!("free-riders return before training"),
            },
            None => self.model.weights(),
        };
        Ok(UpdateUpload {
            client_id: self.id,
            round: download.round,
            weights,
            num_samples: stats.samples.max(1),
            train_loss: stats.mean_loss,
            cost: stats.cost(self.id),
        })
    }

    /// The free-rider cycle: no training at all — echo the global
    /// weights back while claiming a full cycle's samples and zero
    /// compute cost. Deterministic by construction (no RNG, no batches).
    fn free_ride(&mut self, download: &ModelDownload) -> Result<UpdateUpload> {
        let claimed = (download.plan.batch_size * download.plan.batches_per_cycle).max(1);
        self.last_stats = Some(CycleStats::default());
        Ok(UpdateUpload {
            client_id: self.id,
            round: download.round,
            weights: download.weights.clone(),
            num_samples: claimed,
            train_loss: 0.0,
            cost: CycleStats::default().cost(self.id),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainingPlan;
    use crate::trainer::PlainSgdTrainer;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use gradsec_tee::attestation::verify_quote;

    fn client(device: DeviceProfile) -> FlClient {
        let ds = Arc::new(SyntheticCifar100::with_classes(32, 2, 3));
        let model = zoo::tiny_mlp(3 * 32 * 32, 8, 2, 1).unwrap();
        FlClient::new(
            7,
            device,
            ds,
            (0..32).collect(),
            model,
            Box::new(PlainSgdTrainer),
        )
    }

    #[test]
    fn trustzone_device_attests_validly() {
        let c = client(DeviceProfile::trustzone(7));
        let ch = Challenge::new([1u8; 16]);
        let resp = c.attest(&ch);
        let quote = resp.quote.expect("tee device produces a quote");
        let expected = Measurement(gradsec_tee::crypto::sha256::sha256(b"gradsec-ta-code-v1"));
        verify_quote(b"device-key-7", &quote, expected, &ch).unwrap();
    }

    #[test]
    fn legacy_device_has_no_quote() {
        let c = client(DeviceProfile::legacy(7));
        assert!(c.attest(&Challenge::new([0u8; 16])).quote.is_none());
    }

    #[test]
    fn compromised_device_fails_verification() {
        let c = client(DeviceProfile::compromised(7));
        let ch = Challenge::new([1u8; 16]);
        let quote = c.attest(&ch).quote.unwrap();
        let expected = Measurement(gradsec_tee::crypto::sha256::sha256(b"gradsec-ta-code-v1"));
        assert!(verify_quote(b"device-key-7", &quote, expected, &ch).is_err());
    }

    #[test]
    fn personas_shape_the_upload() {
        use crate::adversary::{Adversary, AdversaryPlan, CollusionLog};

        let plan = TrainingPlan {
            rounds: 1,
            clients_per_round: 1,
            batches_per_cycle: 2,
            batch_size: 8,
            learning_rate: 0.05,
            seed: 11,
        };
        let scenario = Arc::new(AdversaryPlan::seeded(5).poisoners(1.0));
        let download = {
            let c = client(DeviceProfile::trustzone(7));
            ModelDownload {
                round: 0,
                weights: c.model.weights(),
                plan,
                protected_layers: vec![],
            }
        };

        let honest = client(DeviceProfile::trustzone(7))
            .run_cycle(&download)
            .unwrap();

        let mut poisoner = client(DeviceProfile::trustzone(7));
        poisoner.set_adversary(Adversary {
            persona: Persona::Poisoner,
            plan: scenario.clone(),
            log: None,
        });
        let poisoned = poisoner.run_cycle(&download).unwrap();
        assert_ne!(poisoned.weights, honest.weights);
        assert_eq!(poisoned.num_samples, honest.num_samples);

        let mut rider = client(DeviceProfile::trustzone(7));
        rider.set_adversary(Adversary {
            persona: Persona::FreeRider,
            plan: scenario.clone(),
            log: None,
        });
        let echoed = rider.run_cycle(&download).unwrap();
        assert_eq!(echoed.weights, download.weights);
        assert_eq!(echoed.num_samples, 16, "claims a full cycle's samples");

        let log = Arc::new(CollusionLog::default());
        let mut colluder = client(DeviceProfile::trustzone(7));
        colluder.set_adversary(Adversary {
            persona: Persona::Colluder,
            plan: scenario,
            log: Some(log.clone()),
        });
        let observed = colluder.run_cycle(&download).unwrap();
        assert_eq!(observed.weights, honest.weights, "colluders train honestly");
        assert_eq!(log.colluders(), vec![7]);
        assert_eq!(log.rounds_observed(), 1);
    }

    #[test]
    fn run_cycle_trains_and_uploads() {
        let mut c = client(DeviceProfile::trustzone(7));
        let plan = TrainingPlan {
            rounds: 1,
            clients_per_round: 1,
            batches_per_cycle: 2,
            batch_size: 8,
            learning_rate: 0.05,
            seed: 11,
        };
        let global = c.model.weights();
        let download = ModelDownload {
            round: 0,
            weights: global.clone(),
            plan,
            protected_layers: vec![],
        };
        let up = c.run_cycle(&download).unwrap();
        assert_eq!(up.client_id, 7);
        assert_eq!(up.num_samples, 16);
        assert_ne!(up.weights, global, "training must move the weights");
        assert!(c.last_stats().is_some());
    }
}
