//! Pluggable update codecs for the model payload path.
//!
//! Every round ships model weights both directions; for a fleet of
//! millions of clients the dominant cost is those bytes, not cycles.
//! This module defines the codec layer the transport speaks at protocol
//! v4: the server proposes a [`CodecKind`] in its `Hello`, the client
//! echoes acceptance in the `HelloAck`, and from then on downloads and
//! uploads carry [`EncodedWeights`] instead of raw `ModelWeights` —
//! opaque bytes to every transport backend (in-process, mpsc, TCP,
//! TcpMux and the tiop-sealed wrapper alike).
//!
//! Three codecs ship:
//!
//! * [`CodecKind::Identity`] — dense f32 tensors, bit-identical to the
//!   raw payload. The default; every bit-identity gate in the repo runs
//!   over it unchanged.
//! * [`CodecKind::Int8`] — per-tensor affine quantization: each tensor
//!   is mapped to `q = round((x - zero) / scale)` over 256 levels, so a
//!   coefficient costs 1 byte instead of 4. Lossy, with a per-tensor
//!   error bound of `scale / 2` (pinned by the `repro_rounds` gate the
//!   way `Blocked` pins 1e-5 kernel parity).
//! * [`CodecKind::DeltaTopK`] — top-k sparsified delta against the
//!   previous committed round: both sides keep a reference *view* of
//!   the model per client epoch, only the largest [`TOPK_DENSITY`]
//!   fraction of per-tensor delta coefficients cross the wire, and the
//!   receiver reconstructs `view + delta`. The first exchange (no
//!   committed view) and any tensor whose sparse form would not save
//!   bytes fall back to dense absolute values.
//!
//! **Determinism.** Encoding is a pure function of `(codec, weights,
//! reference)` — no RNG, no wall clock — so a flat, sharded or
//! distributed run over any transport produces bit-identical encoded
//! frames, and the lossy codecs' reconstruction error is a seeded,
//! reproducible quantity. The delta codec's epoch handshake recovers
//! deterministically too: a client that lost its reference view (e.g. a
//! garbled upload made the server withhold its commit) answers with a
//! typed error containing [`BASE_MISMATCH`], and the server re-sends
//! that one download dense.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tensor::Tensor;

use crate::message::{decode_len, limits, need, Wire};
use crate::{FlError, Result};

/// Environment variable selecting the fleet codec
/// ([`CodecKind::from_env`]), mirroring `GRADSEC_BACKEND` for kernels.
pub const CODEC_ENV: &str = "GRADSEC_CODEC";

/// Fraction of per-tensor delta coefficients [`CodecKind::DeltaTopK`]
/// keeps (at least one per tensor).
pub const TOPK_DENSITY: f64 = 0.1;

/// Marker embedded in the typed error a client returns when a delta
/// download references a base epoch the client no longer holds. The
/// server detects it and retries that download once, dense.
pub const BASE_MISMATCH: &str = "codec base mismatch";

/// Which update codec a session speaks, negotiated at Hello/HelloAck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CodecKind {
    /// Dense f32 payloads — bit-identical, the default.
    #[default]
    Identity,
    /// Per-tensor affine int8 quantization (lossy, 4× smaller bodies).
    Int8,
    /// Top-k sparsified delta vs. the previous committed round (lossy).
    DeltaTopK,
}

impl CodecKind {
    /// Canonical name, as accepted by [`CodecKind::parse`] and carried
    /// in a `ShardConfig`.
    pub fn name(&self) -> &'static str {
        match self {
            CodecKind::Identity => "identity",
            CodecKind::Int8 => "int8",
            CodecKind::DeltaTopK => "delta-topk",
        }
    }

    /// Parses a codec name (case-insensitive; `delta-topk`, `delta_topk`
    /// and `deltatopk` are all accepted).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "identity" => Some(CodecKind::Identity),
            "int8" => Some(CodecKind::Int8),
            "delta-topk" | "delta_topk" | "deltatopk" => Some(CodecKind::DeltaTopK),
            _ => None,
        }
    }

    /// The codec selected by the [`CODEC_ENV`] environment variable, or
    /// `Identity` when unset/unknown.
    pub fn from_env() -> Self {
        std::env::var(CODEC_ENV)
            .ok()
            .and_then(|v| CodecKind::parse(&v))
            .unwrap_or_default()
    }

    /// The wire tag.
    pub fn as_u8(self) -> u8 {
        match self {
            CodecKind::Identity => 0,
            CodecKind::Int8 => 1,
            CodecKind::DeltaTopK => 2,
        }
    }

    /// Decodes a wire tag.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Protocol`] on an unknown tag.
    pub fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(CodecKind::Identity),
            1 => Ok(CodecKind::Int8),
            2 => Ok(CodecKind::DeltaTopK),
            other => Err(FlError::Protocol {
                reason: format!("unknown codec tag {other}"),
            }),
        }
    }

    /// Whether decode reconstructs the exact input bits.
    pub fn is_lossy(&self) -> bool {
        !matches!(self, CodecKind::Identity)
    }
}

/// One encoded tensor body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EncodedBody {
    /// Dense absolute f32 values (Identity, and the lossless fallback
    /// every lossy codec uses when its form would not save bytes).
    Dense(Vec<f32>),
    /// Affine-quantized absolute values: `x ≈ zero + scale * q`.
    Int8 {
        /// The dequantization offset (the tensor's minimum).
        zero: f32,
        /// The dequantization step (`(max - min) / 255`, or 1 for a
        /// constant tensor).
        scale: f32,
        /// One quantized byte per coefficient.
        q: Vec<u8>,
    },
    /// Sparse delta vs. the reference view: `x[i] = ref[i]` everywhere,
    /// plus `values[j]` added at `indices[j]`. Indices are strictly
    /// increasing and in-bounds by construction (and re-validated on
    /// decode).
    TopK {
        /// Kept coefficient positions, strictly increasing.
        indices: Vec<u32>,
        /// The delta value at each kept position.
        values: Vec<f32>,
    },
}

/// One encoded tensor: its shape plus the codec body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedTensor {
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// The encoded coefficients.
    pub body: EncodedBody,
}

/// A whole model's weights in encoded form — the payload the v4
/// `EncodedModelDownload`/`EncodedUpdateUpload` messages carry. Tensors
/// are the model's layers flattened `[w0, b0, w1, b1, …]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedWeights {
    /// The codec that produced (and decodes) this payload.
    pub codec: CodecKind,
    /// The sender's epoch stamp for this payload (drives the delta
    /// codec's reference handshake; informational for stateless codecs).
    pub epoch: u64,
    /// For delta payloads: the epoch of the reference view the deltas
    /// were taken against. `None` means every body is self-contained.
    pub base_epoch: Option<u64>,
    /// The encoded tensors, `2 × num_layers` of them.
    pub tensors: Vec<EncodedTensor>,
}

impl EncodedWeights {
    /// Exact wire size of this payload in bytes.
    pub fn wire_bytes(&self) -> u64 {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.len() as u64
    }
}

/// Exact wire size of `weights` encoded dense (the raw-bytes column the
/// compression-ratio report divides by).
pub fn dense_wire_bytes(weights: &ModelWeights) -> u64 {
    let mut buf = BytesMut::new();
    weights.encode_into(&mut buf);
    buf.len() as u64
}

/// The model's layers flattened to `[w0, b0, w1, b1, …]`.
fn flatten(weights: &ModelWeights) -> Vec<&Tensor> {
    weights.iter().flat_map(|l| [&l.w, &l.b]).collect()
}

/// Whether two models have identical tensor shapes (the precondition
/// for delta coding one against the other).
fn shapes_match(a: &ModelWeights, b: &ModelWeights) -> bool {
    a.num_layers() == b.num_layers()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.w.dims() == y.w.dims() && x.b.dims() == y.b.dims())
}

fn encode_dense(t: &Tensor) -> EncodedTensor {
    EncodedTensor {
        dims: t.dims().to_vec(),
        body: EncodedBody::Dense(t.data().to_vec()),
    }
}

fn encode_int8(t: &Tensor) -> EncodedTensor {
    let data = t.data();
    let (min, max) = data
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
    let (zero, scale) = if data.is_empty() || !min.is_finite() || max <= min {
        (if min.is_finite() { min } else { 0.0 }, 1.0)
    } else {
        (min, (max - min) / 255.0)
    };
    let q = data
        .iter()
        .map(|&x| ((x - zero) / scale).round().clamp(0.0, 255.0) as u8)
        .collect();
    EncodedTensor {
        dims: t.dims().to_vec(),
        body: EncodedBody::Int8 { zero, scale, q },
    }
}

fn encode_topk(t: &Tensor, reference: &Tensor) -> EncodedTensor {
    let n = t.numel();
    let k = ((n as f64 * TOPK_DENSITY).ceil() as usize).clamp(1, n.max(1));
    // A sparse entry costs 8 bytes (u32 index + f32 value); dense costs
    // 4 per coefficient. When sparsity would not save bytes, ship dense
    // absolute values (also the n == 0 case).
    if n == 0 || 8 * k >= 4 * n {
        return encode_dense(t);
    }
    let data = t.data();
    let ref_data = reference.data();
    let delta: Vec<f32> = data.iter().zip(ref_data).map(|(&x, &r)| x - r).collect();
    // Top-k by |delta|, ties broken by index so the selection is a pure
    // function of the inputs. select_nth keeps this O(n) + O(k log k).
    let mut order: Vec<u32> = (0..n as u32).collect();
    let rank = |&a: &u32, &b: &u32| {
        delta[b as usize]
            .abs()
            .total_cmp(&delta[a as usize].abs())
            .then(a.cmp(&b))
    };
    order.select_nth_unstable_by(k - 1, rank);
    let mut indices: Vec<u32> = order[..k].to_vec();
    indices.sort_unstable();
    let values = indices.iter().map(|&i| delta[i as usize]).collect();
    EncodedTensor {
        dims: t.dims().to_vec(),
        body: EncodedBody::TopK { indices, values },
    }
}

/// Encodes `weights` under `codec`, stamped with `epoch`.
///
/// `reference` is the committed view a delta codec diffs against (with
/// its own epoch); stateless codecs ignore it, and `DeltaTopK` falls
/// back to a dense, self-contained payload when no shape-compatible
/// reference exists (the first exchange of a session).
pub fn encode_weights(
    codec: CodecKind,
    epoch: u64,
    weights: &ModelWeights,
    reference: Option<(u64, &ModelWeights)>,
) -> EncodedWeights {
    let (base_epoch, tensors) = match codec {
        CodecKind::Identity => (
            None,
            flatten(weights).into_iter().map(encode_dense).collect(),
        ),
        CodecKind::Int8 => (
            None,
            flatten(weights).into_iter().map(encode_int8).collect(),
        ),
        CodecKind::DeltaTopK => match reference {
            Some((base, ref_w)) if shapes_match(weights, ref_w) => {
                let tensors = flatten(weights)
                    .into_iter()
                    .zip(flatten(ref_w))
                    .map(|(t, r)| encode_topk(t, r))
                    .collect();
                (Some(base), tensors)
            }
            _ => (
                None,
                flatten(weights).into_iter().map(encode_dense).collect(),
            ),
        },
    };
    EncodedWeights {
        codec,
        epoch,
        base_epoch,
        tensors,
    }
}

/// Decodes an encoded payload back into model weights.
///
/// `reference` must be the view `enc.base_epoch` names whenever the
/// payload carries delta bodies — callers validate the epoch; this
/// function validates shapes.
///
/// # Errors
///
/// Returns [`FlError::Protocol`] on structural violations: an odd
/// tensor count, a delta body without (or against a mismatched)
/// reference, out-of-bounds indices, or body/shape length disagreement.
pub fn decode_weights(
    enc: &EncodedWeights,
    reference: Option<&ModelWeights>,
) -> Result<ModelWeights> {
    let bad = |reason: String| FlError::Protocol { reason };
    if !enc.tensors.len().is_multiple_of(2) {
        return Err(bad(format!(
            "encoded payload has odd tensor count {}",
            enc.tensors.len()
        )));
    }
    let ref_flat: Option<Vec<&Tensor>> = reference.map(flatten);
    if let Some(r) = &ref_flat {
        if r.len() != enc.tensors.len() {
            return Err(bad(format!(
                "reference has {} tensors, payload {}",
                r.len(),
                enc.tensors.len()
            )));
        }
    }
    let mut decoded = Vec::with_capacity(enc.tensors.len());
    for (i, t) in enc.tensors.iter().enumerate() {
        let n = t
            .dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| bad("encoded tensor dims overflow".to_owned()))?;
        let data: Vec<f32> = match &t.body {
            EncodedBody::Dense(v) => {
                if v.len() != n {
                    return Err(bad(format!(
                        "dense body has {} values for {n}-element tensor",
                        v.len()
                    )));
                }
                v.clone()
            }
            EncodedBody::Int8 { zero, scale, q } => {
                if q.len() != n {
                    return Err(bad(format!(
                        "int8 body has {} values for {n}-element tensor",
                        q.len()
                    )));
                }
                q.iter().map(|&b| zero + scale * f32::from(b)).collect()
            }
            EncodedBody::TopK { indices, values } => {
                let r = ref_flat
                    .as_ref()
                    .and_then(|f| f.get(i))
                    .ok_or_else(|| bad("delta body without a reference view".to_owned()))?;
                if r.numel() != n {
                    return Err(bad(format!(
                        "reference tensor has {} elements, payload {n}",
                        r.numel()
                    )));
                }
                if indices.len() != values.len() {
                    return Err(bad("sparse index/value length mismatch".to_owned()));
                }
                let mut out = r.data().to_vec();
                let mut prev: Option<u32> = None;
                for (&idx, &v) in indices.iter().zip(values) {
                    if prev.is_some_and(|p| idx <= p) {
                        return Err(bad("sparse indices not strictly increasing".to_owned()));
                    }
                    prev = Some(idx);
                    let slot = out
                        .get_mut(idx as usize)
                        .ok_or_else(|| bad(format!("sparse index {idx} out of bounds {n}")))?;
                    *slot += v;
                }
                out
            }
        };
        decoded.push(
            Tensor::from_vec(data, &t.dims)
                .map_err(|e| bad(format!("encoded tensor reconstruction: {e}")))?,
        );
    }
    let mut layers = Vec::with_capacity(decoded.len() / 2);
    let mut it = decoded.into_iter();
    while let (Some(w), Some(b)) = (it.next(), it.next()) {
        layers.push(LayerWeights { w, b });
    }
    Ok(ModelWeights::new(layers))
}

/// The worst-case per-coefficient reconstruction error an [`Int8`]
/// round-trip of `weights` can introduce: the largest tensor's
/// `scale / 2` plus float slack.
///
/// [`Int8`]: CodecKind::Int8
pub fn int8_error_bound(weights: &ModelWeights) -> f32 {
    let mut bound = 0.0f32;
    for t in flatten(weights) {
        let data = t.data();
        let (min, max) = data
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
        if max > min {
            bound = bound.max((max - min) / 255.0 / 2.0);
        }
    }
    // Slack for the affine arithmetic itself.
    bound * 1.01 + f32::EPSILON
}

// ---------------------------------------------------------------------
// Wire framing (length-prefixed, bounded by `message::limits`).
// ---------------------------------------------------------------------

impl Wire for EncodedTensor {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.dims.len() as u64);
        for &d in &self.dims {
            buf.put_u64_le(d as u64);
        }
        match &self.body {
            EncodedBody::Dense(v) => {
                buf.put_u8(0);
                for &x in v {
                    buf.put_f32_le(x);
                }
            }
            EncodedBody::Int8 { zero, scale, q } => {
                buf.put_u8(1);
                buf.put_f32_le(*zero);
                buf.put_f32_le(*scale);
                buf.put_slice(q);
            }
            EncodedBody::TopK { indices, values } => {
                buf.put_u8(2);
                buf.put_u64_le(indices.len() as u64);
                for &i in indices {
                    buf.put_u32_le(i);
                }
                for &v in values {
                    buf.put_f32_le(v);
                }
            }
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let ndim = decode_len(buf, "encoded tensor rank")?;
        if ndim > limits::MAX_TENSOR_RANK {
            return Err(FlError::BadConfig {
                reason: format!("encoded tensor rank {ndim} exceeds protocol maximum"),
            });
        }
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(decode_len(buf, "encoded tensor dim")?);
        }
        let n = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .filter(|&n| n <= limits::MAX_FIELD_BYTES)
            .ok_or(FlError::BadConfig {
                reason: "encoded tensor element count exceeds protocol maximum".to_owned(),
            })?;
        need(buf, 1, "encoded body tag")?;
        let body = match buf.get_u8() {
            0 => {
                need(buf, 4 * n, "dense body")?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(buf.get_f32_le());
                }
                EncodedBody::Dense(v)
            }
            1 => {
                need(buf, 8 + n, "int8 body")?;
                let zero = buf.get_f32_le();
                let scale = buf.get_f32_le();
                let mut q = vec![0u8; n];
                buf.copy_to_slice(&mut q);
                EncodedBody::Int8 { zero, scale, q }
            }
            2 => {
                let k = decode_len(buf, "sparse entry count")?;
                if k > n {
                    return Err(FlError::BadConfig {
                        reason: format!("sparse entry count {k} exceeds tensor size {n}"),
                    });
                }
                need(buf, 8 * k, "sparse body")?;
                let mut indices = Vec::with_capacity(k);
                let mut prev: Option<u32> = None;
                for _ in 0..k {
                    let idx = buf.get_u32_le();
                    if (idx as usize) >= n || prev.is_some_and(|p| idx <= p) {
                        return Err(FlError::BadConfig {
                            reason: format!("sparse index {idx} invalid for tensor of {n}"),
                        });
                    }
                    prev = Some(idx);
                    indices.push(idx);
                }
                let mut values = Vec::with_capacity(k);
                for _ in 0..k {
                    values.push(buf.get_f32_le());
                }
                EncodedBody::TopK { indices, values }
            }
            other => {
                return Err(FlError::BadConfig {
                    reason: format!("unknown encoded body tag {other}"),
                })
            }
        };
        Ok(EncodedTensor { dims, body })
    }
}

impl Wire for EncodedWeights {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(self.codec.as_u8());
        buf.put_u64_le(self.epoch);
        match self.base_epoch {
            Some(e) => {
                buf.put_u8(1);
                buf.put_u64_le(e);
            }
            None => buf.put_u8(0),
        }
        buf.put_u64_le(self.tensors.len() as u64);
        for t in &self.tensors {
            t.encode_into(buf);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 10, "encoded weights header")?;
        let codec = CodecKind::from_u8(buf.get_u8())?;
        let epoch = buf.get_u64_le();
        let base_epoch = match buf.get_u8() {
            0 => None,
            1 => {
                need(buf, 8, "base epoch")?;
                Some(buf.get_u64_le())
            }
            other => {
                return Err(FlError::BadConfig {
                    reason: format!("bad base epoch presence flag {other}"),
                })
            }
        };
        let n = decode_len(buf, "encoded tensor count")?;
        if n > limits::MAX_ENCODED_TENSORS {
            return Err(FlError::BadConfig {
                reason: format!("encoded tensor count {n} exceeds protocol maximum"),
            });
        }
        let mut tensors = Vec::with_capacity(n);
        for _ in 0..n {
            tensors.push(EncodedTensor::decode_from(buf)?);
        }
        Ok(EncodedWeights {
            codec,
            epoch,
            base_epoch,
            tensors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{decode, encode};
    use gradsec_nn::zoo;

    fn weights(seed: u64) -> ModelWeights {
        zoo::tiny_mlp(32, 16, 4, seed).unwrap().weights()
    }

    fn max_abs_diff(a: &ModelWeights, b: &ModelWeights) -> f32 {
        a.iter()
            .zip(b.iter())
            .flat_map(|(x, y)| {
                x.w.data()
                    .iter()
                    .zip(y.w.data())
                    .chain(x.b.data().iter().zip(y.b.data()))
                    .map(|(&p, &q)| (p - q).abs())
            })
            .fold(0.0f32, f32::max)
    }

    #[test]
    fn parse_and_env_names_are_stable() {
        for kind in [CodecKind::Identity, CodecKind::Int8, CodecKind::DeltaTopK] {
            assert_eq!(CodecKind::parse(kind.name()), Some(kind));
            assert_eq!(CodecKind::from_u8(kind.as_u8()).unwrap(), kind);
        }
        assert_eq!(CodecKind::parse("DELTA_TOPK"), Some(CodecKind::DeltaTopK));
        assert_eq!(CodecKind::parse("gzip"), None);
        assert!(CodecKind::from_u8(9).is_err());
        assert!(!CodecKind::Identity.is_lossy());
        assert!(CodecKind::Int8.is_lossy());
    }

    #[test]
    fn identity_roundtrip_is_bit_exact() {
        let w = weights(7);
        let enc = encode_weights(CodecKind::Identity, 0, &w, None);
        assert_eq!(enc.base_epoch, None);
        let back = decode_weights(&enc, None).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn int8_roundtrip_is_within_its_bound_and_smaller() {
        let w = weights(3);
        let enc = encode_weights(CodecKind::Int8, 0, &w, None);
        let back = decode_weights(&enc, None).unwrap();
        let bound = int8_error_bound(&w);
        let diff = max_abs_diff(&w, &back);
        assert!(diff <= bound, "diff {diff} > bound {bound}");
        assert!(
            enc.wire_bytes() * 3 <= dense_wire_bytes(&w),
            "int8 {} vs dense {}",
            enc.wire_bytes(),
            dense_wire_bytes(&w)
        );
    }

    #[test]
    fn delta_without_reference_falls_back_to_dense() {
        let w = weights(5);
        let enc = encode_weights(CodecKind::DeltaTopK, 4, &w, None);
        assert_eq!(enc.base_epoch, None);
        assert!(enc
            .tensors
            .iter()
            .all(|t| matches!(t.body, EncodedBody::Dense(_))));
        assert_eq!(decode_weights(&enc, None).unwrap(), w);
    }

    #[test]
    fn delta_against_reference_is_sparse_exact_and_smaller() {
        let reference = weights(5);
        // Perturb the reference slightly — the realistic one-round drift.
        let mut moved = reference.clone();
        moved.add_scaled(&reference, 0.01).unwrap();
        let enc = encode_weights(CodecKind::DeltaTopK, 9, &moved, Some((8, &reference)));
        assert_eq!(enc.base_epoch, Some(8));
        assert!(enc
            .tensors
            .iter()
            .any(|t| matches!(t.body, EncodedBody::TopK { .. })));
        assert!(
            enc.wire_bytes() * 3 <= dense_wire_bytes(&moved),
            "delta {} vs dense {}",
            enc.wire_bytes(),
            dense_wire_bytes(&moved)
        );
        let back = decode_weights(&enc, Some(&reference)).unwrap();
        // Kept coefficients are exact; dropped ones revert to the
        // reference, so the error is bounded by the largest dropped
        // delta — here every delta is 1% of the reference magnitude.
        let bound = 0.011
            * reference
                .iter()
                .flat_map(|l| l.w.data().iter().chain(l.b.data()))
                .fold(0.0f32, |m, &x| m.max(x.abs()));
        let diff = max_abs_diff(&moved, &back);
        assert!(diff <= bound, "diff {diff} > bound {bound}");
    }

    #[test]
    fn delta_decode_without_reference_is_an_error_not_a_panic() {
        let reference = weights(2);
        let mut moved = reference.clone();
        moved.add_scaled(&reference, 0.5).unwrap();
        let enc = encode_weights(CodecKind::DeltaTopK, 1, &moved, Some((0, &reference)));
        assert!(decode_weights(&enc, None).is_err());
    }

    #[test]
    fn shape_mismatched_reference_falls_back_to_dense() {
        let w = weights(1);
        let other = zoo::tiny_mlp(16, 8, 2, 1).unwrap().weights();
        let enc = encode_weights(CodecKind::DeltaTopK, 2, &w, Some((1, &other)));
        assert_eq!(enc.base_epoch, None);
        assert_eq!(decode_weights(&enc, None).unwrap(), w);
    }

    #[test]
    fn wire_roundtrip_every_codec() {
        let reference = weights(11);
        let mut moved = reference.clone();
        moved.add_scaled(&reference, -0.02).unwrap();
        for enc in [
            encode_weights(CodecKind::Identity, 1, &moved, None),
            encode_weights(CodecKind::Int8, 2, &moved, None),
            encode_weights(CodecKind::DeltaTopK, 3, &moved, Some((2, &reference))),
        ] {
            let back: EncodedWeights = decode(&encode(&enc)).unwrap();
            assert_eq!(enc, back);
        }
    }

    #[test]
    fn wire_decode_rejects_hostile_sparse_indices() {
        let reference = weights(4);
        let mut moved = reference.clone();
        moved.add_scaled(&reference, 0.01).unwrap();
        let mut enc = encode_weights(CodecKind::DeltaTopK, 1, &moved, Some((0, &reference)));
        let sparse = enc
            .tensors
            .iter_mut()
            .find(|t| matches!(t.body, EncodedBody::TopK { .. }))
            .expect("a sparse tensor");
        if let EncodedBody::TopK { indices, .. } = &mut sparse.body {
            indices[0] = u32::MAX; // out of bounds and out of order
        }
        let bytes = encode(&enc);
        assert!(decode::<EncodedWeights>(&bytes).is_err());
        // In-memory decode re-validates too.
        assert!(decode_weights(&enc, Some(&reference)).is_err());
    }

    #[test]
    fn truncated_encodings_never_panic() {
        let w = weights(6);
        for kind in [CodecKind::Identity, CodecKind::Int8] {
            let bytes = encode(&encode_weights(kind, 0, &w, None));
            for cut in [1, bytes.len() / 3, bytes.len() - 1] {
                assert!(decode::<EncodedWeights>(&bytes[..cut]).is_err());
            }
        }
    }
}
