//! Training plans (the hyper-parameters the server ships to clients,
//! Figure 2-➋).

use serde::{Deserialize, Serialize};

use crate::{FlError, Result};

/// The server-chosen federated training plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingPlan {
    /// Number of FL cycles (rounds) to run.
    pub rounds: u64,
    /// Clients sampled per round (after TEE/attestation filtering).
    pub clients_per_round: usize,
    /// Batches each client trains per cycle. The reproduction's timing
    /// convention (see `gradsec-tee::cost`) is 10 batches per cycle.
    pub batches_per_cycle: usize,
    /// Mini-batch size (the paper's Table 6 uses 32).
    pub batch_size: usize,
    /// SGD learning rate `λ` (paper eq. 1).
    pub learning_rate: f32,
    /// Master seed for selection and shuffling.
    pub seed: u64,
}

impl TrainingPlan {
    /// Validates plan invariants.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for zero counts or a non-positive
    /// learning rate.
    pub fn validate(&self) -> Result<()> {
        if self.rounds == 0 {
            return Err(FlError::BadConfig {
                reason: "rounds must be positive".to_owned(),
            });
        }
        if self.clients_per_round == 0 {
            return Err(FlError::BadConfig {
                reason: "clients_per_round must be positive".to_owned(),
            });
        }
        if self.batches_per_cycle == 0 || self.batch_size == 0 {
            return Err(FlError::BadConfig {
                reason: "batches_per_cycle and batch_size must be positive".to_owned(),
            });
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err(FlError::BadConfig {
                reason: format!("learning rate must be positive, got {}", self.learning_rate),
            });
        }
        Ok(())
    }
}

/// Which transport a built federation wires its clients onto.
///
/// Both transports speak the identical envelope protocol, so a run is
/// bit-identical whichever is chosen (asserted by
/// `tests/integration_transport.rs` at the workspace root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TransportKind {
    /// Zero-copy in-process dispatch (the default): client cycles run on
    /// the execution engine's worker threads.
    #[default]
    InProcess,
    /// Loopback TCP: one socket and one service thread per client, the
    /// round exchange crossing real sockets.
    Tcp,
}

impl Default for TrainingPlan {
    /// The paper's evaluation defaults: batch 32, 10 batches per cycle.
    fn default() -> Self {
        TrainingPlan {
            rounds: 10,
            clients_per_round: 4,
            batches_per_cycle: 10,
            batch_size: 32,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let p = TrainingPlan::default();
        p.validate().unwrap();
        assert_eq!(p.batch_size, 32);
        assert_eq!(p.batches_per_cycle, 10);
    }

    #[test]
    fn validation_catches_zeroes() {
        for bad in [
            TrainingPlan {
                rounds: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                clients_per_round: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                batches_per_cycle: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                batch_size: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                learning_rate: 0.0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                learning_rate: -1.0,
                ..TrainingPlan::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }
}
