//! Training plans (the hyper-parameters the server ships to clients,
//! Figure 2-➋).

use serde::{Deserialize, Serialize};

use crate::{FlError, Result};

/// The server-chosen federated training plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingPlan {
    /// Number of FL cycles (rounds) to run.
    pub rounds: u64,
    /// Clients sampled per round (after TEE/attestation filtering).
    pub clients_per_round: usize,
    /// Batches each client trains per cycle. The reproduction's timing
    /// convention (see `gradsec-tee::cost`) is 10 batches per cycle.
    pub batches_per_cycle: usize,
    /// Mini-batch size (the paper's Table 6 uses 32).
    pub batch_size: usize,
    /// SGD learning rate `λ` (paper eq. 1).
    pub learning_rate: f32,
    /// Master seed for selection and shuffling.
    pub seed: u64,
}

impl TrainingPlan {
    /// Validates plan invariants.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for zero counts or a non-positive
    /// learning rate.
    pub fn validate(&self) -> Result<()> {
        if self.rounds == 0 {
            return Err(FlError::BadConfig {
                reason: "rounds must be positive".to_owned(),
            });
        }
        if self.clients_per_round == 0 {
            return Err(FlError::BadConfig {
                reason: "clients_per_round must be positive".to_owned(),
            });
        }
        if self.batches_per_cycle == 0 || self.batch_size == 0 {
            return Err(FlError::BadConfig {
                reason: "batches_per_cycle and batch_size must be positive".to_owned(),
            });
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err(FlError::BadConfig {
                reason: format!("learning rate must be positive, got {}", self.learning_rate),
            });
        }
        Ok(())
    }
}

/// Which transport a built federation wires its clients onto.
///
/// Every transport speaks the identical envelope protocol, so a run is
/// bit-identical whichever is chosen (asserted by
/// `tests/integration_transport.rs` and `tests/integration_mux.rs` at the
/// workspace root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TransportKind {
    /// Zero-copy in-process dispatch (the default): client cycles run on
    /// the execution engine's worker threads.
    #[default]
    InProcess,
    /// Loopback TCP: one socket and one service thread per client, the
    /// round exchange crossing real sockets.
    Tcp,
    /// Multiplexed loopback TCP: one socket per client, but client
    /// sessions are served by a small fixed pool of event-loop threads
    /// over nonblocking sockets (see `transport::mux`) — the fan-in shape
    /// for tens of thousands of sessions on one host. Tuned via
    /// [`MuxOptions`].
    TcpMux,
}

/// Tuning knobs for the [`TransportKind::TcpMux`] transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxOptions {
    /// Event-loop threads serving the fleet; `0` (the default) means one
    /// per available core. Clamped to the session count.
    pub loops: usize,
    /// Bytes each event loop reads per nonblocking `read` call (the
    /// shared read scratch size). Must be positive.
    pub read_chunk: usize,
    /// Per-session write-queue bound in bytes: while a session has at
    /// least this many reply bytes queued, its reads pause until the
    /// peer drains the queue (backpressure instead of unbounded
    /// buffering). Must be positive and large enough for one encoded
    /// reply to make progress — replies themselves are never split
    /// across the bound, only delayed by it.
    pub write_bound: usize,
}

impl Default for MuxOptions {
    /// One loop per core, 64 KiB read chunks, 4 MiB write bound.
    fn default() -> Self {
        MuxOptions {
            loops: 0,
            read_chunk: 64 * 1024,
            write_bound: 4 * 1024 * 1024,
        }
    }
}

impl MuxOptions {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for a zero read chunk or write
    /// bound.
    pub fn validate(&self) -> Result<()> {
        if self.read_chunk == 0 {
            return Err(FlError::BadConfig {
                reason: "mux read_chunk must be positive".to_owned(),
            });
        }
        if self.write_bound == 0 {
            return Err(FlError::BadConfig {
                reason: "mux write_bound must be positive".to_owned(),
            });
        }
        Ok(())
    }

    /// The configured loop count, with `0` resolved to one loop per
    /// available core (at least one).
    pub fn effective_loops(&self) -> usize {
        if self.loops > 0 {
            return self.loops;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// How the training dataset is partitioned across the client fleet.
///
/// The choice rides the `ShardConfig` to distributed shard processes by
/// name (like backend and codec), so every execution path derives the
/// identical per-client partition from `(kind, dataset, plan seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PartitionKind {
    /// Seeded uniform shuffle into near-equal shards — every client sees
    /// an IID sample of the label distribution (the default, via
    /// `gradsec_data::split::shard`).
    #[default]
    Iid,
    /// Label-skewed non-IID shards: samples grouped by label and dealt
    /// as contiguous chunks, so each client holds as few distinct
    /// classes as its shard size allows (via
    /// `gradsec_data::split::shard_by_label`).
    ByLabel,
}

impl PartitionKind {
    /// Stable wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionKind::Iid => "iid",
            PartitionKind::ByLabel => "by-label",
        }
    }

    /// Parses a [`name`](Self::name) back; `None` for unknown names.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "iid" => Some(PartitionKind::Iid),
            "by-label" => Some(PartitionKind::ByLabel),
            _ => None,
        }
    }
}

/// How a registered client fleet is partitioned across engine shards.
///
/// The layout is *contiguous*: shard `s` owns clients
/// `[offset(s), offset(s+1))` in registration (id) order, near-equal in
/// size with the remainder spread over the first shards — the same
/// convention `gradsec_data::split::shard` uses for data. Contiguity is
/// what keeps a sharded run bit-identical to a flat one: walking shard
/// 0, 1, … visits clients in exactly the global order, so the server's
/// screening RNG stream and the global selection slots never notice the
/// partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLayout {
    /// `shards + 1` cumulative offsets; `offsets[s]..offsets[s+1]` is
    /// shard `s`'s global client range.
    offsets: Vec<usize>,
}

impl ShardLayout {
    /// Partitions `num_clients` clients into `shards` contiguous shards.
    /// The shard count is clamped to `1..=max(1, num_clients)`, so asking
    /// for more shards than clients degrades to one client per shard.
    pub fn new(num_clients: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, num_clients.max(1));
        let base = num_clients / shards;
        let extra = num_clients % shards;
        let mut offsets = Vec::with_capacity(shards + 1);
        let mut at = 0;
        offsets.push(at);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            offsets.push(at);
        }
        ShardLayout { offsets }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total clients across all shards.
    pub fn num_clients(&self) -> usize {
        *self.offsets.last().expect("layout has at least one offset")
    }

    /// Shard `s`'s global client range.
    ///
    /// # Panics
    ///
    /// Panics when `s >= num_shards()`.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.offsets[s]..self.offsets[s + 1]
    }

    /// The shard owning global client `client`.
    ///
    /// # Panics
    ///
    /// Panics when `client >= num_clients()`.
    pub fn shard_of(&self, client: usize) -> usize {
        assert!(
            client < self.num_clients(),
            "client {client} out of range for {} clients",
            self.num_clients()
        );
        // Picks arrive sorted, so a linear bucket walk would do; binary
        // search keeps this robust to arbitrary order too.
        match self.offsets.binary_search(&client) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Splits a sorted global pick set into per-shard *local* pick lists,
    /// index-aligned with the shards.
    ///
    /// Global order is preserved: concatenating the per-shard lists
    /// (offset restored) in shard order reproduces `picked` exactly, which
    /// is what lets per-shard selection slots be assigned by prefix sums.
    ///
    /// # Panics
    ///
    /// Panics when a pick is `>= num_clients()` (schedules are validated
    /// by `selection::validate_picks` before they get here).
    pub fn split_picks(&self, picked: &[usize]) -> Vec<Vec<usize>> {
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.num_shards()];
        for &p in picked {
            let s = self.shard_of(p);
            per_shard[s].push(p - self.offsets[s]);
        }
        per_shard
    }
}

impl Default for TrainingPlan {
    /// The paper's evaluation defaults: batch 32, 10 batches per cycle.
    fn default() -> Self {
        TrainingPlan {
            rounds: 10,
            clients_per_round: 4,
            batches_per_cycle: 10,
            batch_size: 32,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let p = TrainingPlan::default();
        p.validate().unwrap();
        assert_eq!(p.batch_size, 32);
        assert_eq!(p.batches_per_cycle, 10);
    }

    #[test]
    fn shard_layout_partitions_contiguously() {
        let l = ShardLayout::new(10, 4);
        assert_eq!(l.num_shards(), 4);
        assert_eq!(l.num_clients(), 10);
        // Near-equal, remainder on the first shards, contiguous cover.
        assert_eq!(l.range(0), 0..3);
        assert_eq!(l.range(1), 3..6);
        assert_eq!(l.range(2), 6..8);
        assert_eq!(l.range(3), 8..10);
    }

    #[test]
    fn shard_layout_clamps_degenerate_counts() {
        assert_eq!(ShardLayout::new(3, 0).num_shards(), 1);
        assert_eq!(ShardLayout::new(3, 8).num_shards(), 3);
        let empty = ShardLayout::new(0, 4);
        assert_eq!(empty.num_shards(), 1);
        assert_eq!(empty.num_clients(), 0);
    }

    #[test]
    fn split_picks_preserves_global_order() {
        let l = ShardLayout::new(10, 4);
        let per_shard = l.split_picks(&[0, 2, 3, 6, 8, 9]);
        assert_eq!(per_shard, vec![vec![0, 2], vec![0], vec![0], vec![0, 1]]);
        // Restoring offsets in shard order reproduces the global picks.
        let mut restored = Vec::new();
        for (s, locals) in per_shard.iter().enumerate() {
            restored.extend(locals.iter().map(|&i| i + l.range(s).start));
        }
        assert_eq!(restored, vec![0, 2, 3, 6, 8, 9]);
    }

    #[test]
    fn mux_options_validate_and_resolve_loops() {
        let defaults = MuxOptions::default();
        defaults.validate().unwrap();
        assert!(defaults.effective_loops() >= 1);
        assert_eq!(
            MuxOptions {
                loops: 3,
                ..defaults
            }
            .effective_loops(),
            3
        );
        assert!(MuxOptions {
            read_chunk: 0,
            ..defaults
        }
        .validate()
        .is_err());
        assert!(MuxOptions {
            write_bound: 0,
            ..defaults
        }
        .validate()
        .is_err());
    }

    #[test]
    fn validation_catches_zeroes() {
        for bad in [
            TrainingPlan {
                rounds: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                clients_per_round: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                batches_per_cycle: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                batch_size: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                learning_rate: 0.0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                learning_rate: -1.0,
                ..TrainingPlan::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }
}
