//! Multi-process federation: shard-server processes driven by a mux
//! coordinator.
//!
//! [`ShardedFederation`](crate::runner::ShardedFederation) scales the
//! fleet across engine shards inside one process; this module promotes
//! each shard to its own OS process. A [`DistributedCoordinator`] spawns
//! `shard-server` children (the thin binary in `src/bin/shard_server.rs`
//! over [`serve_shard`]), each hosting one contiguous
//! [`ShardLayout`] client range behind the existing envelope protocol,
//! and drives selection, screening and round execution over loopback
//! TCP:
//!
//! ```text
//!  coordinator process                    shard-server processes
//!  ┌─────────────────────────┐   TCP     ┌───────────────────────────┐
//!  │ FlServer (RNG, model,   │◄────────► │ shard 0: clients [0, a)   │
//!  │ history, sampling)      │  envelope │   engine × W workers      │
//!  │ ProtectionScheduler     │◄────────► │ shard 1: clients [a, b)   │
//!  │ quote verification      │   one     │   engine × W workers      │
//!  │ PartialAggregate fold   │◄────────► │ shard 2: clients [b, n)   │
//!  │ RoundLedger merge       │  channel  │   engine × W workers      │
//!  └─────────────────────────┘  per shard└───────────────────────────┘
//! ```
//!
//! The determinism contract is unchanged: because every RNG consumption
//! happens on the coordinator ([`FlServer::screen_plan`] draws the
//! candidate sub-sample and the attestation nonces in global candidate
//! order, [`FlServer::sample_screened`] does the single shuffle), because
//! quote *verification* stays on the coordinator against its own
//! provisioning registry, and because shard replies come back tagged with
//! *global* selection slots folded in canonical order through the same
//! [`finish_round`] the in-process runners use, a distributed run over
//! `(S shard processes × W workers)` is bit-identical to the flat
//! in-process reference — gated by `repro_distributed` and
//! `tests/integration_distributed.rs`.
//!
//! Shard-failure semantics: a shard process that crashes, hangs past the
//! reply deadline, or answers garbage is billed and excluded like a
//! straggler cohort — its picked clients become failed outcomes with
//! zero-cost ledger entries and the round commits from the surviving
//! shards. [`FlError::RoundCollapsed`] is raised only when *nothing*
//! commits. A dead shard stays dead (and is reaped at
//! [`shutdown`](DistributedCoordinator::shutdown)); later rounds simply
//! screen its clients as unreachable.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gradsec_data::{Dataset, SyntheticCifar100, SyntheticMicro};
use gradsec_nn::{zoo, BackendKind, Sequential};
use gradsec_tee::attestation::Measurement;
use gradsec_tee::cost::{ClientCycleCost, RoundLedger};
use gradsec_tee::crypto::sha256::sha256;

use crate::adversary::{Adversary, AdversaryPlan, ReputationBook};
use crate::aggregate::{Aggregator, PartialAggregate};
use crate::client::{DeviceProfile, FlClient};
use crate::codec::CodecKind;
use crate::config::{PartitionKind, ShardLayout, TrainingPlan};
use crate::engine::{ClientOutcome, ExecutionEngine};
use crate::faults::{FaultPlan, FaultyEndpoint};
use crate::message::{
    encode, negotiate_version, parse_envelope_head, DatasetSpec, Envelope, MessageKind, ModelSpec,
    ScreenProbe, ShardConfig, ShardConfigAck, ShardHello, ShardHelloAck, ShardOutcome,
    ShardOutcomeKind, ShardRound, ShardRoundReply, ShardScreen, ShardScreenReply,
    ENVELOPE_HEADER_LEN, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use crate::runner::{finish_round, FederationReport, RoundReport};
use crate::scheduler::{NoProtection, ProtectionScheduler};
use crate::selection::{verify_evidence, ScreeningOutcome};
use crate::server::FlServer;
use crate::trainer::PlainSgdTrainer;
use crate::transport::inprocess::LocalEndpoint;
use crate::transport::mux::DEFAULT_JOIN_GRACE;
use crate::transport::{RemoteClient, ServerEndpoint};
use crate::{FlError, Result};

/// How long `launch` waits for every spawned shard-server to connect
/// back before declaring the fleet dead on arrival.
const CONNECT_GRACE: Duration = Duration::from_secs(60);

/// Environment variable overriding where the `shard-server` binary
/// lives (used by CI and the repro gates to pin an already-built one).
pub const SHARD_SERVER_ENV: &str = "GRADSEC_SHARD_SERVER";

// ---------------------------------------------------------------------
// Shard channel: blocking envelope I/O over one TCP stream.
// ---------------------------------------------------------------------

/// One framed envelope channel between the coordinator and a
/// shard-server process: the envelope header doubles as the length
/// prefix, exactly as on the per-client TCP transport. Counts bytes in
/// both directions so the repro gates can report wire overhead, and
/// supports a read deadline so a hung shard is detected rather than
/// waited on forever.
struct ShardChannel {
    stream: TcpStream,
    peer: String,
    bytes_out: u64,
    bytes_in: u64,
}

impl ShardChannel {
    fn new(stream: TcpStream) -> Result<Self> {
        stream
            .set_nodelay(true)
            .map_err(|e| FlError::transport("configuring shard channel", e))?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_owned());
        Ok(ShardChannel {
            stream,
            peer,
            bytes_out: 0,
            bytes_in: 0,
        })
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| FlError::transport("setting shard read deadline", e))
    }

    fn send(&mut self, envelope: &Envelope) -> Result<()> {
        let bytes = encode(envelope);
        self.stream
            .write_all(&bytes)
            .map_err(|e| FlError::transport(format!("sending to shard {}", self.peer), e))?;
        self.bytes_out += bytes.len() as u64;
        Ok(())
    }

    fn recv(&mut self) -> Result<Envelope> {
        let mut header = [0u8; ENVELOPE_HEADER_LEN];
        self.stream.read_exact(&mut header).map_err(|e| {
            FlError::transport(format!("reading header from shard {}", self.peer), e)
        })?;
        let head = parse_envelope_head(&header)?;
        let mut payload = vec![0u8; head.payload_len];
        self.stream.read_exact(&mut payload).map_err(|e| {
            FlError::transport(format!("reading payload from shard {}", self.peer), e)
        })?;
        self.bytes_in += (ENVELOPE_HEADER_LEN + payload.len()) as u64;
        Ok(Envelope {
            version: head.version,
            kind: head.kind,
            payload,
        })
    }
}

// ---------------------------------------------------------------------
// Shard-server binary resolution.
// ---------------------------------------------------------------------

/// Finds the `shard-server` binary: the [`SHARD_SERVER_ENV`] override,
/// then a sibling of the current executable (covers `cargo test`, whose
/// harness binaries live next to — or in `deps/` under — the bin
/// targets), and as a last resort a `cargo build` of the bin target
/// (covers `cargo run -p` of another package, which never builds this
/// crate's bins).
fn resolve_shard_server() -> Result<PathBuf> {
    if let Some(p) = std::env::var_os(SHARD_SERVER_ENV) {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(FlError::BadConfig {
            reason: format!(
                "{SHARD_SERVER_ENV} points at a missing file: {}",
                p.display()
            ),
        });
    }
    let exe = std::env::current_exe()
        .map_err(|e| FlError::transport("locating current executable", e))?;
    let name = format!("shard-server{}", std::env::consts::EXE_SUFFIX);
    let mut dirs: Vec<PathBuf> = Vec::new();
    if let Some(dir) = exe.parent() {
        dirs.push(dir.to_path_buf());
        // Test harness binaries live one level down, in target/<p>/deps.
        if dir.file_name().is_some_and(|n| n == "deps") {
            if let Some(parent) = dir.parent() {
                dirs.push(parent.to_path_buf());
            }
        }
    }
    for dir in &dirs {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    // Not built yet: build it. Profile follows the caller's own build.
    let release = exe.components().any(|c| c.as_os_str() == "release");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let mut cmd = Command::new(cargo);
    cmd.args(["build", "-p", "gradsec-fl", "--bin", "shard-server"]);
    if release {
        cmd.arg("--release");
    }
    let status = cmd
        .status()
        .map_err(|e| FlError::transport("building shard-server", e))?;
    if !status.success() {
        return Err(FlError::BadConfig {
            reason: format!("cargo build of shard-server failed: {status}"),
        });
    }
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .or_else(|| {
            exe.ancestors()
                .find(|a| a.file_name().is_some_and(|n| n == "target"))
                .map(Path::to_path_buf)
        })
        .unwrap_or_else(|| PathBuf::from("target"));
    let built = target
        .join(if release { "release" } else { "debug" })
        .join(&name);
    if built.is_file() {
        Ok(built)
    } else {
        Err(FlError::BadConfig {
            reason: format!(
                "built shard-server not found at {} (set {SHARD_SERVER_ENV} to its path)",
                built.display()
            ),
        })
    }
}

// ---------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------

/// Configures and launches a [`DistributedCoordinator`].
///
/// Unlike [`FederationBuilder`](crate::runner::FederationBuilder) —
/// whose model/trainer factories are arbitrary closures — the
/// distributed builder takes *recipes* ([`DatasetSpec`], [`ModelSpec`])
/// that travel over the wire, because a shard-server process must
/// reconstruct the identical fleet from bytes alone. Shard servers
/// provision all-TrustZone [`DeviceProfile`]s and the plain SGD trainer
/// (the builder defaults); heterogeneous device mixes and custom
/// trainers stay in-process for now.
pub struct DistributedBuilder {
    plan: TrainingPlan,
    dataset: Option<DatasetSpec>,
    model: Option<ModelSpec>,
    clients: usize,
    shards: usize,
    workers: usize,
    backend: BackendKind,
    codec: CodecKind,
    faults: Option<FaultPlan>,
    adversaries: Option<AdversaryPlan>,
    aggregator: Aggregator,
    partition: PartitionKind,
    reputation: Option<ReputationBook>,
    screening_sample: Option<usize>,
    scheduler: Arc<dyn ProtectionScheduler>,
    measurement: Measurement,
    reply_timeout: Option<Duration>,
}

impl DistributedBuilder {
    /// Starts a builder for `plan`.
    pub fn new(plan: TrainingPlan) -> Self {
        DistributedBuilder {
            plan,
            dataset: None,
            model: None,
            clients: 0,
            shards: 1,
            workers: 1,
            backend: BackendKind::from_env(),
            codec: CodecKind::from_env(),
            faults: None,
            adversaries: None,
            aggregator: Aggregator::FedAvg,
            partition: PartitionKind::Iid,
            reputation: None,
            screening_sample: None,
            scheduler: Arc::new(NoProtection),
            measurement: Measurement(sha256(b"gradsec-ta-code-v1")),
            reply_timeout: None,
        }
    }

    /// Sets the fleet: `n` clients sharing the dataset `spec`
    /// (partitioned by the same global derivation the flat reference
    /// uses — IID sharding by default, label-skewed via
    /// [`partition`](Self::partition)).
    pub fn clients(mut self, n: usize, spec: DatasetSpec) -> Self {
        self.clients = n;
        self.dataset = Some(spec);
        self
    }

    /// Sets the model recipe every process builds.
    pub fn model(mut self, spec: ModelSpec) -> Self {
        self.model = Some(spec);
        self
    }

    /// Number of shard-server processes to spawn (clamped to the client
    /// count, like [`ShardLayout::new`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Engine worker threads *per shard process* (`0` = one per core).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the kernel backend every shard process uses.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the update codec every shard's sessions negotiate
    /// (shipped by name in the [`ShardConfig`]; defaults to the
    /// `GRADSEC_CODEC` environment variable, falling back to
    /// [`CodecKind::Identity`]).
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Installs a deterministic fault plan (shipped to every shard;
    /// selection over-provisions by the plan's spare count, exactly as
    /// in-process).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Installs a deterministic adversarial scenario (shipped to every
    /// shard; persona assignment is a pure function of the scenario
    /// seed and the *global* client id, so the hostile subset is
    /// identical to an in-process run over the same plan).
    pub fn adversaries(mut self, plan: AdversaryPlan) -> Self {
        self.adversaries = Some(plan);
        self
    }

    /// Selects the aggregation rule committed on the coordinator
    /// (defaults to plain FedAvg; robust variants defend against
    /// hostile uploads).
    pub fn aggregator(mut self, aggregator: Aggregator) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Selects how the dataset is partitioned across clients (shipped
    /// by name in the [`ShardConfig`]; defaults to IID).
    pub fn partition(mut self, partition: PartitionKind) -> Self {
        self.partition = partition;
        self
    }

    /// Enables reputation-filtered selection on the coordinator:
    /// clients whose accumulated outcome score falls below `threshold`
    /// stop being screened (see [`crate::adversary::ReputationBook`]).
    pub fn reputation(mut self, threshold: i64) -> Self {
        self.reputation = Some(ReputationBook::new(threshold));
        self
    }

    /// Caps per-round screening at `m` sub-sampled candidates (see
    /// [`FlServer::set_screening_sample`]).
    pub fn screening_sample(mut self, m: usize) -> Self {
        self.screening_sample = Some(m);
        self
    }

    /// Sets the protection scheduler driving every round's sheltered
    /// layer set.
    pub fn scheduler<S>(mut self, s: S) -> Self
    where
        S: ProtectionScheduler + 'static,
    {
        self.scheduler = Arc::new(s);
        self
    }

    /// Overrides the whitelisted TA measurement.
    pub fn measurement(mut self, m: Measurement) -> Self {
        self.measurement = m;
        self
    }

    /// Bounds how long the coordinator waits for any one shard reply; a
    /// shard that blows the deadline is billed and excluded like a
    /// crashed one. `None` (the default) waits indefinitely.
    pub fn reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = Some(timeout);
        self
    }

    /// Spawns the shard-server processes, performs the shard-control
    /// handshake and configuration, and returns the ready coordinator.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] on invalid configuration,
    /// [`FlError::Transport`] when spawning/connecting fails, and
    /// [`FlError::Protocol`] on a handshake violation.
    pub fn launch(self) -> Result<DistributedCoordinator> {
        self.plan.validate()?;
        if let Some(p) = &self.faults {
            p.validate()?;
        }
        if let Some(p) = &self.adversaries {
            p.validate()?;
        }
        self.aggregator.validate()?;
        let dataset = self.dataset.ok_or(FlError::BadConfig {
            reason: "distributed federation needs a dataset spec".to_owned(),
        })?;
        let model = self.model.ok_or(FlError::BadConfig {
            reason: "distributed federation needs a model spec".to_owned(),
        })?;
        if self.clients == 0 {
            return Err(FlError::BadConfig {
                reason: "distributed federation needs at least one client".to_owned(),
            });
        }
        let prototype = build_model(&model)?;
        let n_layers = prototype.num_layers();
        let init_weights = prototype.weights();
        let mut server = FlServer::new(self.plan, init_weights.clone(), self.measurement)?;
        if let Some(p) = &self.faults {
            server.overprovision(p.spare_count());
        }
        server.set_screening_sample(self.screening_sample);
        server.set_reputation(self.reputation);
        let layout = ShardLayout::new(self.clients, self.shards);

        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| FlError::transport("binding coordinator listener", e))?;
        let addr: SocketAddr = listener
            .local_addr()
            .map_err(|e| FlError::transport("reading coordinator address", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| FlError::transport("configuring coordinator listener", e))?;

        let binary = resolve_shard_server()?;
        let mut shards: Vec<ShardSlot> = Vec::with_capacity(layout.num_shards());
        for _ in 0..layout.num_shards() {
            let child = Command::new(&binary)
                .arg(addr.to_string())
                .stdin(Stdio::null())
                .spawn()
                .map_err(|e| FlError::transport(format!("spawning {}", binary.display()), e))?;
            shards.push(ShardSlot {
                channel: None,
                child,
                reaped: false,
                deliberately_killed: false,
            });
        }
        let mut coordinator = DistributedCoordinator {
            server,
            layout,
            scheduler: self.scheduler,
            faults: self.faults,
            adversaries: self.adversaries,
            aggregator: self.aggregator,
            partition: self.partition,
            measurement: self.measurement,
            n_layers,
            reply_timeout: self.reply_timeout,
            shards,
            retired_bytes: (0, 0),
            torn_down: false,
        };
        // Accept-and-handshake inside a closure so any failure still
        // tears the children down via the coordinator's Drop.
        let setup = (|| -> Result<()> {
            // Accept one connection per shard; identity is assigned by
            // arrival order (shard servers are symmetric until
            // configured). Poll so a child that died before connecting
            // fails the launch instead of hanging it.
            let deadline = Instant::now() + CONNECT_GRACE;
            for s in 0..coordinator.shards.len() {
                let stream = loop {
                    match listener.accept() {
                        Ok((stream, _)) => break stream,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            for slot in &mut coordinator.shards {
                                if let Ok(Some(status)) = slot.child.try_wait() {
                                    slot.reaped = true;
                                    return Err(FlError::Protocol {
                                        reason: format!(
                                            "shard-server exited before connecting: {status}"
                                        ),
                                    });
                                }
                            }
                            if Instant::now() > deadline {
                                return Err(FlError::disconnected(
                                    "waiting for shard-server connections",
                                ));
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(e) => return Err(FlError::transport("accepting shard connection", e)),
                    }
                };
                stream
                    .set_nonblocking(false)
                    .map_err(|e| FlError::transport("configuring shard stream", e))?;
                let mut channel = ShardChannel::new(stream)?;
                let hello: ShardHello = channel.recv()?.open(MessageKind::ShardHello)?;
                // Arrival order assigns shard identity, but the child
                // handles sit in *spawn* order — pair each connection
                // with its process via the hello's pid, or a later
                // kill/teardown would target the wrong child. Slots
                // before `s` are already paired, so only the tail is
                // searched (and swapped while both channels are None).
                let k = coordinator.shards[s..]
                    .iter()
                    .position(|slot| u64::from(slot.child.id()) == hello.pid)
                    .map(|offset| s + offset)
                    .ok_or(FlError::Protocol {
                        reason: format!("connection from unknown shard-server pid {}", hello.pid),
                    })?;
                coordinator.shards.swap(s, k);
                let version = negotiate_version(hello.min_version, hello.max_version).ok_or(
                    FlError::Protocol {
                        reason: format!(
                            "shard-server speaks versions {}..={}, coordinator {}..={}",
                            hello.min_version,
                            hello.max_version,
                            MIN_SUPPORTED_VERSION,
                            PROTOCOL_VERSION
                        ),
                    },
                )?;
                channel.send(&Envelope::pack(
                    MessageKind::ShardHelloAck,
                    &ShardHelloAck {
                        version,
                        shard_index: s as u64,
                    },
                ))?;
                coordinator.shards[s].channel = Some(channel);
            }
            // Configure all shards, then collect all acks: fleet wiring
            // is the expensive part and this pipelines it across
            // processes.
            for s in 0..coordinator.shards.len() {
                let range = coordinator.layout.range(s);
                let config = ShardConfig {
                    shard_index: s as u64,
                    range_start: range.start as u64,
                    range_end: range.end as u64,
                    total_clients: coordinator.layout.num_clients() as u64,
                    dataset,
                    model,
                    init_weights: init_weights.clone(),
                    plan: coordinator.server.plan().to_owned(),
                    backend: self.backend.name().to_owned(),
                    codec: self.codec.name().to_owned(),
                    workers: self.workers as u64,
                    measurement: coordinator.measurement,
                    faults: coordinator.faults.clone(),
                    partition: coordinator.partition.name().to_owned(),
                    adversaries: coordinator.adversaries.clone(),
                };
                coordinator.shards[s]
                    .channel
                    .as_mut()
                    .expect("channel just installed")
                    .send(&Envelope::pack(MessageKind::ShardConfig, &config))?;
            }
            for s in 0..coordinator.shards.len() {
                let range = coordinator.layout.range(s);
                let ack: ShardConfigAck = coordinator.shards[s]
                    .channel
                    .as_mut()
                    .expect("channel just installed")
                    .recv()?
                    .open(MessageKind::ShardConfigAck)?;
                if ack.clients != range.len() as u64 {
                    return Err(FlError::Protocol {
                        reason: format!(
                            "shard {s} wired {} clients, expected {}",
                            ack.clients,
                            range.len()
                        ),
                    });
                }
            }
            Ok(())
        })();
        match setup {
            Ok(()) => Ok(coordinator),
            Err(e) => {
                let _ = coordinator.teardown();
                Err(e)
            }
        }
    }
}

/// One shard-server process as the coordinator tracks it: the control
/// channel (dropped once the shard is declared dead) and the child
/// process handle.
struct ShardSlot {
    channel: Option<ShardChannel>,
    child: Child,
    reaped: bool,
    deliberately_killed: bool,
}

/// Drives a fleet of `shard-server` processes through FL rounds — the
/// multi-process counterpart of
/// [`ShardedFederation`](crate::runner::ShardedFederation), with the
/// identical determinism contract (see the [module docs](self)).
pub struct DistributedCoordinator {
    server: FlServer,
    layout: ShardLayout,
    scheduler: Arc<dyn ProtectionScheduler>,
    faults: Option<FaultPlan>,
    adversaries: Option<AdversaryPlan>,
    aggregator: Aggregator,
    partition: PartitionKind,
    measurement: Measurement,
    n_layers: usize,
    reply_timeout: Option<Duration>,
    shards: Vec<ShardSlot>,
    /// Bytes (out, in) accumulated from channels already dropped.
    retired_bytes: (u64, u64),
    torn_down: bool,
}

impl std::fmt::Debug for DistributedCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedCoordinator")
            .field("shards", &self.shards.len())
            .field("clients", &self.layout.num_clients())
            .field("round", &self.server.round())
            .finish()
    }
}

impl DistributedCoordinator {
    /// Starts a builder.
    pub fn builder(plan: TrainingPlan) -> DistributedBuilder {
        DistributedBuilder::new(plan)
    }

    /// The server (model, history, round counter).
    pub fn server(&self) -> &FlServer {
        &self.server
    }

    /// The shard layout.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Whether shard `s`'s process is still connected.
    pub fn shard_alive(&self, s: usize) -> bool {
        self.shards
            .get(s)
            .is_some_and(|slot| slot.channel.is_some())
    }

    /// Total envelope bytes `(sent, received)` across every shard
    /// channel this coordinator has driven, dead ones included.
    pub fn bytes_on_wire(&self) -> (u64, u64) {
        let mut out = self.retired_bytes.0;
        let mut inn = self.retired_bytes.1;
        for slot in &self.shards {
            if let Some(ch) = &slot.channel {
                out += ch.bytes_out;
                inn += ch.bytes_in;
            }
        }
        (out, inn)
    }

    /// Kills shard `s`'s process outright (SIGKILL) — the fault the
    /// stretch goal injects: the next round must bill and exclude the
    /// shard's cohort rather than fail the federation.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the kill itself fails.
    pub fn kill_shard(&mut self, s: usize) -> Result<()> {
        let slot = self.shards.get_mut(s).ok_or(FlError::BadConfig {
            reason: format!("no shard {s}"),
        })?;
        slot.deliberately_killed = true;
        slot.child
            .kill()
            .map_err(|e| FlError::transport(format!("killing shard {s}"), e))?;
        // Reap now so the child never lingers as a zombie; the socket
        // stays open until retired below.
        let _ = slot.child.wait();
        slot.reaped = true;
        self.retire_channel(s);
        Ok(())
    }

    /// Drops shard `s`'s channel, folding its byte counters into the
    /// retired totals. Idempotent.
    fn retire_channel(&mut self, s: usize) {
        if let Some(ch) = self.shards[s].channel.take() {
            self.retired_bytes.0 += ch.bytes_out;
            self.retired_bytes.1 += ch.bytes_in;
        }
    }

    /// Runs one FL cycle across the shard processes: screen (nonces
    /// drawn here, evidence verified here), sample, broadcast the
    /// download, fold the shard partials in canonical slot order, and
    /// commit through the same [`finish_round`] as the in-process
    /// runners.
    ///
    /// # Errors
    ///
    /// Propagates selection and aggregation failures;
    /// [`FlError::RoundCollapsed`] when every picked client (shard
    /// deaths included) failed to commit.
    pub fn run_round(&mut self) -> Result<RoundReport> {
        let round = self.server.round();
        let screen = self.server.screen_plan(self.layout.num_clients());
        // Partition this round's candidates by owning shard, remembering
        // each probe's position in the global candidate order so the
        // outcome vector can be reassembled index-aligned.
        let num_shards = self.shards.len();
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        let mut probes: Vec<Vec<ScreenProbe>> = vec![Vec::new(); num_shards];
        for (ci, (&g, ch)) in screen
            .candidates
            .iter()
            .zip(screen.challenges.iter())
            .enumerate()
        {
            let s = self.layout.shard_of(g);
            positions[s].push(ci);
            probes[s].push(ScreenProbe {
                local: (g - self.layout.range(s).start) as u64,
                challenge: *ch,
            });
        }
        // Candidates on a dead (or newly failing) shard screen as
        // unreachable — the same verdict an in-process fleet gives a
        // client whose endpoint is gone.
        let mut outcomes = vec![ScreeningOutcome::Unreachable; screen.candidates.len()];
        // Indexed loops throughout the fan-out: the body both reads the
        // per-shard vectors and mutably re-borrows `self` (retiring dead
        // channels), which an iterator over those vectors would pin.
        #[allow(clippy::needless_range_loop)]
        for s in 0..num_shards {
            if probes[s].is_empty() || self.shards[s].channel.is_none() {
                continue;
            }
            let msg = Envelope::pack(
                MessageKind::ShardScreen,
                &ShardScreen {
                    probes: std::mem::take(&mut probes[s]),
                },
            );
            if self.shards[s]
                .channel
                .as_mut()
                .expect("checked above")
                .send(&msg)
                .is_err()
            {
                self.retire_channel(s);
            }
        }
        #[allow(clippy::needless_range_loop)]
        for s in 0..num_shards {
            if positions[s].is_empty() || self.shards[s].channel.is_none() {
                continue;
            }
            let reply = self.shard_reply::<ShardScreenReply>(s, MessageKind::ShardScreenReply);
            match reply {
                Ok(reply) if reply.evidence.len() == positions[s].len() => {
                    for (&ci, evidence) in positions[s].iter().zip(reply.evidence) {
                        let g = screen.candidates[ci];
                        outcomes[ci] = match evidence {
                            None => ScreeningOutcome::Unreachable,
                            Some(resp) => verify_evidence(
                                &DeviceProfile::provisioned_key(g as u64),
                                resp.quote,
                                self.measurement,
                                &screen.challenges[ci],
                            ),
                        };
                    }
                }
                _ => self.retire_channel(s),
            }
        }
        let picked = self.server.sample_screened(&screen, &outcomes)?;

        let mut protected = self.scheduler.layers_for_round(round);
        protected.retain(|&l| l < self.n_layers);
        let download = self.server.download(protected.clone());

        // Fan the round out. With a contiguous layout and sorted picks,
        // shard s's picks occupy the contiguous global slot range
        // starting at the prefix count — that is each reply's slot_base.
        let split = self.layout.split_picks(&picked);
        let mut slot_base = vec![0usize; num_shards];
        let mut at = 0usize;
        for s in 0..num_shards {
            slot_base[s] = at;
            at += split[s].len();
        }
        let mut slots: Vec<Option<ClientOutcome>> = (0..picked.len()).map(|_| None).collect();
        let mut ledger = RoundLedger::new();
        let mut cohort_failed = false;
        for s in 0..num_shards {
            if split[s].is_empty() || self.shards[s].channel.is_none() {
                continue;
            }
            let msg = Envelope::pack(
                MessageKind::ShardRound,
                &ShardRound {
                    download: download.clone(),
                    picks: split[s].iter().map(|&p| p as u64).collect(),
                    slot_base: slot_base[s] as u64,
                },
            );
            if self.shards[s]
                .channel
                .as_mut()
                .expect("checked above")
                .send(&msg)
                .is_err()
            {
                self.retire_channel(s);
            }
        }
        for s in 0..num_shards {
            if split[s].is_empty() {
                continue;
            }
            let applied = if self.shards[s].channel.is_some() {
                match self.shard_reply::<ShardRoundReply>(s, MessageKind::ShardRoundReply) {
                    Ok(reply) => apply_shard_reply(
                        reply,
                        slot_base[s],
                        split[s].len(),
                        &mut slots,
                        &mut ledger,
                    )
                    .is_ok(),
                    Err(_) => false,
                }
            } else {
                false
            };
            if !applied {
                // The whole cohort is billed and excluded, straggler
                // style: failed outcomes with zero-cost ledger entries.
                self.retire_channel(s);
                cohort_failed = true;
                let range = self.layout.range(s);
                for (j, &local) in split[s].iter().enumerate() {
                    let client = (range.start + local) as u64;
                    ledger.record(ClientCycleCost::unbilled(client));
                    slots[slot_base[s] + j] = Some(ClientOutcome::Failed {
                        client,
                        error: FlError::ClientFailure {
                            client,
                            reason: format!("shard {s} process failed mid-round"),
                        },
                    });
                }
            }
        }
        let outcomes: Vec<ClientOutcome> = slots
            .into_iter()
            .enumerate()
            .map(|(slot, o)| {
                o.unwrap_or_else(|| {
                    let client = picked[slot] as u64;
                    ledger.record(ClientCycleCost::unbilled(client));
                    ClientOutcome::Failed {
                        client,
                        error: FlError::ClientFailure {
                            client,
                            reason: "coordinator lost the client's outcome".to_owned(),
                        },
                    }
                })
            })
            .collect();
        // A shard-process death is tolerated like a straggler cohort
        // even without a fault plan; the round errs only when nothing
        // committed (RoundCollapsed inside finish_round).
        let tolerate = self.faults.is_some() || cohort_failed;
        finish_round(
            &mut self.server,
            round,
            picked,
            outcomes,
            ledger,
            protected,
            tolerate,
            self.aggregator,
        )
    }

    /// Receives shard `s`'s reply under the configured deadline and
    /// opens it as `T`. Does *not* retire the channel on failure — the
    /// caller decides how a failure is billed.
    fn shard_reply<T: crate::message::Wire>(&mut self, s: usize, expect: MessageKind) -> Result<T> {
        let timeout = self.reply_timeout;
        let channel = self.shards[s]
            .channel
            .as_mut()
            .ok_or_else(|| FlError::disconnected(format!("shard {s} channel already retired")))?;
        channel.set_read_timeout(timeout)?;
        let reply = channel.recv();
        let _ = channel.set_read_timeout(None);
        reply?.open(expect)
    }

    /// Runs the full plan.
    ///
    /// # Errors
    ///
    /// Propagates round failures.
    pub fn run(&mut self) -> Result<FederationReport> {
        let mut report = FederationReport::default();
        for _ in 0..self.server.plan().rounds {
            let r = self.run_round()?;
            report.rounds.push(r);
            report.rounds_completed += 1;
        }
        Ok(report)
    }

    /// Tears the fleet down: sends every live shard a Goodbye, drops the
    /// channels (so a shard that lost the goodbye observes EOF), then
    /// waits for the child processes under the same watchdog discipline
    /// as `MuxFleet::join` — bounded by [`DEFAULT_JOIN_GRACE`],
    /// kill-on-timeout, first error surfaced. Called automatically on
    /// drop (best effort); call explicitly to observe teardown errors.
    ///
    /// # Errors
    ///
    /// Returns the first goodbye/exit failure encountered (deliberately
    /// killed shards excepted).
    pub fn shutdown(mut self) -> Result<()> {
        self.teardown()
    }

    fn teardown(&mut self) -> Result<()> {
        if self.torn_down {
            return Ok(());
        }
        self.torn_down = true;
        let mut first_err: Option<FlError> = None;
        for s in 0..self.shards.len() {
            if let Some(ch) = self.shards[s].channel.as_mut() {
                if let Err(e) = ch.send(&Envelope::control(MessageKind::Goodbye)) {
                    first_err.get_or_insert(e);
                }
            }
            // Dropping the channel closes the socket: a shard whose
            // goodbye was lost sees EOF and exits instead of hanging
            // the wait below.
            self.retire_channel(s);
        }
        let deadline = Instant::now() + DEFAULT_JOIN_GRACE;
        loop {
            let mut all_done = true;
            for slot in &mut self.shards {
                if slot.reaped {
                    continue;
                }
                match slot.child.try_wait() {
                    Ok(Some(status)) => {
                        slot.reaped = true;
                        if !status.success() && !slot.deliberately_killed {
                            first_err.get_or_insert(FlError::Protocol {
                                reason: format!("shard-server exited with {status}"),
                            });
                        }
                    }
                    Ok(None) => all_done = false,
                    Err(e) => {
                        slot.reaped = true;
                        first_err.get_or_insert(FlError::transport("waiting for shard-server", e));
                    }
                }
            }
            if all_done {
                break;
            }
            if Instant::now() > deadline {
                for slot in &mut self.shards {
                    if slot.reaped {
                        continue;
                    }
                    let _ = slot.child.kill();
                    let _ = slot.child.wait();
                    slot.reaped = true;
                    if !slot.deliberately_killed {
                        first_err.get_or_insert(FlError::Protocol {
                            reason: "shard-server ignored goodbye past the join grace; killed"
                                .to_owned(),
                        });
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for DistributedCoordinator {
    fn drop(&mut self) {
        let _ = self.teardown();
    }
}

/// Validates and applies one shard's round reply: every slot must fall
/// in the shard's `[slot_base, slot_base + picks)` window exactly once
/// (full coverage — the shard accounts every pick, success or not).
/// Nothing is written to `slots`/`ledger` unless the whole reply
/// validates, so a garbled reply degrades to a clean cohort failure.
fn apply_shard_reply(
    reply: ShardRoundReply,
    slot_base: usize,
    picks: usize,
    slots: &mut [Option<ClientOutcome>],
    ledger: &mut RoundLedger,
) -> Result<()> {
    let mut seen = vec![false; picks];
    let mut mark = |slot: usize| -> Result<()> {
        let local =
            slot.checked_sub(slot_base)
                .filter(|&l| l < picks)
                .ok_or(FlError::Protocol {
                    reason: format!(
                        "shard reply slot {slot} outside [{slot_base}, {})",
                        slot_base + picks
                    ),
                })?;
        if std::mem::replace(&mut seen[local], true) {
            return Err(FlError::Protocol {
                reason: format!("shard reply repeats slot {slot}"),
            });
        }
        Ok(())
    };
    for (slot, _) in reply.partial.terms() {
        mark(*slot)?;
    }
    for o in &reply.others {
        mark(o.slot as usize)?;
    }
    if !seen.iter().all(|&s| s) {
        return Err(FlError::Protocol {
            reason: "shard reply does not account every pick".to_owned(),
        });
    }
    for (slot, upload) in reply.partial.terms() {
        slots[*slot] = Some(ClientOutcome::Completed(upload.clone()));
    }
    for o in reply.others {
        let outcome = match o.kind {
            ShardOutcomeKind::Straggler { elapsed_s } => ClientOutcome::Straggler {
                client: o.client,
                elapsed_s,
            },
            ShardOutcomeKind::Failed { reason } => ClientOutcome::Failed {
                client: o.client,
                error: FlError::ClientFailure {
                    client: o.client,
                    reason,
                },
            },
        };
        slots[o.slot as usize] = Some(outcome);
    }
    ledger.merge(&reply.ledger);
    Ok(())
}

// ---------------------------------------------------------------------
// Shard-server side.
// ---------------------------------------------------------------------

/// Entry point for the `shard-server` binary: connects back to the
/// coordinator address in `args` and serves one shard until Goodbye.
///
/// # Errors
///
/// Returns [`FlError::BadConfig`] without an address argument and
/// propagates every serve failure.
pub fn shard_server_main(mut args: impl Iterator<Item = String>) -> Result<()> {
    let addr = args.next().ok_or(FlError::BadConfig {
        reason: "usage: shard-server <coordinator-addr>".to_owned(),
    })?;
    let stream = TcpStream::connect(&addr)
        .map_err(|e| FlError::transport(format!("connecting to coordinator {addr}"), e))?;
    serve_shard(stream)
}

/// The wired state one [`ShardConfig`] produces: the shard's handshaken
/// client endpoints (global ids), its engine and its fault plan.
struct ShardState {
    remotes: Vec<RemoteClient>,
    engine: ExecutionEngine,
    faults: Option<Arc<FaultPlan>>,
}

/// Serves one shard over an established coordinator connection:
/// handshake, configuration, then screen/round requests until Goodbye.
/// This is the whole shard-server process in library form — the binary
/// only parses its address argument.
///
/// # Errors
///
/// Propagates handshake, configuration and transport failures (the
/// binary turns them into a nonzero exit, which the coordinator's
/// teardown surfaces).
pub fn serve_shard(stream: TcpStream) -> Result<()> {
    let mut channel = ShardChannel::new(stream)?;
    channel.send(&Envelope::pack(
        MessageKind::ShardHello,
        &ShardHello::current(),
    ))?;
    let ack: ShardHelloAck = channel.recv()?.open(MessageKind::ShardHelloAck)?;
    if !(MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION).contains(&ack.version) {
        return Err(FlError::Protocol {
            reason: format!("coordinator negotiated unsupported version {}", ack.version),
        });
    }
    let config: ShardConfig = match channel.recv()?.open(MessageKind::ShardConfig) {
        Ok(c) => c,
        Err(e) => {
            let _ = channel.send(&Envelope::error(e.to_string()));
            return Err(e);
        }
    };
    let mut state = match wire_shard(&config) {
        Ok(state) => state,
        Err(e) => {
            let _ = channel.send(&Envelope::error(e.to_string()));
            return Err(e);
        }
    };
    channel.send(&Envelope::pack(
        MessageKind::ShardConfigAck,
        &ShardConfigAck {
            clients: state.remotes.len() as u64,
        },
    ))?;
    loop {
        let request = channel.recv()?;
        match request.kind {
            MessageKind::ShardScreen => {
                let screen: ShardScreen = request.open(MessageKind::ShardScreen)?;
                let evidence = screen
                    .probes
                    .iter()
                    .map(|probe| {
                        state
                            .remotes
                            .get_mut(probe.local as usize)
                            .and_then(|client| client.attest(&probe.challenge).ok())
                    })
                    .collect();
                channel.send(&Envelope::pack(
                    MessageKind::ShardScreenReply,
                    &ShardScreenReply { evidence },
                ))?;
            }
            MessageKind::ShardRound => {
                let round: ShardRound = request.open(MessageKind::ShardRound)?;
                let reply = match run_shard_round(&mut state, &round) {
                    Ok(reply) => reply,
                    Err(e) => {
                        let _ = channel.send(&Envelope::error(e.to_string()));
                        return Err(e);
                    }
                };
                channel.send(&Envelope::pack(MessageKind::ShardRoundReply, &reply))?;
            }
            MessageKind::Goodbye => {
                // Mirror the in-process teardown: goodbye every client
                // endpoint before exiting.
                for client in &mut state.remotes {
                    let _ = client.goodbye();
                }
                return Ok(());
            }
            other => {
                let e = FlError::Protocol {
                    reason: format!("unexpected {other:?} on shard control channel"),
                };
                let _ = channel.send(&Envelope::error(e.to_string()));
                return Err(e);
            }
        }
    }
}

/// Materialises a [`DatasetSpec`] — both sides construct the identical
/// deterministic dataset from the recipe, so no sample crosses the wire.
fn build_dataset(spec: &DatasetSpec) -> Arc<dyn Dataset> {
    match *spec {
        DatasetSpec::Micro {
            len,
            classes,
            dim,
            seed,
        } => Arc::new(SyntheticMicro::new(
            len as usize,
            classes as usize,
            dim as usize,
            seed,
        )),
        DatasetSpec::Cifar { len, classes, seed } => Arc::new(SyntheticCifar100::with_classes(
            len as usize,
            classes as usize,
            seed,
        )),
    }
}

/// Materialises a [`ModelSpec`].
fn build_model(spec: &ModelSpec) -> Result<Sequential> {
    Ok(match *spec {
        ModelSpec::TinyMlp {
            inputs,
            hidden,
            outputs,
            seed,
        } => zoo::tiny_mlp(inputs as usize, hidden as usize, outputs as usize, seed)?,
        ModelSpec::LeNet5 { classes, seed } => zoo::lenet5_with(classes as usize, seed)?,
    })
}

/// Builds and handshakes the shard's client fleet from its config:
/// the *global* data partition re-derived and sub-ranged (so every
/// client's local dataset is bit-identical to the flat reference),
/// global client ids, all-TrustZone devices, plain SGD trainers, and the
/// fault wrapper installed before the handshake exactly as
/// `wire_fleet` does in-process.
fn wire_shard(config: &ShardConfig) -> Result<ShardState> {
    if config.range_start > config.range_end || config.range_end > config.total_clients {
        return Err(FlError::BadConfig {
            reason: format!(
                "shard range [{}, {}) outside fleet of {}",
                config.range_start, config.range_end, config.total_clients
            ),
        });
    }
    let backend = BackendKind::parse(&config.backend).ok_or_else(|| FlError::BadConfig {
        reason: format!("unknown kernel backend {:?}", config.backend),
    })?;
    let codec = CodecKind::parse(&config.codec).ok_or_else(|| FlError::BadConfig {
        reason: format!("unknown update codec {:?}", config.codec),
    })?;
    let dataset = build_dataset(&config.dataset);
    let mut prototype = build_model(&config.model)?;
    prototype.set_backend(backend);
    prototype.set_weights(&config.init_weights)?;
    // The *global* partition derivation, identical to the in-process
    // runners — every shard computes the full fleet's shards and keeps
    // only its range, so per-client data is layout-independent.
    let partition_kind =
        PartitionKind::parse(&config.partition).ok_or_else(|| FlError::BadConfig {
            reason: format!("unknown partition kind {:?}", config.partition),
        })?;
    let mut partition = crate::runner::partition_dataset(
        dataset.as_ref(),
        config.total_clients as usize,
        partition_kind,
        config.plan.seed,
    );
    let faults = config.faults.clone().map(Arc::new);
    // Personas re-derive from the shipped scenario plan and the global
    // client id — the hostile subset matches the coordinator's view
    // exactly. The collusion log stays `None` in shard processes: it is
    // an observability artifact, and colluders train honestly, so its
    // absence cannot perturb the committed weights.
    let adversaries = config.adversaries.clone().map(Arc::new);
    let mut remotes = Vec::with_capacity((config.range_end - config.range_start) as usize);
    for g in config.range_start..config.range_end {
        let shard_data = std::mem::take(&mut partition[g as usize]);
        let mut client = FlClient::new(
            g,
            DeviceProfile::trustzone(g),
            dataset.clone(),
            shard_data,
            prototype.replicate(),
            Box::new(PlainSgdTrainer),
        );
        if let Some(plan) = &adversaries {
            if let Some(persona) = plan.persona_of(g) {
                client.set_adversary(Adversary {
                    persona,
                    plan: plan.clone(),
                    log: None,
                });
            }
        }
        let endpoint: Box<dyn ServerEndpoint> = Box::new(LocalEndpoint::new(client));
        let endpoint: Box<dyn ServerEndpoint> = match &faults {
            Some(plan) => Box::new(FaultyEndpoint::new(endpoint, plan.clone())),
            None => endpoint,
        };
        remotes.push(RemoteClient::connect_with(endpoint, codec)?);
    }
    Ok(ShardState {
        remotes,
        engine: ExecutionEngine::new(config.workers as usize),
        faults,
    })
}

/// Executes one round request on the shard's engine and repackages the
/// outcomes at their *global* slots: completed updates into the
/// [`PartialAggregate`], stragglers/failures into the tagged overflow
/// list, the shard ledger as-is.
fn run_shard_round(state: &mut ShardState, round: &ShardRound) -> Result<ShardRoundReply> {
    let picks: Vec<usize> = round.picks.iter().map(|&p| p as usize).collect();
    let (outcomes, ledger) = state.engine.execute_cycles_with(
        &mut state.remotes,
        &picks,
        &round.download,
        state.faults.as_deref(),
    )?;
    let mut partial = PartialAggregate::new();
    let mut others = Vec::new();
    for (j, outcome) in outcomes.into_iter().enumerate() {
        let slot = round.slot_base as usize + j;
        match outcome {
            ClientOutcome::Completed(upload) => partial.push(slot, upload),
            ClientOutcome::Straggler { client, elapsed_s } => others.push(ShardOutcome {
                slot: slot as u64,
                client,
                kind: ShardOutcomeKind::Straggler { elapsed_s },
            }),
            ClientOutcome::Failed { client, error } => others.push(ShardOutcome {
                slot: slot as u64,
                client,
                kind: ShardOutcomeKind::Failed {
                    reason: error.to_string(),
                },
            }),
        }
    }
    Ok(ShardRoundReply {
        partial,
        others,
        ledger,
    })
}
