//! The federation execution engine: fans one round's client exchanges out
//! across a worker pool.
//!
//! Every selected client's local training is independent — each trains a
//! private model replica on a private shard with a per-client seeded
//! batcher (`plan.seed ^ client_id ^ round`), so exchanges can run on any
//! worker in any order without changing a single bit of the result. Since
//! the transport redesign the engine drives [`RemoteClient`] endpoints
//! rather than touching client structs directly:
//!
//! * endpoints are dealt round-robin onto `workers` scoped threads
//!   (the crossbeam idiom the tensor kernels already use), each worker
//!   owning its shard of endpoints for the round,
//! * each [`UpdateUpload`] lands in a slot keyed by the client's position
//!   in the round's selection, so aggregation order never depends on
//!   timing,
//! * the TEE accounting that arrives *on the wire* with every upload is
//!   recorded into a [`SharedLedger`] as workers finish and merged into an
//!   id-sorted [`RoundLedger`], so the world-switch/crypto bill stays
//!   correct under concurrency — and complete even when clients live in
//!   other processes.
//!
//! Failure containment: a schedule with duplicate or out-of-range indices
//! is rejected up front ([`FlError::InvalidSelection`]) instead of
//! panicking, and a panic inside one client's exchange — a buggy trainer,
//! a poisoned endpoint — is caught on the worker and surfaced as that
//! client's [`FlError::ClientFailure`] outcome. One bad client in a
//! 10⁴-client round can therefore no longer kill the *process* (the old
//! `join().expect` path aborted everything); the round's fate stays a
//! policy decision of the runner, which today reports the earliest
//! failure after every other client's outcome has been collected.
//!
//! [`ExecutionEngine::execute_shards`] lifts the same machinery one level
//! up for sharded fleets: disjoint client shards run concurrently, each
//! with its own worker pool and its own [`RoundLedger`], and the per-shard
//! results come back in shard order for the global merge.
//!
//! With identical seeds, a 1-worker and an N-worker engine — over the
//! in-process or the TCP transport, sharded or flat — produce bit-identical
//! round reports and final weights (see `tests/integration_engine.rs` and
//! `tests/integration_sharding.rs` at the workspace root).

use std::panic::{catch_unwind, AssertUnwindSafe};

use gradsec_tee::cost::{RoundLedger, SharedLedger};

use crate::message::{ModelDownload, UpdateUpload};
use crate::selection::validate_picks;
use crate::transport::RemoteClient;
use crate::{FlError, Result};

/// Per-client outcomes of one engine run, in `picked` order, plus the
/// merged TEE ledger of the successful exchanges.
pub type CycleOutcomes = (Vec<Result<UpdateUpload>>, RoundLedger);

/// A round-execution strategy: how many workers drive client exchanges
/// concurrently within one FL cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionEngine {
    workers: usize,
}

impl ExecutionEngine {
    /// One client at a time on the calling thread — the reference
    /// behaviour every parallel configuration must reproduce exactly.
    pub fn sequential() -> Self {
        ExecutionEngine { workers: 1 }
    }

    /// A pool of `workers` threads; `0` means one per available core.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            workers
        };
        ExecutionEngine { workers }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drives the cycles of the clients listed in `picked` (indices into
    /// `clients`) against `download`, returning per-client outcomes in
    /// `picked` order plus the round's merged TEE ledger.
    ///
    /// A failing client (transport error, failed cycle, or a panic inside
    /// its exchange) yields an `Err` in its slot; the other clients'
    /// outcomes are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidSelection`] when `picked` contains a
    /// duplicate or out-of-range index — per-client failures are *not*
    /// round errors and live in the returned slots instead.
    pub fn execute_cycles(
        &self,
        clients: &mut [RemoteClient],
        picked: &[usize],
        download: &ModelDownload,
    ) -> Result<CycleOutcomes> {
        validate_picks(picked, clients.len())?;
        let picked_ids: Vec<u64> = picked.iter().map(|&ci| clients[ci].id()).collect();
        let ledger = SharedLedger::new();
        let mut slots: Vec<Option<Result<UpdateUpload>>> =
            (0..picked.len()).map(|_| None).collect();
        if self.workers <= 1 || picked.len() <= 1 {
            for (slot, &ci) in picked.iter().enumerate() {
                slots[slot] = Some(exchange_and_record(&mut clients[ci], download, &ledger));
            }
        } else {
            // Deal the selected clients round-robin into one shard per
            // worker. The deal is a pure function of (picked, workers),
            // so the partition — and therefore any numeric consequence of
            // it — is reproducible. An O(n) slot map replaces the old
            // per-client `position` scan (O(|picked|·|clients|)), which
            // also silently collapsed duplicate picks onto one slot.
            let mut slot_of: Vec<Option<usize>> = vec![None; clients.len()];
            for (slot, &ci) in picked.iter().enumerate() {
                slot_of[ci] = Some(slot);
            }
            let workers = self.workers.min(picked.len());
            let mut shards: Vec<Vec<(usize, &mut RemoteClient)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (k, (slot, client)) in clients
                .iter_mut()
                .enumerate()
                .filter_map(|(i, c)| slot_of[i].map(|s| (s, c)))
                .enumerate()
            {
                shards[k % workers].push((slot, client));
            }
            // Remember each worker's slot assignment so a worker that dies
            // wholesale (a panic escaping the per-exchange guard) can be
            // billed to exactly its clients.
            let assignments: Vec<Vec<usize>> = shards
                .iter()
                .map(|shard| shard.iter().map(|(slot, _)| *slot).collect())
                .collect();
            let outcomes = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|mut shard| {
                        let ledger = &ledger;
                        s.spawn(move |_| {
                            shard
                                .iter_mut()
                                .map(|(slot, client)| {
                                    (*slot, exchange_and_record(client, download, ledger))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join())
                    .collect::<Vec<std::thread::Result<_>>>()
            })
            .map_err(|_| FlError::Protocol {
                reason: "engine scope panicked".to_owned(),
            })?;
            for (worker, outcome) in outcomes.into_iter().enumerate() {
                match outcome {
                    Ok(results) => {
                        for (slot, r) in results {
                            slots[slot] = Some(r);
                        }
                    }
                    // The per-exchange guard makes this unreachable in
                    // practice; if it ever fires, the worker's clients
                    // fail individually rather than killing the round.
                    Err(_) => {
                        for &slot in &assignments[worker] {
                            slots[slot] = Some(Err(FlError::ClientFailure {
                                client: picked_ids[slot],
                                reason: "engine worker panicked".to_owned(),
                            }));
                        }
                    }
                }
            }
        }
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(slot, s)| {
                s.unwrap_or_else(|| {
                    Err(FlError::ClientFailure {
                        client: picked_ids[slot],
                        reason: "engine lost the client's outcome".to_owned(),
                    })
                })
            })
            .collect();
        Ok((results, ledger.into_round_ledger()))
    }

    /// Runs several disjoint client shards concurrently — each shard's
    /// picked clients on this engine's own worker pool — returning the
    /// per-shard outcomes and per-shard ledgers in shard order.
    ///
    /// `shards` pairs each shard's clients with its *shard-local* pick
    /// indices. Because every shard's execution is independently
    /// deterministic and results stay keyed by shard + slot, the
    /// concatenated outcome is bit-identical to running the shards one
    /// after another — which is how [`ShardedFederation`] reproduces an
    /// unsharded round exactly.
    ///
    /// [`ShardedFederation`]: crate::runner::ShardedFederation
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidSelection`] when any shard's picks are
    /// duplicated or out of range (checked before anything runs).
    pub fn execute_shards(
        &self,
        shards: Vec<(&mut [RemoteClient], Vec<usize>)>,
        download: &ModelDownload,
    ) -> Result<Vec<CycleOutcomes>> {
        for (clients, picked) in &shards {
            validate_picks(picked, clients.len())?;
        }
        if shards.len() <= 1 {
            return shards
                .into_iter()
                .map(|(clients, picked)| self.execute_cycles(clients, &picked, download))
                .collect();
        }
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|(clients, picked)| {
                    s.spawn(move |_| self.execute_cycles(clients, &picked, download))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().map_err(|_| FlError::Protocol {
                        reason: "engine shard thread panicked".to_owned(),
                    })?
                })
                .collect()
        })
        .map_err(|_| FlError::Protocol {
            reason: "engine shard scope panicked".to_owned(),
        })?
    }
}

impl Default for ExecutionEngine {
    fn default() -> Self {
        ExecutionEngine::sequential()
    }
}

/// Drives one client exchange and, on success, records the TEE accounting
/// the upload carried across the transport. A panic inside the exchange
/// (trainer bug, poisoned endpoint state) is caught and converted into
/// that client's [`FlError::ClientFailure`] so it cannot take the worker
/// — and with it the whole round — down.
fn exchange_and_record(
    client: &mut RemoteClient,
    download: &ModelDownload,
    ledger: &SharedLedger,
) -> Result<UpdateUpload> {
    let id = client.id();
    let result =
        catch_unwind(AssertUnwindSafe(|| client.train(download))).unwrap_or_else(|payload| {
            Err(FlError::ClientFailure {
                client: id,
                reason: format!(
                    "client exchange panicked: {}",
                    panic_reason(payload.as_ref())
                ),
            })
        });
    if let Ok(upload) = &result {
        ledger.record(upload.cost);
    }
    result
}

/// Best-effort rendering of a panic payload (the two forms `panic!`
/// produces, then a generic fallback).
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DeviceProfile, FlClient};
    use crate::config::TrainingPlan;
    use crate::trainer::{CycleStats, LocalTrainer, PlainSgdTrainer};
    use crate::transport::inprocess::LocalEndpoint;
    use gradsec_data::{Dataset, SyntheticCifar100};
    use gradsec_nn::{zoo, Sequential};
    use std::sync::Arc;

    #[test]
    fn zero_workers_means_all_cores() {
        let e = ExecutionEngine::new(0);
        assert!(e.workers() >= 1);
        assert_eq!(ExecutionEngine::new(3).workers(), 3);
        assert_eq!(ExecutionEngine::sequential().workers(), 1);
        assert_eq!(ExecutionEngine::default(), ExecutionEngine::sequential());
    }

    /// A trainer that panics on every cycle — the failure mode the engine
    /// must contain to one client.
    struct PanickingTrainer;

    impl LocalTrainer for PanickingTrainer {
        fn train_cycle(
            &mut self,
            _model: &mut Sequential,
            _dataset: &dyn Dataset,
            _batches: &[Vec<usize>],
            _learning_rate: f32,
            _protected_layers: &[usize],
        ) -> Result<CycleStats> {
            panic!("injected trainer bug");
        }
    }

    fn fleet(n: usize, panicking: &[usize]) -> Vec<RemoteClient> {
        let ds = Arc::new(SyntheticCifar100::with_classes(4 * n, 2, 1));
        let shards = gradsec_data::split::shard(4 * n, n, 1);
        (0..n)
            .zip(shards)
            .map(|(i, shard)| {
                let trainer: Box<dyn LocalTrainer> = if panicking.contains(&i) {
                    Box::new(PanickingTrainer)
                } else {
                    Box::new(PlainSgdTrainer)
                };
                let client = FlClient::new(
                    i as u64,
                    DeviceProfile::trustzone(i as u64),
                    ds.clone(),
                    shard,
                    zoo::tiny_mlp(3 * 32 * 32, 4, 2, 9).unwrap(),
                    trainer,
                );
                RemoteClient::connect(Box::new(LocalEndpoint::new(client))).unwrap()
            })
            .collect()
    }

    fn download() -> ModelDownload {
        ModelDownload {
            round: 0,
            weights: zoo::tiny_mlp(3 * 32 * 32, 4, 2, 9).unwrap().weights(),
            plan: TrainingPlan {
                rounds: 1,
                clients_per_round: 4,
                batches_per_cycle: 1,
                batch_size: 2,
                learning_rate: 0.05,
                seed: 3,
            },
            protected_layers: vec![],
        }
    }

    #[test]
    fn duplicate_picks_are_an_error_not_a_panic() {
        let mut clients = fleet(4, &[]);
        for engine in [ExecutionEngine::sequential(), ExecutionEngine::new(3)] {
            let err = engine
                .execute_cycles(&mut clients, &[1, 2, 1], &download())
                .unwrap_err();
            assert!(matches!(err, FlError::InvalidSelection { .. }), "{err}");
        }
    }

    #[test]
    fn out_of_range_picks_are_an_error_not_a_panic() {
        let mut clients = fleet(2, &[]);
        let err = ExecutionEngine::new(2)
            .execute_cycles(&mut clients, &[0, 5], &download())
            .unwrap_err();
        assert!(matches!(err, FlError::InvalidSelection { .. }), "{err}");
    }

    #[test]
    fn empty_pick_set_runs_to_an_empty_round() {
        let mut clients = fleet(2, &[]);
        let (results, ledger) = ExecutionEngine::new(2)
            .execute_cycles(&mut clients, &[], &download())
            .unwrap();
        assert!(results.is_empty());
        assert!(ledger.is_empty());
    }

    #[test]
    fn a_panicking_client_fails_alone_not_the_round() {
        for workers in [1usize, 3] {
            let mut clients = fleet(4, &[2]);
            let (results, ledger) = ExecutionEngine::new(workers)
                .execute_cycles(&mut clients, &[0, 2, 3], &download())
                .unwrap();
            assert_eq!(results.len(), 3);
            assert!(results[0].is_ok(), "{workers} workers: client 0");
            assert!(results[2].is_ok(), "{workers} workers: client 3");
            match &results[1] {
                Err(FlError::ClientFailure { client: 2, reason }) => {
                    assert!(reason.contains("panicked"), "{reason}");
                }
                other => panic!("expected client 2's panic as ClientFailure, got {other:?}"),
            }
            // Only the two successful clients are billed.
            assert_eq!(ledger.len(), 2);
        }
    }

    #[test]
    fn execute_shards_matches_per_shard_execute_cycles() {
        let build = || {
            let mut all = fleet(6, &[]);
            let tail = all.split_off(3);
            (all, tail)
        };
        let engine = ExecutionEngine::new(2);
        let (mut a_seq, mut b_seq) = build();
        let want_a = engine
            .execute_cycles(&mut a_seq, &[0, 2], &download())
            .unwrap();
        let want_b = engine
            .execute_cycles(&mut b_seq, &[1], &download())
            .unwrap();
        let (mut a, mut b) = build();
        let got = engine
            .execute_shards(
                vec![(a.as_mut_slice(), vec![0, 2]), (b.as_mut_slice(), vec![1])],
                &download(),
            )
            .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], want_a);
        assert_eq!(got[1], want_b);
    }
}
