//! The federation execution engine: fans one round's client exchanges out
//! across a worker pool.
//!
//! Every selected client's local training is independent — each trains a
//! private model replica on a private shard with a per-client seeded
//! batcher (`plan.seed ^ client_id ^ round`), so exchanges can run on any
//! worker in any order without changing a single bit of the result. Since
//! the transport redesign the engine drives [`RemoteClient`] endpoints
//! rather than touching client structs directly:
//!
//! * endpoints are dealt round-robin onto `workers` scoped threads
//!   (the crossbeam idiom the tensor kernels already use), each worker
//!   owning its shard of endpoints for the round,
//! * each [`UpdateUpload`] lands in a slot keyed by the client's position
//!   in the round's selection, so aggregation order never depends on
//!   timing,
//! * the TEE accounting that arrives *on the wire* with every upload is
//!   recorded into a [`SharedLedger`] as workers finish and merged into an
//!   id-sorted [`RoundLedger`], so the world-switch/crypto bill stays
//!   correct under concurrency — and complete even when clients live in
//!   other processes.
//!
//! With identical seeds, a 1-worker and an N-worker engine — over the
//! in-process or the TCP transport — produce bit-identical round reports
//! and final weights (see `tests/integration_engine.rs` and
//! `tests/integration_transport.rs` at the workspace root).

use gradsec_tee::cost::{RoundLedger, SharedLedger};

use crate::message::{ModelDownload, UpdateUpload};
use crate::transport::RemoteClient;
use crate::Result;

/// A round-execution strategy: how many workers drive client exchanges
/// concurrently within one FL cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionEngine {
    workers: usize,
}

impl ExecutionEngine {
    /// One client at a time on the calling thread — the reference
    /// behaviour every parallel configuration must reproduce exactly.
    pub fn sequential() -> Self {
        ExecutionEngine { workers: 1 }
    }

    /// A pool of `workers` threads; `0` means one per available core.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            workers
        };
        ExecutionEngine { workers }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drives the cycles of the clients listed in `picked` (indices into
    /// `clients`) against `download`, returning per-client outcomes in
    /// `picked` order plus the round's merged TEE ledger.
    pub(crate) fn execute_cycles(
        &self,
        clients: &mut [RemoteClient],
        picked: &[usize],
        download: &ModelDownload,
    ) -> (Vec<Result<UpdateUpload>>, RoundLedger) {
        let ledger = SharedLedger::new();
        let mut slots: Vec<Option<Result<UpdateUpload>>> =
            (0..picked.len()).map(|_| None).collect();
        if self.workers <= 1 || picked.len() <= 1 {
            for (slot, &ci) in picked.iter().enumerate() {
                slots[slot] = Some(exchange_and_record(&mut clients[ci], download, &ledger));
            }
        } else {
            // Deal the selected clients round-robin into one shard per
            // worker. The deal is a pure function of (picked, workers),
            // so the partition — and therefore any numeric consequence of
            // it — is reproducible.
            let workers = self.workers.min(picked.len());
            let mut shards: Vec<Vec<(usize, &mut RemoteClient)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (k, (slot, client)) in clients
                .iter_mut()
                .enumerate()
                .filter_map(|(i, c)| picked.iter().position(|&p| p == i).map(|s| (s, c)))
                .enumerate()
            {
                shards[k % workers].push((slot, client));
            }
            let outcomes: Vec<Vec<(usize, Result<UpdateUpload>)>> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|mut shard| {
                        let ledger = &ledger;
                        s.spawn(move |_| {
                            shard
                                .iter_mut()
                                .map(|(slot, client)| {
                                    (*slot, exchange_and_record(client, download, ledger))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("engine worker panicked"))
                    .collect()
            })
            .expect("engine scope panicked");
            for (slot, outcome) in outcomes.into_iter().flatten() {
                slots[slot] = Some(outcome);
            }
        }
        let results = slots
            .into_iter()
            .map(|s| s.expect("every picked client executed"))
            .collect();
        (results, ledger.into_round_ledger())
    }
}

impl Default for ExecutionEngine {
    fn default() -> Self {
        ExecutionEngine::sequential()
    }
}

/// Drives one client exchange and, on success, records the TEE accounting
/// the upload carried across the transport.
fn exchange_and_record(
    client: &mut RemoteClient,
    download: &ModelDownload,
    ledger: &SharedLedger,
) -> Result<UpdateUpload> {
    let result = client.train(download);
    if let Ok(upload) = &result {
        ledger.record(upload.cost);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_workers_means_all_cores() {
        let e = ExecutionEngine::new(0);
        assert!(e.workers() >= 1);
        assert_eq!(ExecutionEngine::new(3).workers(), 3);
        assert_eq!(ExecutionEngine::sequential().workers(), 1);
        assert_eq!(ExecutionEngine::default(), ExecutionEngine::sequential());
    }
}
