//! The federation execution engine: fans one round's client exchanges out
//! across a worker pool.
//!
//! Every selected client's local training is independent — each trains a
//! private model replica on a private shard with a per-client seeded
//! batcher (`plan.seed ^ client_id ^ round`), so exchanges can run on any
//! worker in any order without changing a single bit of the result. Since
//! the transport redesign the engine drives [`RemoteClient`] endpoints
//! rather than touching client structs directly:
//!
//! * endpoints are dealt round-robin onto `workers` scoped threads
//!   (the crossbeam idiom the tensor kernels already use), each worker
//!   owning its shard of endpoints for the round,
//! * each exchange lands a [`ClientOutcome`] in a slot keyed by the
//!   client's position in the round's selection, so aggregation order
//!   never depends on timing,
//! * the TEE accounting that arrives *on the wire* with every upload is
//!   recorded into a [`SharedLedger`] as workers finish and merged into an
//!   id-sorted [`RoundLedger`], so the world-switch/crypto bill stays
//!   correct under concurrency — and complete even when clients live in
//!   other processes. A client that fails still gets a ledger entry (an
//!   [`unbilled`](ClientCycleCost::unbilled) zero-cost one), so the round
//!   ledger accounts every selected client, success or not, and a failure
//!   can never leak cost into another client's slot.
//!
//! Failure containment: a schedule with duplicate or out-of-range indices
//! is rejected up front ([`FlError::InvalidSelection`]) instead of
//! panicking, and a panic inside one client's exchange — a buggy trainer,
//! a poisoned endpoint — is caught on the worker and surfaced as that
//! client's [`ClientOutcome::Failed`]. One bad client in a 10⁴-client
//! round can therefore no longer kill the *process*; the round's fate
//! stays a policy decision of the runner.
//!
//! Fault injection: [`execute_cycles_with`](ExecutionEngine::execute_cycles_with)
//! threads an optional [`FaultPlan`] through the exchange path. The plan
//! contributes each client's simulated network latency for the round, and
//! when a round deadline is configured, a client whose simulated elapsed
//! time (latency + cycle compute on the simulated clock) overruns it comes
//! back as [`ClientOutcome::Straggler`] — its cost still billed to the
//! ledger, its update excluded from aggregation — instead of blocking the
//! round. All fault decisions are pure functions of
//! `(fault seed, client, round)`, so they are identical on every worker,
//! shard and transport.
//!
//! [`ExecutionEngine::execute_shards`] lifts the same machinery one level
//! up for sharded fleets: disjoint client shards run concurrently, each
//! with its own worker pool and its own [`RoundLedger`], and the per-shard
//! results come back in shard order for the global merge.
//!
//! With identical seeds — training *and* fault seeds — a 1-worker and an
//! N-worker engine, over the in-process or the TCP transport, sharded or
//! flat, produce bit-identical round reports and final weights (see
//! `tests/integration_engine.rs`, `tests/integration_sharding.rs` and
//! `tests/integration_faults.rs` at the workspace root).

use std::panic::{catch_unwind, AssertUnwindSafe};

use gradsec_tee::cost::{ClientCycleCost, RoundLedger, SharedLedger};

use crate::faults::FaultPlan;
use crate::message::{ModelDownload, UpdateUpload};
use crate::selection::validate_picks;
use crate::transport::RemoteClient;
use crate::{FlError, Result};

/// How one selected client's exchange ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOutcome {
    /// The client trained and its update arrived within any deadline.
    Completed(UpdateUpload),
    /// The client trained, but its simulated elapsed time (injected
    /// latency + cycle compute) overran the round deadline; its cost is
    /// billed to the ledger but its update is excluded from aggregation.
    Straggler {
        /// The straggling client.
        client: u64,
        /// Simulated seconds from download to (late) upload.
        elapsed_s: f64,
    },
    /// The exchange failed: a transport fault, a client-side error
    /// report, or a panic caught on the worker.
    Failed {
        /// The failing client.
        client: u64,
        /// What went wrong.
        error: FlError,
    },
}

impl ClientOutcome {
    /// The client the outcome belongs to.
    pub fn client_id(&self) -> u64 {
        match self {
            ClientOutcome::Completed(u) => u.client_id,
            ClientOutcome::Straggler { client, .. } | ClientOutcome::Failed { client, .. } => {
                *client
            }
        }
    }

    /// The update, for completed outcomes.
    pub fn update(&self) -> Option<&UpdateUpload> {
        match self {
            ClientOutcome::Completed(u) => Some(u),
            _ => None,
        }
    }

    /// Consumes the outcome into its update, for completed outcomes.
    pub fn into_update(self) -> Option<UpdateUpload> {
        match self {
            ClientOutcome::Completed(u) => Some(u),
            _ => None,
        }
    }

    /// The failure, for failed outcomes.
    pub fn error(&self) -> Option<&FlError> {
        match self {
            ClientOutcome::Failed { error, .. } => Some(error),
            _ => None,
        }
    }

    /// `true` for [`ClientOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, ClientOutcome::Completed(_))
    }

    /// `true` for [`ClientOutcome::Straggler`].
    pub fn is_straggler(&self) -> bool {
        matches!(self, ClientOutcome::Straggler { .. })
    }

    /// `true` for [`ClientOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, ClientOutcome::Failed { .. })
    }
}

/// Per-client outcomes of one engine run, in `picked` order, plus the
/// round's merged TEE ledger (one entry per picked client — zero-cost
/// entries for failures).
pub type CycleOutcomes = (Vec<ClientOutcome>, RoundLedger);

/// A round-execution strategy: how many workers drive client exchanges
/// concurrently within one FL cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionEngine {
    workers: usize,
}

impl ExecutionEngine {
    /// One client at a time on the calling thread — the reference
    /// behaviour every parallel configuration must reproduce exactly.
    pub fn sequential() -> Self {
        ExecutionEngine { workers: 1 }
    }

    /// A pool of `workers` threads; `0` means one per available core.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            workers
        };
        ExecutionEngine { workers }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drives the cycles of the clients listed in `picked` (indices into
    /// `clients`) against `download` with no fault plan — see
    /// [`execute_cycles_with`](Self::execute_cycles_with).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidSelection`] when `picked` contains a
    /// duplicate or out-of-range index.
    pub fn execute_cycles(
        &self,
        clients: &mut [RemoteClient],
        picked: &[usize],
        download: &ModelDownload,
    ) -> Result<CycleOutcomes> {
        self.execute_cycles_with(clients, picked, download, None)
    }

    /// Drives the cycles of the clients listed in `picked` (indices into
    /// `clients`) against `download`, returning per-client outcomes in
    /// `picked` order plus the round's merged TEE ledger.
    ///
    /// A failing client (transport error, failed cycle, or a panic inside
    /// its exchange) yields a [`ClientOutcome::Failed`] in its slot; the
    /// other clients' outcomes are unaffected. With a fault plan and a
    /// round deadline, clients whose simulated elapsed time overruns the
    /// deadline yield [`ClientOutcome::Straggler`].
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidSelection`] when `picked` contains a
    /// duplicate or out-of-range index — per-client failures are *not*
    /// round errors and live in the returned slots instead.
    pub fn execute_cycles_with(
        &self,
        clients: &mut [RemoteClient],
        picked: &[usize],
        download: &ModelDownload,
        faults: Option<&FaultPlan>,
    ) -> Result<CycleOutcomes> {
        validate_picks(picked, clients.len())?;
        let picked_ids: Vec<u64> = picked.iter().map(|&ci| clients[ci].id()).collect();
        let ledger = SharedLedger::new();
        let mut slots: Vec<Option<ClientOutcome>> = (0..picked.len()).map(|_| None).collect();
        if self.workers <= 1 || picked.len() <= 1 {
            for (slot, &ci) in picked.iter().enumerate() {
                slots[slot] = Some(exchange_outcome(
                    &mut clients[ci],
                    download,
                    &ledger,
                    faults,
                ));
            }
        } else {
            // Deal the selected clients round-robin into one shard per
            // worker. The deal is a pure function of (picked, workers),
            // so the partition — and therefore any numeric consequence of
            // it — is reproducible. An O(n) slot map replaces the old
            // per-client `position` scan (O(|picked|·|clients|)), which
            // also silently collapsed duplicate picks onto one slot.
            let mut slot_of: Vec<Option<usize>> = vec![None; clients.len()];
            for (slot, &ci) in picked.iter().enumerate() {
                slot_of[ci] = Some(slot);
            }
            let workers = self.workers.min(picked.len());
            let mut shards: Vec<Vec<(usize, &mut RemoteClient)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (k, (slot, client)) in clients
                .iter_mut()
                .enumerate()
                .filter_map(|(i, c)| slot_of[i].map(|s| (s, c)))
                .enumerate()
            {
                shards[k % workers].push((slot, client));
            }
            // Remember each worker's slot assignment so a worker that dies
            // wholesale (a panic escaping the per-exchange guard) can be
            // billed to exactly its clients.
            let assignments: Vec<Vec<usize>> = shards
                .iter()
                .map(|shard| shard.iter().map(|(slot, _)| *slot).collect())
                .collect();
            let outcomes = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|mut shard| {
                        let ledger = &ledger;
                        s.spawn(move |_| {
                            shard
                                .iter_mut()
                                .map(|(slot, client)| {
                                    (*slot, exchange_outcome(client, download, ledger, faults))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join())
                    .collect::<Vec<std::thread::Result<_>>>()
            })
            .map_err(|_| FlError::Protocol {
                reason: "engine scope panicked".to_owned(),
            })?;
            for (worker, outcome) in outcomes.into_iter().enumerate() {
                match outcome {
                    Ok(results) => {
                        for (slot, r) in results {
                            slots[slot] = Some(r);
                        }
                    }
                    // The per-exchange guard makes this unreachable in
                    // practice; if it ever fires, the worker's clients
                    // fail individually rather than killing the round.
                    Err(_) => {
                        for &slot in &assignments[worker] {
                            ledger.record(ClientCycleCost::unbilled(picked_ids[slot]));
                            slots[slot] = Some(ClientOutcome::Failed {
                                client: picked_ids[slot],
                                error: FlError::ClientFailure {
                                    client: picked_ids[slot],
                                    reason: "engine worker panicked".to_owned(),
                                },
                            });
                        }
                    }
                }
            }
        }
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(slot, s)| {
                s.unwrap_or_else(|| {
                    ledger.record(ClientCycleCost::unbilled(picked_ids[slot]));
                    ClientOutcome::Failed {
                        client: picked_ids[slot],
                        error: FlError::ClientFailure {
                            client: picked_ids[slot],
                            reason: "engine lost the client's outcome".to_owned(),
                        },
                    }
                })
            })
            .collect();
        Ok((results, ledger.into_round_ledger()))
    }

    /// Runs several disjoint client shards concurrently with no fault
    /// plan — see [`execute_shards_with`](Self::execute_shards_with).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidSelection`] when any shard's picks are
    /// duplicated or out of range (checked before anything runs).
    pub fn execute_shards(
        &self,
        shards: Vec<(&mut [RemoteClient], Vec<usize>)>,
        download: &ModelDownload,
    ) -> Result<Vec<CycleOutcomes>> {
        self.execute_shards_with(shards, download, None)
    }

    /// Runs several disjoint client shards concurrently — each shard's
    /// picked clients on this engine's own worker pool — returning the
    /// per-shard outcomes and per-shard ledgers in shard order.
    ///
    /// `shards` pairs each shard's clients with its *shard-local* pick
    /// indices. Because every shard's execution is independently
    /// deterministic (fault decisions included) and results stay keyed by
    /// shard + slot, the concatenated outcome is bit-identical to running
    /// the shards one after another — which is how [`ShardedFederation`]
    /// reproduces an unsharded round exactly.
    ///
    /// [`ShardedFederation`]: crate::runner::ShardedFederation
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidSelection`] when any shard's picks are
    /// duplicated or out of range (checked before anything runs).
    pub fn execute_shards_with(
        &self,
        shards: Vec<(&mut [RemoteClient], Vec<usize>)>,
        download: &ModelDownload,
        faults: Option<&FaultPlan>,
    ) -> Result<Vec<CycleOutcomes>> {
        for (clients, picked) in &shards {
            validate_picks(picked, clients.len())?;
        }
        if shards.len() <= 1 {
            return shards
                .into_iter()
                .map(|(clients, picked)| {
                    self.execute_cycles_with(clients, &picked, download, faults)
                })
                .collect();
        }
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|(clients, picked)| {
                    s.spawn(move |_| self.execute_cycles_with(clients, &picked, download, faults))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().map_err(|_| FlError::Protocol {
                        reason: "engine shard thread panicked".to_owned(),
                    })?
                })
                .collect()
        })
        .map_err(|_| FlError::Protocol {
            reason: "engine shard scope panicked".to_owned(),
        })?
    }
}

impl Default for ExecutionEngine {
    fn default() -> Self {
        ExecutionEngine::sequential()
    }
}

/// Drives one client exchange and classifies the result. On success the
/// TEE accounting the upload carried across the transport is recorded and
/// the simulated elapsed time (injected latency + cycle compute) is
/// checked against any round deadline; overruns come back as stragglers
/// with their cost still billed. A panic inside the exchange (trainer
/// bug, poisoned endpoint state) is caught and converted into that
/// client's [`ClientOutcome::Failed`] so it cannot take the worker — and
/// with it the whole round — down; failures are billed as zero-cost
/// ledger entries so the round accounts every selected client.
fn exchange_outcome(
    client: &mut RemoteClient,
    download: &ModelDownload,
    ledger: &SharedLedger,
    faults: Option<&FaultPlan>,
) -> ClientOutcome {
    let id = client.id();
    let result =
        catch_unwind(AssertUnwindSafe(|| client.train(download))).unwrap_or_else(|payload| {
            Err(FlError::ClientFailure {
                client: id,
                reason: format!(
                    "client exchange panicked: {}",
                    panic_reason(payload.as_ref())
                ),
            })
        });
    match result {
        Ok(upload) => {
            ledger.record(upload.cost);
            // Draw the latency only when a deadline can consume it: the
            // draw is deterministic either way, but a 10⁴-client round
            // should not pay a per-exchange RNG for a discarded value.
            if let Some(plan) = faults {
                if let Some(deadline) = plan.round_deadline_s() {
                    let elapsed_s = plan.latency_s(id, download.round) + upload.cost.time.total_s();
                    if elapsed_s > deadline {
                        return ClientOutcome::Straggler {
                            client: id,
                            elapsed_s,
                        };
                    }
                }
            }
            ClientOutcome::Completed(upload)
        }
        Err(error) => {
            ledger.record(ClientCycleCost::unbilled(id));
            ClientOutcome::Failed { client: id, error }
        }
    }
}

/// Best-effort rendering of a panic payload (the two forms `panic!`
/// produces, then a generic fallback).
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DeviceProfile, FlClient};
    use crate::config::TrainingPlan;
    use crate::faults::LatencyModel;
    use crate::trainer::{CycleStats, LocalTrainer, PlainSgdTrainer};
    use crate::transport::inprocess::LocalEndpoint;
    use gradsec_data::{Dataset, SyntheticCifar100};
    use gradsec_nn::{zoo, Sequential};
    use std::sync::Arc;

    #[test]
    fn zero_workers_means_all_cores() {
        let e = ExecutionEngine::new(0);
        assert!(e.workers() >= 1);
        assert_eq!(ExecutionEngine::new(3).workers(), 3);
        assert_eq!(ExecutionEngine::sequential().workers(), 1);
        assert_eq!(ExecutionEngine::default(), ExecutionEngine::sequential());
    }

    /// A trainer that panics on every cycle — the failure mode the engine
    /// must contain to one client.
    struct PanickingTrainer;

    impl LocalTrainer for PanickingTrainer {
        fn train_cycle(
            &mut self,
            _model: &mut Sequential,
            _dataset: &dyn Dataset,
            _batches: &[Vec<usize>],
            _learning_rate: f32,
            _protected_layers: &[usize],
        ) -> Result<CycleStats> {
            panic!("injected trainer bug");
        }
    }

    /// A plain trainer that also stamps nonzero simulated cost, so these
    /// tests can tell a real bill from a zero-cost failure entry (the
    /// plain baseline itself bills nothing).
    struct BilledTrainer;

    impl LocalTrainer for BilledTrainer {
        fn train_cycle(
            &mut self,
            model: &mut Sequential,
            dataset: &dyn Dataset,
            batches: &[Vec<usize>],
            learning_rate: f32,
            protected_layers: &[usize],
        ) -> Result<CycleStats> {
            let mut stats = PlainSgdTrainer.train_cycle(
                model,
                dataset,
                batches,
                learning_rate,
                protected_layers,
            )?;
            stats.time.user_s = 1.5;
            stats.crossings = 4;
            Ok(stats)
        }
    }

    fn fleet(n: usize, panicking: &[usize]) -> Vec<RemoteClient> {
        let ds = Arc::new(SyntheticCifar100::with_classes(4 * n, 2, 1));
        let shards = gradsec_data::split::shard(4 * n, n, 1);
        (0..n)
            .zip(shards)
            .map(|(i, shard)| {
                let trainer: Box<dyn LocalTrainer> = if panicking.contains(&i) {
                    Box::new(PanickingTrainer)
                } else {
                    Box::new(BilledTrainer)
                };
                let client = FlClient::new(
                    i as u64,
                    DeviceProfile::trustzone(i as u64),
                    ds.clone(),
                    shard,
                    zoo::tiny_mlp(3 * 32 * 32, 4, 2, 9).unwrap(),
                    trainer,
                );
                RemoteClient::connect(Box::new(LocalEndpoint::new(client))).unwrap()
            })
            .collect()
    }

    fn download() -> ModelDownload {
        ModelDownload {
            round: 0,
            weights: zoo::tiny_mlp(3 * 32 * 32, 4, 2, 9).unwrap().weights(),
            plan: TrainingPlan {
                rounds: 1,
                clients_per_round: 4,
                batches_per_cycle: 1,
                batch_size: 2,
                learning_rate: 0.05,
                seed: 3,
            },
            protected_layers: vec![],
        }
    }

    #[test]
    fn duplicate_picks_are_an_error_not_a_panic() {
        let mut clients = fleet(4, &[]);
        for engine in [ExecutionEngine::sequential(), ExecutionEngine::new(3)] {
            let err = engine
                .execute_cycles(&mut clients, &[1, 2, 1], &download())
                .unwrap_err();
            assert!(matches!(err, FlError::InvalidSelection { .. }), "{err}");
        }
    }

    #[test]
    fn out_of_range_picks_are_an_error_not_a_panic() {
        let mut clients = fleet(2, &[]);
        let err = ExecutionEngine::new(2)
            .execute_cycles(&mut clients, &[0, 5], &download())
            .unwrap_err();
        assert!(matches!(err, FlError::InvalidSelection { .. }), "{err}");
    }

    #[test]
    fn empty_pick_set_runs_to_an_empty_round() {
        let mut clients = fleet(2, &[]);
        let (results, ledger) = ExecutionEngine::new(2)
            .execute_cycles(&mut clients, &[], &download())
            .unwrap();
        assert!(results.is_empty());
        assert!(ledger.is_empty());
    }

    #[test]
    fn a_panicking_client_fails_alone_not_the_round() {
        for workers in [1usize, 3] {
            let mut clients = fleet(4, &[2]);
            let (results, ledger) = ExecutionEngine::new(workers)
                .execute_cycles(&mut clients, &[0, 2, 3], &download())
                .unwrap();
            assert_eq!(results.len(), 3);
            assert!(results[0].is_completed(), "{workers} workers: client 0");
            assert!(results[2].is_completed(), "{workers} workers: client 3");
            match &results[1] {
                ClientOutcome::Failed {
                    client: 2,
                    error: FlError::ClientFailure { client: 2, reason },
                } => {
                    assert!(reason.contains("panicked"), "{reason}");
                }
                other => panic!("expected client 2's panic as Failed, got {other:?}"),
            }
            // Every picked client is accounted: the failed one with a
            // zero-cost entry, the successes with their real bills.
            assert_eq!(ledger.len(), 3);
            let failed = ledger.client(2).expect("failed client is in the ledger");
            assert_eq!(failed.crossings, 0);
            assert_eq!(failed.time.total_s(), 0.0);
            for id in [0u64, 3] {
                assert!(ledger.client(id).expect("billed").time.total_s() > 0.0);
            }
        }
    }

    #[test]
    fn deadline_turns_slow_clients_into_stragglers() {
        let plan = FaultPlan::seeded(5)
            .client_latency(1, LatencyModel::Fixed(100.0))
            .deadline_s(50.0);
        for workers in [1usize, 3] {
            let mut clients = fleet(3, &[]);
            let (results, ledger) = ExecutionEngine::new(workers)
                .execute_cycles_with(&mut clients, &[0, 1, 2], &download(), Some(&plan))
                .unwrap();
            assert!(results[0].is_completed());
            assert!(results[2].is_completed());
            match &results[1] {
                ClientOutcome::Straggler {
                    client: 1,
                    elapsed_s,
                } => {
                    assert!(*elapsed_s > 50.0, "{elapsed_s}");
                }
                other => panic!("expected a straggler, got {other:?}"),
            }
            // The straggler's compute is still billed.
            assert_eq!(ledger.len(), 3);
            assert!(ledger.client(1).expect("billed").time.total_s() > 0.0);
        }
    }

    #[test]
    fn no_deadline_means_no_stragglers_whatever_the_latency() {
        let plan = FaultPlan::seeded(5).latency(LatencyModel::Fixed(1e6));
        let mut clients = fleet(2, &[]);
        let (results, _) = ExecutionEngine::sequential()
            .execute_cycles_with(&mut clients, &[0, 1], &download(), Some(&plan))
            .unwrap();
        assert!(results.iter().all(ClientOutcome::is_completed));
    }

    #[test]
    fn execute_shards_matches_per_shard_execute_cycles() {
        let build = || {
            let mut all = fleet(6, &[]);
            let tail = all.split_off(3);
            (all, tail)
        };
        let engine = ExecutionEngine::new(2);
        let (mut a_seq, mut b_seq) = build();
        let want_a = engine
            .execute_cycles(&mut a_seq, &[0, 2], &download())
            .unwrap();
        let want_b = engine
            .execute_cycles(&mut b_seq, &[1], &download())
            .unwrap();
        let (mut a, mut b) = build();
        let got = engine
            .execute_shards(
                vec![(a.as_mut_slice(), vec![0, 2]), (b.as_mut_slice(), vec![1])],
                &download(),
            )
            .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], want_a);
        assert_eq!(got[1], want_b);
    }

    #[test]
    fn outcome_accessors_are_coherent() {
        let failed = ClientOutcome::Failed {
            client: 4,
            error: FlError::ClientFailure {
                client: 4,
                reason: "x".into(),
            },
        };
        assert_eq!(failed.client_id(), 4);
        assert!(failed.error().is_some());
        assert!(failed.update().is_none());
        assert!(!failed.is_completed() && failed.is_failed());
        let straggler = ClientOutcome::Straggler {
            client: 9,
            elapsed_s: 2.0,
        };
        assert_eq!(straggler.client_id(), 9);
        assert!(straggler.is_straggler());
        assert!(straggler.clone().into_update().is_none());
    }
}
