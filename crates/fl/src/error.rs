use std::fmt;

use gradsec_nn::NnError;
use gradsec_tee::TeeError;

/// Errors produced by the federated-learning substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// A model/training error from the NN substrate.
    Nn(NnError),
    /// A TEE error (attestation, enclave memory, channels).
    Tee(TeeError),
    /// No clients passed selection for a round.
    NoEligibleClients {
        /// Round index.
        round: u64,
    },
    /// An aggregation input set was empty or inconsistent.
    BadAggregation {
        /// Human-readable reason.
        reason: String,
    },
    /// Invalid plan/config values.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A client worker thread failed.
    ClientFailure {
        /// The failing client id.
        client: u64,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::Nn(e) => write!(f, "model error: {e}"),
            FlError::Tee(e) => write!(f, "tee error: {e}"),
            FlError::NoEligibleClients { round } => {
                write!(f, "no eligible clients for round {round}")
            }
            FlError::BadAggregation { reason } => write!(f, "bad aggregation: {reason}"),
            FlError::BadConfig { reason } => write!(f, "bad config: {reason}"),
            FlError::ClientFailure { client, reason } => {
                write!(f, "client {client} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Nn(e) => Some(e),
            FlError::Tee(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for FlError {
    fn from(e: NnError) -> Self {
        FlError::Nn(e)
    }
}

impl From<TeeError> for FlError {
    fn from(e: TeeError) -> Self {
        FlError::Tee(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FlError = NnError::EmptyModel.into();
        assert!(e.to_string().contains("model error"));
        let e: FlError = TeeError::BadHandle { handle: 3 }.into();
        assert!(e.to_string().contains("tee error"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlError>();
    }
}
