use std::fmt;
use std::sync::Arc;

use gradsec_nn::NnError;
use gradsec_tee::TeeError;

/// Errors produced by the federated-learning substrate.
///
/// The enum is `#[non_exhaustive]`: the transport layer may grow new
/// failure modes (timeouts, TLS, partial writes) without breaking
/// downstream matches. Every variant that wraps an underlying failure
/// exposes it through [`std::error::Error::source`], so callers can walk
/// the full cause chain — in particular, [`FlError::Transport`] carries
/// the originating [`std::io::Error`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum FlError {
    /// A model/training error from the NN substrate.
    Nn(NnError),
    /// A TEE error (attestation, enclave memory, channels).
    Tee(TeeError),
    /// No clients passed selection for a round.
    NoEligibleClients {
        /// Round index.
        round: u64,
    },
    /// A fault-tolerant round committed nothing: every selected client
    /// straggled past the deadline or failed. Distinct from
    /// [`NoEligibleClients`](Self::NoEligibleClients) — selection *did*
    /// find eligible clients; the fleet shed all of them.
    RoundCollapsed {
        /// Round index.
        round: u64,
        /// How many selected clients overran the round deadline.
        stragglers: usize,
        /// How many selected clients failed outright.
        failures: usize,
    },
    /// An aggregation input set was empty or inconsistent.
    BadAggregation {
        /// Human-readable reason.
        reason: String,
    },
    /// Invalid plan/config values.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A round schedule handed to the engine was malformed: duplicate or
    /// out-of-range client indices.
    InvalidSelection {
        /// Human-readable reason.
        reason: String,
    },
    /// A client worker thread failed, or a remote client reported a
    /// failure over its transport.
    ClientFailure {
        /// The failing client id.
        client: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// A transport I/O failure (socket, channel, framing). The underlying
    /// cause is preserved and surfaced through `source()`.
    Transport {
        /// What the transport was doing when it failed.
        context: String,
        /// The originating I/O error.
        source: Arc<std::io::Error>,
    },
    /// A wire-protocol violation: bad magic, unsupported version,
    /// unexpected message kind, or a failed handshake.
    Protocol {
        /// Human-readable reason.
        reason: String,
    },
}

impl FlError {
    /// Wraps an I/O error with the transport context it occurred in.
    pub fn transport(context: impl Into<String>, source: std::io::Error) -> Self {
        FlError::Transport {
            context: context.into(),
            source: Arc::new(source),
        }
    }

    /// A transport error for a peer that disconnected mid-exchange
    /// (channel hung up, socket closed).
    pub fn disconnected(context: impl Into<String>) -> Self {
        FlError::transport(
            context,
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer disconnected"),
        )
    }
}

impl PartialEq for FlError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (FlError::Nn(a), FlError::Nn(b)) => a == b,
            (FlError::Tee(a), FlError::Tee(b)) => a == b,
            (FlError::NoEligibleClients { round: a }, FlError::NoEligibleClients { round: b }) => {
                a == b
            }
            (
                FlError::RoundCollapsed {
                    round: ra,
                    stragglers: sa,
                    failures: fa,
                },
                FlError::RoundCollapsed {
                    round: rb,
                    stragglers: sb,
                    failures: fb,
                },
            ) => ra == rb && sa == sb && fa == fb,
            (FlError::BadAggregation { reason: a }, FlError::BadAggregation { reason: b })
            | (FlError::BadConfig { reason: a }, FlError::BadConfig { reason: b })
            | (FlError::InvalidSelection { reason: a }, FlError::InvalidSelection { reason: b })
            | (FlError::Protocol { reason: a }, FlError::Protocol { reason: b }) => a == b,
            (
                FlError::ClientFailure {
                    client: ca,
                    reason: ra,
                },
                FlError::ClientFailure {
                    client: cb,
                    reason: rb,
                },
            ) => ca == cb && ra == rb,
            // io::Error is not PartialEq; compare kind and rendering.
            (
                FlError::Transport {
                    context: xa,
                    source: sa,
                },
                FlError::Transport {
                    context: xb,
                    source: sb,
                },
            ) => xa == xb && sa.kind() == sb.kind() && sa.to_string() == sb.to_string(),
            _ => false,
        }
    }
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::Nn(e) => write!(f, "model error: {e}"),
            FlError::Tee(e) => write!(f, "tee error: {e}"),
            FlError::NoEligibleClients { round } => {
                write!(f, "no eligible clients for round {round}")
            }
            FlError::RoundCollapsed {
                round,
                stragglers,
                failures,
            } => {
                write!(
                    f,
                    "round {round} collapsed: no update committed \
                     ({stragglers} stragglers, {failures} failures)"
                )
            }
            FlError::BadAggregation { reason } => write!(f, "bad aggregation: {reason}"),
            FlError::BadConfig { reason } => write!(f, "bad config: {reason}"),
            FlError::InvalidSelection { reason } => write!(f, "invalid selection: {reason}"),
            FlError::ClientFailure { client, reason } => {
                write!(f, "client {client} failed: {reason}")
            }
            FlError::Transport { context, source } => {
                write!(f, "transport error while {context}: {source}")
            }
            FlError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Nn(e) => Some(e),
            FlError::Tee(e) => Some(e),
            FlError::Transport { source, .. } => Some(source.as_ref()),
            // The remaining variants originate here: there is no deeper
            // cause to chain to.
            FlError::NoEligibleClients { .. }
            | FlError::RoundCollapsed { .. }
            | FlError::BadAggregation { .. }
            | FlError::BadConfig { .. }
            | FlError::InvalidSelection { .. }
            | FlError::ClientFailure { .. }
            | FlError::Protocol { .. } => None,
        }
    }
}

impl From<NnError> for FlError {
    fn from(e: NnError) -> Self {
        FlError::Nn(e)
    }
}

impl From<TeeError> for FlError {
    fn from(e: TeeError) -> Self {
        FlError::Tee(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display() {
        let e: FlError = NnError::EmptyModel.into();
        assert!(e.to_string().contains("model error"));
        let e: FlError = TeeError::BadHandle { handle: 3 }.into();
        assert!(e.to_string().contains("tee error"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlError>();
    }

    #[test]
    fn transport_errors_chain_to_the_io_cause() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer went away");
        let e = FlError::transport("reading envelope header", io);
        assert!(e.to_string().contains("reading envelope header"));
        let src = e.source().expect("io cause is chained");
        let io = src
            .downcast_ref::<std::io::Error>()
            .expect("source is the io::Error");
        assert_eq!(io.kind(), std::io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn transport_equality_compares_kind_and_message() {
        let mk = || {
            FlError::transport(
                "x",
                std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"),
            )
        };
        assert_eq!(mk(), mk());
        assert_ne!(
            mk(),
            FlError::transport(
                "x",
                std::io::Error::new(std::io::ErrorKind::TimedOut, "gone"),
            )
        );
        assert_ne!(mk(), FlError::Protocol { reason: "x".into() });
    }

    #[test]
    fn non_source_variants_report_none() {
        for e in [
            FlError::NoEligibleClients { round: 1 },
            FlError::RoundCollapsed {
                round: 2,
                stragglers: 3,
                failures: 0,
            },
            FlError::BadConfig { reason: "r".into() },
            FlError::InvalidSelection { reason: "d".into() },
            FlError::Protocol { reason: "v".into() },
            FlError::ClientFailure {
                client: 1,
                reason: "r".into(),
            },
        ] {
            assert!(e.source().is_none(), "{e} should have no source");
        }
    }
}
