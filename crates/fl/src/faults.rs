//! Deterministic fault & straggler injection for the federation stack.
//!
//! Real fleets are never the ideal fleet the paper evaluates: clients are
//! slow (stragglers), intermittently unreachable (dropouts), permanently
//! gone (crashes), or sit behind lossy links that eat or mangle messages.
//! This module turns all of that into a *seeded, reproducible* simulation
//! layer threaded through the transport, the execution engine and the
//! runners:
//!
//! * [`FaultPlan`] — the configuration: per-client latency distributions
//!   on the simulated clock ([`LatencyModel`]), a per-round dropout
//!   probability, explicit crash-at-round entries, per-message
//!   drop/garble probabilities for the transport, a round deadline that
//!   turns slow clients into stragglers, and an over-provisioning spare
//!   count for selection.
//! * [`FaultyEndpoint`] — a [`ServerEndpoint`] wrapper injecting the
//!   transport-level faults around *any* backend (in-process, channel or
//!   TCP), so a faulted run behaves identically whichever transport
//!   carries it.
//!
//! **Determinism.** Every fault decision is a pure function of
//! `(fault seed, client id, round-or-message index)` — no shared RNG
//! stream, no wall clock. Concurrent workers, shard layouts and
//! transports therefore all observe the *same* faults, and a faulted
//! round report is bit-identical for any `(shards, workers, transport)`
//! combination under the same seed (asserted by
//! `tests/integration_faults.rs` and the `repro_faults` binary).

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::message::limits::MAX_PLAN_ENTRIES;
use crate::message::{decode_len, need, Envelope, HelloAck, MessageKind, Wire};
use crate::transport::ServerEndpoint;
use crate::{FlError, Result};

/// A simulated network/compute latency distribution, drawn per
/// `(client, round)` on the simulated clock (seconds). The draw never
/// consumes a shared RNG stream, so it is independent of execution order.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum LatencyModel {
    /// No added latency (the default).
    #[default]
    None,
    /// A constant latency in seconds.
    Fixed(f64),
    /// Uniform in `[min_s, max_s)`.
    Uniform {
        /// Lower bound, seconds.
        min_s: f64,
        /// Upper bound, seconds.
        max_s: f64,
    },
    /// Exponential with the given mean — the classic long-tail straggler
    /// model.
    Exponential {
        /// Mean latency, seconds.
        mean_s: f64,
    },
}

impl LatencyModel {
    /// Draws one latency from the distribution using `rng`.
    fn draw(&self, rng: &mut StdRng) -> f64 {
        match *self {
            LatencyModel::None => 0.0,
            LatencyModel::Fixed(s) => s,
            LatencyModel::Uniform { min_s, max_s } => {
                let u: f64 = rng.random();
                min_s + (max_s - min_s) * u
            }
            LatencyModel::Exponential { mean_s } => {
                let u: f64 = rng.random();
                -mean_s * (1.0 - u).ln()
            }
        }
    }

    fn validate(&self) -> Result<()> {
        let bad = |reason: String| Err(FlError::BadConfig { reason });
        match *self {
            LatencyModel::None => Ok(()),
            LatencyModel::Fixed(s) => {
                if !s.is_finite() || s < 0.0 {
                    return bad(format!("fixed latency must be finite and >= 0, got {s}"));
                }
                Ok(())
            }
            LatencyModel::Uniform { min_s, max_s } => {
                if !min_s.is_finite() || !max_s.is_finite() || min_s < 0.0 || max_s < min_s {
                    return bad(format!(
                        "uniform latency needs 0 <= min <= max, got [{min_s}, {max_s})"
                    ));
                }
                Ok(())
            }
            LatencyModel::Exponential { mean_s } => {
                if !mean_s.is_finite() || mean_s < 0.0 {
                    return bad(format!(
                        "exponential latency mean must be finite and >= 0, got {mean_s}"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Domain-separation salts: one per fault decision, so the latency draw
/// of a `(client, round)` never correlates with its dropout draw.
const SALT_LATENCY: u64 = 0x4C41_5445_4E43_5931; // "LATENCY1"
const SALT_DROPOUT: u64 = 0x4452_4F50_4F55_5431; // "DROPOUT1"
const SALT_MSG_DROP: u64 = 0x4D53_4744_524F_5031; // "MSGDROP1"
const SALT_MSG_GARBLE: u64 = 0x4D53_4747_4152_4231; // "MSGGARB1"

/// A private RNG for one fault decision: seeded from the plan seed, a
/// purpose salt, the client id and a per-purpose index, mixed through
/// SplitMix64 by `seed_from_u64`. Pure function of its inputs — this is
/// the whole determinism story.
pub(crate) fn decision_rng(seed: u64, salt: u64, client: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ salt.rotate_left(17)
            ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03),
    )
}

/// The full fault configuration of one federation run.
///
/// Build one with [`FaultPlan::seeded`] and chain the knob setters;
/// install it with
/// [`FederationBuilder::faults`](crate::runner::FederationBuilder::faults).
/// An unconfigured knob injects nothing, so `FaultPlan::seeded(s)` alone
/// is a no-op plan (useful to turn on fault *tolerance* — over-provisioned
/// selection, non-fatal client failures — without injecting anything).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    latency: LatencyModel,
    client_latency: BTreeMap<u64, LatencyModel>,
    dropout: f64,
    crash_at: BTreeMap<u64, u64>,
    drop_prob: f64,
    garble_prob: f64,
    round_deadline_s: Option<f64>,
    spare: usize,
}

impl FaultPlan {
    /// A plan injecting nothing, rooted at `seed`. Every probabilistic
    /// knob derives its decisions from this seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the default latency distribution every client draws from.
    #[must_use]
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency = model;
        self
    }

    /// Overrides the latency distribution for one client (per-client
    /// heterogeneous fleets: a few slow devices among fast ones).
    #[must_use]
    pub fn client_latency(mut self, client: u64, model: LatencyModel) -> Self {
        self.client_latency.insert(client, model);
        self
    }

    /// Probability that a client is unreachable for a whole round
    /// (fails screening and any training exchange of that round).
    #[must_use]
    pub fn dropout(mut self, prob: f64) -> Self {
        self.dropout = prob;
        self
    }

    /// Marks `client` as permanently dead from `round` onward (the
    /// crash-at-cycle model: the device leaves the fleet and never
    /// returns).
    #[must_use]
    pub fn crash_at(mut self, client: u64, round: u64) -> Self {
        self.crash_at.insert(client, round);
        self
    }

    /// Probability that any single attestation/training exchange is
    /// dropped by the transport (the request never reaches the client;
    /// the server sees a transport error).
    #[must_use]
    pub fn drop_messages(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Probability that a reply is garbled in flight (the payload is
    /// truncated, so decoding fails deterministically at the server).
    #[must_use]
    pub fn garble_replies(mut self, prob: f64) -> Self {
        self.garble_prob = prob;
        self
    }

    /// Round deadline on the *simulated* clock: a client whose injected
    /// latency plus simulated cycle time exceeds it is recorded as a
    /// straggler instead of a participant.
    #[must_use]
    pub fn deadline_s(mut self, seconds: f64) -> Self {
        self.round_deadline_s = Some(seconds);
        self
    }

    /// Over-provisions selection by `spare` extra clients per round: the
    /// server samples `clients_per_round + spare` and commits the first
    /// `clients_per_round` survivors in canonical (sorted-index) order,
    /// so faulted rounds still aggregate a full cohort when enough
    /// spares survive.
    #[must_use]
    pub fn spare(mut self, spare: usize) -> Self {
        self.spare = spare;
        self
    }

    /// The configured spare count.
    pub fn spare_count(&self) -> usize {
        self.spare
    }

    /// The configured round deadline, if any.
    pub fn round_deadline_s(&self) -> Option<f64> {
        self.round_deadline_s
    }

    /// Checks every knob is in range.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for probabilities outside `[0, 1]`,
    /// non-positive deadlines, or malformed latency distributions.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("dropout", self.dropout),
            ("drop_messages", self.drop_prob),
            ("garble_replies", self.garble_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(FlError::BadConfig {
                    reason: format!("{name} probability must be in [0, 1], got {p}"),
                });
            }
        }
        if let Some(d) = self.round_deadline_s {
            if !d.is_finite() || d <= 0.0 {
                return Err(FlError::BadConfig {
                    reason: format!("round deadline must be finite and positive, got {d}"),
                });
            }
        }
        self.latency.validate()?;
        for model in self.client_latency.values() {
            model.validate()?;
        }
        Ok(())
    }

    /// The simulated latency `client` experiences in `round` — a pure
    /// function of `(seed, client, round)`, identical on every worker,
    /// shard and transport.
    pub fn latency_s(&self, client: u64, round: u64) -> f64 {
        let model = self.client_latency.get(&client).unwrap_or(&self.latency);
        if *model == LatencyModel::None {
            return 0.0;
        }
        let mut rng = decision_rng(self.seed, SALT_LATENCY, client, round);
        model.draw(&mut rng)
    }

    /// Whether `client` is down for the whole of `round` — crashed at or
    /// before it, or dropped out for it.
    pub fn down(&self, client: u64, round: u64) -> bool {
        if self
            .crash_at
            .get(&client)
            .is_some_and(|&crash| round >= crash)
        {
            return true;
        }
        if self.dropout <= 0.0 {
            return false;
        }
        decision_rng(self.seed, SALT_DROPOUT, client, round).random_bool(self.dropout)
    }

    /// Whether the transport eats `client`'s `nth` faultable exchange.
    pub fn drops_message(&self, client: u64, nth: u64) -> bool {
        self.drop_prob > 0.0
            && decision_rng(self.seed, SALT_MSG_DROP, client, nth).random_bool(self.drop_prob)
    }

    /// Whether the transport garbles the reply of `client`'s `nth`
    /// faultable exchange.
    pub fn garbles_reply(&self, client: u64, nth: u64) -> bool {
        self.garble_prob > 0.0
            && decision_rng(self.seed, SALT_MSG_GARBLE, client, nth).random_bool(self.garble_prob)
    }

    /// `true` when no knob injects anything (the tolerance-only plan).
    pub fn is_quiet(&self) -> bool {
        self.dropout == 0.0
            && self.drop_prob == 0.0
            && self.garble_prob == 0.0
            && self.crash_at.is_empty()
            && self.round_deadline_s.is_none()
            && self.latency == LatencyModel::None
            && self.client_latency.is_empty()
    }
}

impl Wire for LatencyModel {
    fn encode_into(&self, buf: &mut BytesMut) {
        match *self {
            LatencyModel::None => buf.put_u8(0),
            LatencyModel::Fixed(s) => {
                buf.put_u8(1);
                buf.put_f64_le(s);
            }
            LatencyModel::Uniform { min_s, max_s } => {
                buf.put_u8(2);
                buf.put_f64_le(min_s);
                buf.put_f64_le(max_s);
            }
            LatencyModel::Exponential { mean_s } => {
                buf.put_u8(3);
                buf.put_f64_le(mean_s);
            }
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 1, "latency model tag")?;
        let model = match buf.get_u8() {
            0 => LatencyModel::None,
            1 => {
                need(buf, 8, "fixed latency")?;
                LatencyModel::Fixed(buf.get_f64_le())
            }
            2 => {
                need(buf, 16, "uniform latency")?;
                LatencyModel::Uniform {
                    min_s: buf.get_f64_le(),
                    max_s: buf.get_f64_le(),
                }
            }
            3 => {
                need(buf, 8, "exponential latency")?;
                LatencyModel::Exponential {
                    mean_s: buf.get_f64_le(),
                }
            }
            other => {
                return Err(FlError::BadConfig {
                    reason: format!("unknown latency model tag {other}"),
                })
            }
        };
        model.validate()?;
        Ok(model)
    }
}

impl Wire for FaultPlan {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.seed);
        self.latency.encode_into(buf);
        buf.put_u64_le(self.client_latency.len() as u64);
        for (&client, model) in &self.client_latency {
            buf.put_u64_le(client);
            model.encode_into(buf);
        }
        buf.put_f64_le(self.dropout);
        buf.put_u64_le(self.crash_at.len() as u64);
        for (&client, &round) in &self.crash_at {
            buf.put_u64_le(client);
            buf.put_u64_le(round);
        }
        buf.put_f64_le(self.drop_prob);
        buf.put_f64_le(self.garble_prob);
        match self.round_deadline_s {
            Some(d) => {
                buf.put_u8(1);
                buf.put_f64_le(d);
            }
            None => buf.put_u8(0),
        }
        buf.put_u64_le(self.spare as u64);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8, "fault plan seed")?;
        let seed = buf.get_u64_le();
        let latency = LatencyModel::decode_from(buf)?;
        let n = decode_len(buf, "client latency count")?;
        if n > MAX_PLAN_ENTRIES {
            return Err(FlError::BadConfig {
                reason: format!("client latency count {n} exceeds protocol maximum"),
            });
        }
        let mut client_latency = BTreeMap::new();
        for _ in 0..n {
            need(buf, 8, "client latency id")?;
            let client = buf.get_u64_le();
            client_latency.insert(client, LatencyModel::decode_from(buf)?);
        }
        need(buf, 8, "dropout probability")?;
        let dropout = buf.get_f64_le();
        let n = decode_len(buf, "crash entry count")?;
        if n > MAX_PLAN_ENTRIES {
            return Err(FlError::BadConfig {
                reason: format!("crash entry count {n} exceeds protocol maximum"),
            });
        }
        need(buf, 16 * n, "crash entries")?;
        let mut crash_at = BTreeMap::new();
        for _ in 0..n {
            let client = buf.get_u64_le();
            crash_at.insert(client, buf.get_u64_le());
        }
        need(buf, 8 + 8 + 1, "fault plan probabilities")?;
        let drop_prob = buf.get_f64_le();
        let garble_prob = buf.get_f64_le();
        let round_deadline_s = match buf.get_u8() {
            0 => None,
            1 => {
                need(buf, 8, "round deadline")?;
                Some(buf.get_f64_le())
            }
            other => {
                return Err(FlError::BadConfig {
                    reason: format!("bad deadline presence flag {other}"),
                })
            }
        };
        let spare = decode_len(buf, "spare count")?;
        let plan = FaultPlan {
            seed,
            latency,
            client_latency,
            dropout,
            crash_at,
            drop_prob,
            garble_prob,
            round_deadline_s,
            spare,
        };
        plan.validate()?;
        Ok(plan)
    }
}

/// The transport error a dropped/unreachable exchange synthesises. The
/// rendering is transport-independent on purpose: a faulted run must look
/// the same over TCP and in-process pipes.
fn injected_failure(what: &str) -> FlError {
    FlError::transport(
        format!("fault injection: {what}"),
        std::io::Error::new(std::io::ErrorKind::ConnectionAborted, "injected fault"),
    )
}

/// A [`ServerEndpoint`] wrapper injecting the plan's transport-level
/// faults around any backend.
///
/// The wrapper learns the client's identity from the `HelloAck` passing
/// through it, counts rounds by the attestation requests it sees (the
/// server screens every client exactly once per round), and reads the
/// round of a model download straight off the payload's leading bytes —
/// so every decision keys on `(client, round)` or `(client, message
/// index)` without touching a shared stream. `Hello` and `Goodbye`
/// always pass through untouched: fault injection must never break
/// session setup or teardown.
pub struct FaultyEndpoint {
    inner: Box<dyn ServerEndpoint>,
    plan: Arc<FaultPlan>,
    client: Option<u64>,
    attests_seen: u64,
    messages_seen: u64,
}

impl std::fmt::Debug for FaultyEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyEndpoint")
            .field("client", &self.client)
            .field("inner", &self.inner.descriptor())
            .finish()
    }
}

impl FaultyEndpoint {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: Box<dyn ServerEndpoint>, plan: Arc<FaultPlan>) -> Self {
        FaultyEndpoint {
            inner,
            plan,
            client: None,
            attests_seen: 0,
            messages_seen: 0,
        }
    }

    /// The round a faultable request belongs to. Attestation requests are
    /// counted (the server screens every client exactly once per round);
    /// a model download keys on the *same* counter its round's screening
    /// used, so "down for a whole round" holds by construction — the two
    /// exchanges of one round can never disagree, even if the server's
    /// round counter drifts from the screen count (a caller retrying
    /// `run_round` after a collapsed round screens again without the
    /// round number having advanced). Downloads driven without a
    /// preceding screen (raw engine harnesses) fall back to the round
    /// carried in the payload's leading 8 bytes.
    fn round_of(&mut self, request: &Envelope) -> u64 {
        match request.kind {
            // Both download kinds lead with the round in their first 8
            // payload bytes — the encoded (v4) layout preserves the plain
            // one's prefix precisely so this peek stays codec-agnostic.
            MessageKind::ModelDownload | MessageKind::EncodedModelDownload => {
                match self.attests_seen.checked_sub(1) {
                    Some(screened) => screened,
                    None => request
                        .payload
                        .first_chunk::<8>()
                        .map(|b| u64::from_le_bytes(*b))
                        .unwrap_or(0),
                }
            }
            _ => {
                let round = self.attests_seen;
                self.attests_seen += 1;
                round
            }
        }
    }
}

impl ServerEndpoint for FaultyEndpoint {
    fn exchange(&mut self, request: Envelope) -> Result<Envelope> {
        match request.kind {
            MessageKind::Hello => {
                let reply = self.inner.exchange(request)?;
                if let Ok(ack) = reply.open::<HelloAck>(MessageKind::HelloAck) {
                    self.client = Some(ack.client_id);
                }
                Ok(reply)
            }
            MessageKind::AttestationRequest
            | MessageKind::ModelDownload
            | MessageKind::EncodedModelDownload => {
                let client = self.client.unwrap_or_default();
                let round = self.round_of(&request);
                let nth = self.messages_seen;
                self.messages_seen += 1;
                if self.plan.down(client, round) {
                    return Err(injected_failure("client is down this round"));
                }
                if self.plan.drops_message(client, nth) {
                    return Err(injected_failure("exchange dropped in flight"));
                }
                let mut reply = self.inner.exchange(request)?;
                if self.plan.garbles_reply(client, nth) {
                    // Truncation is the one corruption every decoder
                    // detects deterministically (a bit-flip inside f32
                    // weight data would decode fine and silently poison
                    // the aggregate).
                    reply.payload.truncate(reply.payload.len() / 2);
                }
                Ok(reply)
            }
            _ => self.inner.exchange(request),
        }
    }

    fn notify(&mut self, message: Envelope) -> Result<()> {
        // Teardown messages are never faulted: shutdown must stay clean
        // even under the nastiest plan.
        self.inner.notify(message)
    }

    fn descriptor(&self) -> String {
        format!("faulty:{}", self.inner.descriptor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DeviceProfile, FlClient};
    use crate::trainer::PlainSgdTrainer;
    use crate::transport::inprocess::LocalEndpoint;
    use crate::transport::RemoteClient;
    use gradsec_data::SyntheticMicro;
    use gradsec_nn::zoo;

    fn endpoint(id: u64, plan: Arc<FaultPlan>) -> RemoteClient {
        let ds = std::sync::Arc::new(SyntheticMicro::new(8, 2, 4, 1));
        let client = FlClient::new(
            id,
            DeviceProfile::trustzone(id),
            ds,
            (0..8).collect(),
            zoo::tiny_mlp(4, 3, 2, 1).unwrap(),
            Box::new(PlainSgdTrainer),
        );
        let inner: Box<dyn ServerEndpoint> = Box::new(LocalEndpoint::new(client));
        RemoteClient::connect(Box::new(FaultyEndpoint::new(inner, plan))).unwrap()
    }

    #[test]
    fn draws_are_pure_functions_of_their_inputs() {
        let plan = FaultPlan::seeded(7)
            .latency(LatencyModel::Uniform {
                min_s: 0.5,
                max_s: 2.0,
            })
            .dropout(0.3)
            .drop_messages(0.2)
            .garble_replies(0.2);
        for client in 0..20u64 {
            for round in 0..5u64 {
                assert_eq!(plan.latency_s(client, round), plan.latency_s(client, round));
                assert_eq!(plan.down(client, round), plan.down(client, round));
                assert_eq!(
                    plan.drops_message(client, round),
                    plan.drops_message(client, round)
                );
            }
        }
        // Different seeds decorrelate.
        let other = FaultPlan::seeded(8).dropout(0.3);
        let a: Vec<bool> = (0..200).map(|c| plan.down(c, 0)).collect();
        let b: Vec<bool> = (0..200).map(|c| other.down(c, 0)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn latency_models_respect_their_supports() {
        let uniform = FaultPlan::seeded(3).latency(LatencyModel::Uniform {
            min_s: 1.0,
            max_s: 4.0,
        });
        let expo = FaultPlan::seeded(3).latency(LatencyModel::Exponential { mean_s: 2.0 });
        let fixed = FaultPlan::seeded(3).latency(LatencyModel::Fixed(0.25));
        for c in 0..100u64 {
            let u = uniform.latency_s(c, 1);
            assert!((1.0..4.0).contains(&u), "{u}");
            assert!(expo.latency_s(c, 1) >= 0.0);
            assert_eq!(fixed.latency_s(c, 1), 0.25);
            assert_eq!(FaultPlan::seeded(3).latency_s(c, 1), 0.0);
        }
    }

    #[test]
    fn per_client_latency_overrides_the_default() {
        let plan = FaultPlan::seeded(5)
            .latency(LatencyModel::Fixed(0.1))
            .client_latency(3, LatencyModel::Fixed(9.0));
        assert_eq!(plan.latency_s(0, 0), 0.1);
        assert_eq!(plan.latency_s(3, 0), 9.0);
    }

    #[test]
    fn crash_at_is_permanent_dropout_is_per_round() {
        let plan = FaultPlan::seeded(11).crash_at(2, 3);
        for round in 0..3 {
            assert!(!plan.down(2, round), "round {round}: not crashed yet");
        }
        for round in 3..8 {
            assert!(plan.down(2, round), "round {round}: crashed for good");
        }
        // A 100% dropout takes every round; 0% takes none.
        let all = FaultPlan::seeded(11).dropout(1.0);
        let none = FaultPlan::seeded(11).dropout(0.0);
        for round in 0..5 {
            assert!(all.down(0, round));
            assert!(!none.down(0, round));
        }
    }

    #[test]
    fn dropout_rate_lands_near_the_configured_probability() {
        let plan = FaultPlan::seeded(19).dropout(0.1);
        let down = (0..5000u64).filter(|&c| plan.down(c, 0)).count();
        let rate = down as f64 / 5000.0;
        assert!((0.07..0.13).contains(&rate), "rate {rate}");
    }

    #[test]
    fn validation_rejects_out_of_range_knobs() {
        assert!(FaultPlan::seeded(1).dropout(1.5).validate().is_err());
        assert!(FaultPlan::seeded(1).drop_messages(-0.1).validate().is_err());
        assert!(FaultPlan::seeded(1)
            .garble_replies(f64::NAN)
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(1).deadline_s(0.0).validate().is_err());
        assert!(FaultPlan::seeded(1)
            .latency(LatencyModel::Uniform {
                min_s: 2.0,
                max_s: 1.0
            })
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(1)
            .client_latency(0, LatencyModel::Fixed(-1.0))
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(1)
            .dropout(0.2)
            .drop_messages(0.1)
            .garble_replies(0.1)
            .deadline_s(3.0)
            .latency(LatencyModel::Exponential { mean_s: 1.0 })
            .spare(4)
            .validate()
            .is_ok());
    }

    #[test]
    fn quiet_plans_know_they_are_quiet() {
        assert!(FaultPlan::seeded(9).spare(3).is_quiet());
        assert!(!FaultPlan::seeded(9).dropout(0.1).is_quiet());
        assert!(!FaultPlan::seeded(9).deadline_s(1.0).is_quiet());
        assert!(!FaultPlan::seeded(9).crash_at(0, 0).is_quiet());
    }

    #[test]
    fn faulty_endpoint_passes_handshake_and_learns_identity() {
        let plan = Arc::new(FaultPlan::seeded(1).dropout(1.0));
        // Even a 100%-dropout plan must let the handshake through.
        let remote = endpoint(42, plan);
        assert_eq!(remote.id(), 42);
        assert!(remote.descriptor().starts_with("faulty:"));
    }

    #[test]
    fn down_client_fails_attestation_exchanges() {
        use gradsec_tee::attestation::Challenge;
        let plan = Arc::new(FaultPlan::seeded(1).crash_at(7, 0));
        let mut remote = endpoint(7, plan);
        let err = remote.attest(&Challenge::new([0u8; 16])).unwrap_err();
        assert!(matches!(err, FlError::Transport { .. }), "{err:?}");
        assert!(err.to_string().contains("fault injection"), "{err}");
    }

    #[test]
    fn garbled_replies_fail_decoding_not_the_process() {
        use gradsec_tee::attestation::Challenge;
        let plan = Arc::new(FaultPlan::seeded(2).garble_replies(1.0));
        let mut remote = endpoint(1, plan);
        let err = remote.attest(&Challenge::new([0u8; 16])).unwrap_err();
        // Truncated payload: the typed decode fails cleanly.
        assert!(
            matches!(err, FlError::BadConfig { .. } | FlError::Protocol { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn screening_and_download_faults_agree_even_when_the_round_counter_drifts() {
        use crate::config::TrainingPlan;
        use crate::message::ModelDownload;
        use gradsec_tee::attestation::Challenge;
        // Client 7 crashes at round 1. Round 0 is healthy end to end;
        // after the second screen (round 1 → down), a download must be
        // rejected too — even though a retrying server would still stamp
        // the payload with its unadvanced round 0. The endpoint keys the
        // download on the same counter screening used, so the two
        // exchanges of one round can never disagree.
        let plan = Arc::new(FaultPlan::seeded(4).crash_at(7, 1));
        let mut remote = endpoint(7, plan);
        let download = ModelDownload {
            round: 0,
            weights: zoo::tiny_mlp(4, 3, 2, 1).unwrap().weights(),
            plan: TrainingPlan {
                rounds: 2,
                clients_per_round: 1,
                batches_per_cycle: 1,
                batch_size: 2,
                learning_rate: 0.05,
                seed: 1,
            },
            protected_layers: vec![],
        };
        remote.attest(&Challenge::new([0u8; 16])).unwrap();
        remote.train(&download).unwrap();
        let err = remote.attest(&Challenge::new([1u8; 16])).unwrap_err();
        assert!(err.to_string().contains("down"), "{err}");
        let err = remote.train(&download).unwrap_err();
        assert!(err.to_string().contains("down"), "{err}");
    }

    #[test]
    fn encoded_downloads_are_faulted_by_their_payload_round_peek() {
        use crate::config::TrainingPlan;
        use crate::message::ModelDownload;
        // No screening precedes these downloads, so the endpoint must
        // read the round from the payload's leading bytes — which at
        // protocol v4 belong to an *encoded* download. Client 3 crashes
        // at round 2: rounds 0 and 1 pass, round 2 is refused.
        let plan = Arc::new(FaultPlan::seeded(11).crash_at(3, 2));
        let mut remote = endpoint(3, plan);
        let tp = TrainingPlan {
            rounds: 3,
            clients_per_round: 1,
            batches_per_cycle: 1,
            batch_size: 2,
            learning_rate: 0.05,
            seed: 1,
        };
        let mut weights = zoo::tiny_mlp(4, 3, 2, 1).unwrap().weights();
        for round in 0..2u64 {
            let download = ModelDownload {
                round,
                weights: weights.clone(),
                plan: tp,
                protected_layers: vec![],
            };
            let upload = remote.train(&download).unwrap();
            assert!(upload.cost.wire.download_encoded_bytes > 0);
            weights = upload.weights;
        }
        let err = remote
            .train(&ModelDownload {
                round: 2,
                weights,
                plan: tp,
                protected_layers: vec![],
            })
            .unwrap_err();
        assert!(err.to_string().contains("down"), "{err}");
    }

    #[test]
    fn goodbye_is_never_faulted() {
        let plan = Arc::new(
            FaultPlan::seeded(3)
                .dropout(1.0)
                .drop_messages(1.0)
                .garble_replies(1.0),
        );
        let mut remote = endpoint(5, plan);
        remote.goodbye().unwrap();
    }
}
