//! Global-model snapshot history.
//!
//! The DPIA attacker is "long-term": it differences consecutive snapshots
//! of the global model to recover the *aggregated* gradients of each FL
//! cycle (paper §3.2). The server-side history recorded here is exactly
//! the observable that attack consumes.

use gradsec_nn::gradient::GradientSnapshot;
use gradsec_nn::model::ModelWeights;

use crate::Result;

/// An append-only record of the global model after each round.
#[derive(Debug, Clone, Default)]
pub struct SnapshotHistory {
    snapshots: Vec<ModelWeights>,
}

impl SnapshotHistory {
    /// An empty history.
    pub fn new() -> Self {
        SnapshotHistory::default()
    }

    /// Records the global model (call once per round, plus once for the
    /// initial model).
    pub fn push(&mut self, weights: ModelWeights) {
        self.snapshots.push(weights);
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshot after round `r` (index 0 is the initial model).
    pub fn snapshot(&self, index: usize) -> Option<&ModelWeights> {
        self.snapshots.get(index)
    }

    /// The latest snapshot.
    pub fn latest(&self) -> Option<&ModelWeights> {
        self.snapshots.last()
    }

    /// Recovers the aggregated gradients of round `r` (0-based) via the
    /// weight-difference formula — what the DPIA attacker computes from
    /// "two consecutive snapshots of the global model" (paper §3.2).
    ///
    /// # Errors
    ///
    /// Propagates architecture mismatches; returns `Ok(None)` when the
    /// round is not covered by the history.
    pub fn aggregated_gradients(
        &self,
        round: usize,
        learning_rate: f32,
    ) -> Result<Option<GradientSnapshot>> {
        let (Some(before), Some(after)) =
            (self.snapshots.get(round), self.snapshots.get(round + 1))
        else {
            return Ok(None);
        };
        let g = GradientSnapshot::from_weight_diff(before, after, learning_rate)?;
        Ok(Some(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_nn::model::LayerWeights;
    use gradsec_tensor::Tensor;

    fn weights(v: f32) -> ModelWeights {
        ModelWeights::new(vec![LayerWeights {
            w: Tensor::full(&[3], v),
            b: Tensor::full(&[1], v),
        }])
    }

    #[test]
    fn records_in_order() {
        let mut h = SnapshotHistory::new();
        assert!(h.is_empty());
        h.push(weights(0.0));
        h.push(weights(1.0));
        assert_eq!(h.len(), 2);
        assert_eq!(h.snapshot(1), Some(&weights(1.0)));
        assert_eq!(h.latest(), Some(&weights(1.0)));
    }

    #[test]
    fn gradient_recovery() {
        let mut h = SnapshotHistory::new();
        h.push(weights(1.0));
        h.push(weights(0.9)); // dW = (1.0 - 0.9)/0.1 = 1.0
        let g = h.aggregated_gradients(0, 0.1).unwrap().unwrap();
        assert!(g
            .layer(0)
            .unwrap()
            .dw
            .approx_eq(&Tensor::full(&[3], 1.0), 1e-4));
        assert!(h.aggregated_gradients(1, 0.1).unwrap().is_none());
    }
}
