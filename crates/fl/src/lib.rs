//! # gradsec-fl
//!
//! Federated-learning substrate for the GradSec reproduction: the server,
//! clients, aggregation and orchestration of Figure 2 in the paper.
//!
//! The workflow mirrors the paper's §5 exactly:
//!
//! 1. **Selection** — the server filters clients to TEE-capable devices and
//!    verifies a remote-attestation quote before admitting them to a cycle
//!    ([`selection`]).
//! 2. **Transmission** — the global model and training plan are shipped to
//!    the selected clients ([`message`]) over a pluggable [`transport`]
//!    (in-process by default; TCP for multi-process deployments).
//! 3. **Secure local training** — each client trains locally through a
//!    pluggable [`LocalTrainer`](trainer::LocalTrainer); the plain SGD
//!    trainer lives here, the enclave-partitioned GradSec trainer in
//!    `gradsec-core`.
//! 4. **Upload & aggregation** — updates are FedAvg-combined
//!    ([`aggregate`]) and the global snapshot history is recorded for the
//!    long-term DPIA attacker ([`history`]).
//!
//! Rounds run on a flat fleet ([`runner::Federation`]); for 10⁴+
//! simulated clients, on a fleet partitioned across independent engine
//! shards ([`runner::ShardedFederation`]); or across real OS processes,
//! with a [`distributed::DistributedCoordinator`] driving `shard-server`
//! children over the envelope protocol — same results bit-for-bit,
//! scaled-out wall clock. Imperfect fleets — stragglers, dropouts,
//! crashes, lossy links — are simulated by the seeded, deterministic
//! [`faults`] layer, with over-provisioned selection keeping faulted
//! rounds aggregating a full cohort. Hostile fleets — update poisoners,
//! scalers, free-riders, colluding observers — are simulated by the
//! equally-seeded [`adversary`] layer, defended by robust aggregation
//! ([`aggregate::Aggregator`]) and reputation-filtered selection.
//!
//! # Example
//!
//! ```
//! use gradsec_data::SyntheticCifar100;
//! use gradsec_fl::config::TrainingPlan;
//! use gradsec_fl::runner::Federation;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), gradsec_fl::FlError> {
//! let data = Arc::new(SyntheticCifar100::with_classes(64, 4, 1));
//! let plan = TrainingPlan {
//!     rounds: 2,
//!     clients_per_round: 2,
//!     batches_per_cycle: 1,
//!     batch_size: 8,
//!     learning_rate: 0.01,
//!     seed: 7,
//! };
//! let mut fed = Federation::builder(plan)
//!     .model(|| gradsec_nn::zoo::tiny_mlp(3 * 32 * 32, 16, 4, 3).unwrap())
//!     .clients(3, data)
//!     .build()?;
//! let report = fed.run()?;
//! assert_eq!(report.rounds_completed, 2);
//! # Ok(())
//! # }
//! ```

// `deny`, not `forbid`: the epoll wrapper in `transport::poller` is the
// one sanctioned unsafe island (raw readiness syscalls behind a safe
// facade) and opts back in with a module-level `allow`. Everything else
// in the crate still fails to compile on `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod aggregate;
pub mod client;
pub mod codec;
pub mod config;
pub mod distributed;
pub mod engine;
mod error;
pub mod faults;
pub mod history;
pub mod message;
pub mod runner;
pub mod scheduler;
pub mod selection;
pub mod server;
pub mod trainer;
pub mod transport;

pub use adversary::{Adversary, AdversaryPlan, CollusionLog, Persona, ReputationBook};
pub use aggregate::Aggregator;
pub use codec::CodecKind;
pub use config::{MuxOptions, PartitionKind, ShardLayout, TransportKind};
pub use distributed::DistributedCoordinator;
pub use engine::{ClientOutcome, ExecutionEngine};
pub use error::FlError;
pub use faults::{FaultPlan, FaultyEndpoint, LatencyModel};
pub use runner::ShardedFederation;
pub use scheduler::ProtectionScheduler;
pub use transport::{ClientEndpoint, RemoteClient, ServerEndpoint};

/// Crate-wide result alias using [`FlError`].
pub type Result<T> = std::result::Result<T, FlError>;
