//! Wire messages between the FL server and clients.
//!
//! Every payload has a concrete binary framing (a hand-rolled
//! little-endian codec over the `bytes` crate). Since the transport
//! redesign, these bytes genuinely cross process/socket boundaries: each
//! message travels inside a typed, versioned [`Envelope`] whose header
//! doubles as the length-prefixed TCP frame, and the trusted I/O path
//! (`gradsec-tee::tiop`) can seal exactly the same bytes.
//!
//! Protocol-version negotiation is a [`Hello`]/[`HelloAck`] exchange at
//! session start: the server advertises its supported range, the client
//! picks the highest mutually supported version (or refuses with an
//! [`ErrorReply`]).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tee::attestation::{Challenge, Measurement, Quote};
use gradsec_tee::cost::{ClientCycleCost, RoundLedger, TimeBreakdown, WireBill};
use gradsec_tee::ta::Uuid;
use gradsec_tee::tiop::Frame;
use gradsec_tensor::Tensor;

use crate::adversary::AdversaryPlan;
use crate::aggregate::PartialAggregate;
use crate::codec::{CodecKind, EncodedWeights};
use crate::config::TrainingPlan;
use crate::faults::FaultPlan;
use crate::{FlError, Result};

/// The decode-side size caps every length-prefixed field in this
/// protocol is validated against — one named home so hostile lengths
/// are bounded uniformly across the base messages, the shard-control
/// plane, the fault plan and the codec payloads.
pub mod limits {
    /// No single length-prefixed field legitimately exceeds 256 MiB
    /// (bytes for byte fields, elements for f32 fields).
    pub const MAX_FIELD_BYTES: usize = 256 * 1024 * 1024;

    /// Maximum tensor rank any model in this protocol ships.
    pub const MAX_TENSOR_RANK: usize = 16;

    /// Maximum model layer count.
    pub const MAX_LAYERS: usize = 4096;

    /// Maximum protected-layer indices on a download (bounded by the
    /// layer count they index into).
    pub const MAX_PROTECTED_LAYERS: usize = MAX_LAYERS;

    /// Item-count bound for list fields (candidate lists, pick lists,
    /// aggregate terms, ledger entries): no shard legitimately hosts
    /// more than a million clients, so a larger prefix is hostile.
    pub const MAX_LIST_ITEMS: usize = 1 << 20;

    /// Maximum entries a wire-shipped fault plan may carry (one per
    /// client, same fleet bound as [`MAX_LIST_ITEMS`]).
    pub const MAX_PLAN_ENTRIES: usize = MAX_LIST_ITEMS;

    /// Maximum tensors in one encoded payload: two per layer.
    pub const MAX_ENCODED_TENSORS: usize = 2 * MAX_LAYERS;
}

/// The newest protocol version this build speaks.
///
/// Version 1 was the pre-envelope framing (raw message bytes, in-process
/// only); version 2 introduced the [`Envelope`] header and the TEE cost
/// accounting carried on [`UpdateUpload`]; version 3 added the
/// shard-control messages (`Shard*`) a distributed coordinator speaks to
/// `shard-server` processes; version 4 added the update-codec layer —
/// the encoded payload kinds ([`EncodedModelDownload`],
/// [`EncodedUpdateUpload`]), the codec byte negotiated on
/// [`Hello`]/[`HelloAck`], and the wire-bytes bill carried on
/// `ClientCycleCost`; version 5 extended [`ShardConfig`] with the
/// adversarial-scenario fields (the dataset partition kind and an
/// optional `AdversaryPlan`) so shard-server processes re-derive the
/// same hostile fleet the coordinator assembled. Version 1 is no longer
/// spoken; version 2 and 3 peers interoperate on the client protocol
/// (the kinds each version added are only spoken once both sides
/// negotiated it, so an older peer never sees them).
pub const PROTOCOL_VERSION: u16 = 5;

/// The oldest protocol version this build still accepts.
pub const MIN_SUPPORTED_VERSION: u16 = 2;

/// Picks the highest version supported by both this build and a peer
/// advertising `[peer_min, peer_max]`, or `None` when the ranges are
/// disjoint.
pub fn negotiate_version(peer_min: u16, peer_max: u16) -> Option<u16> {
    let chosen = PROTOCOL_VERSION.min(peer_max);
    if chosen >= MIN_SUPPORTED_VERSION.max(peer_min) {
        Some(chosen)
    } else {
        None
    }
}

/// Server → client: attestation challenge during selection (Figure 2-➊).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttestationRequest {
    /// The freshness challenge.
    pub challenge: Challenge,
}

/// Client → server: attestation evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttestationResponse {
    /// The signed quote, absent when the device has no TEE.
    pub quote: Option<Quote>,
}

/// Server → client: the global model and plan for one cycle (Figure 2-➋).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDownload {
    /// Round this download belongs to.
    pub round: u64,
    /// Global model weights.
    pub weights: ModelWeights,
    /// The training plan.
    pub plan: TrainingPlan,
    /// Indices of the layers the client must shelter this cycle (the
    /// GradSec protection configuration; empty = unprotected).
    pub protected_layers: Vec<usize>,
}

/// Client → server: the trained update (Figure 2-➍).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateUpload {
    /// Uploading client.
    pub client_id: u64,
    /// Round the update belongs to.
    pub round: u64,
    /// The client's post-training weights.
    pub weights: ModelWeights,
    /// Samples trained on (FedAvg weighting).
    pub num_samples: usize,
    /// Mean training loss over the cycle.
    pub train_loss: f32,
    /// The cycle's TEE accounting. Carried on the wire (protocol v2) so
    /// the server's round ledger stays complete when the client lives in
    /// another process or on another machine.
    pub cost: ClientCycleCost,
}

/// Server → client (protocol v4): a [`ModelDownload`] whose weights
/// travel as an [`EncodedWeights`] codec payload. The leading round
/// field keeps the same byte offset as the plain download so the fault
/// layer's round peek works on both kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedModelDownload {
    /// Round this download belongs to.
    pub round: u64,
    /// The encoded global model weights.
    pub weights: EncodedWeights,
    /// The training plan.
    pub plan: TrainingPlan,
    /// Indices of the layers the client must shelter this cycle.
    pub protected_layers: Vec<usize>,
}

/// Client → server (protocol v4): an [`UpdateUpload`] whose weights
/// travel as an [`EncodedWeights`] codec payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedUpdateUpload {
    /// Uploading client.
    pub client_id: u64,
    /// Round the update belongs to.
    pub round: u64,
    /// The client's encoded post-training weights.
    pub weights: EncodedWeights,
    /// Samples trained on (FedAvg weighting).
    pub num_samples: usize,
    /// Mean training loss over the cycle.
    pub train_loss: f32,
    /// The cycle's TEE accounting (the server overwrites the wire-bytes
    /// bill with what it actually observed on the wire).
    pub cost: ClientCycleCost,
}

/// Session setup, server → client: the server's supported version range
/// plus the update codec it intends to speak (v4; absent on the wire
/// from older peers, which implies [`CodecKind::Identity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// Oldest protocol version the server accepts.
    pub min_version: u16,
    /// Newest protocol version the server speaks.
    pub max_version: u16,
    /// The update codec the server proposes for this session.
    pub codec: CodecKind,
}

impl Hello {
    /// The Hello this build sends (identity codec).
    pub fn current() -> Self {
        Hello::with_codec(CodecKind::Identity)
    }

    /// The Hello this build sends, proposing `codec`.
    pub fn with_codec(codec: CodecKind) -> Self {
        Hello {
            min_version: MIN_SUPPORTED_VERSION,
            max_version: PROTOCOL_VERSION,
            codec,
        }
    }
}

/// Session setup, client → server: the negotiated version plus the
/// client's identity (which keys the server's attestation registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloAck {
    /// The version the client chose from the server's advertised range.
    pub version: u16,
    /// The connecting client's id.
    pub client_id: u64,
    /// The codec the client accepted (echo of the server's proposal at
    /// v4+; [`CodecKind::Identity`] when the negotiated version
    /// predates codecs).
    pub codec: CodecKind,
}

/// Either direction: a failure report that replaces the expected reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Human-readable reason.
    pub reason: String,
}

/// A type with a binary wire encoding.
pub trait Wire: Sized {
    /// Appends this value's encoding to `buf`.
    fn encode_into(&self, buf: &mut BytesMut);

    /// Decodes one value from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] on truncated or malformed input.
    fn decode_from(buf: &mut Bytes) -> Result<Self>;
}

/// Serialises a message to bytes.
pub fn encode<T: Wire>(msg: &T) -> Vec<u8> {
    let mut buf = BytesMut::new();
    msg.encode_into(&mut buf);
    buf.to_vec()
}

/// Deserialises a message from bytes, requiring full consumption.
///
/// # Errors
///
/// Returns [`FlError::BadConfig`] on malformed input or trailing bytes.
pub fn decode<T: Wire>(bytes: &[u8]) -> Result<T> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let v = T::decode_from(&mut buf)?;
    if buf.has_remaining() {
        return Err(FlError::BadConfig {
            reason: format!("{} trailing bytes after message", buf.remaining()),
        });
    }
    Ok(v)
}

pub(crate) fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(FlError::BadConfig {
            reason: format!("truncated message: need {n} bytes for {what}"),
        });
    }
    Ok(())
}

pub(crate) fn decode_len(buf: &mut Bytes, what: &str) -> Result<usize> {
    need(buf, 8, what)?;
    // Bound the raw u64 *before* casting: on 32-bit targets a
    // `as usize` cast truncates, which would let a hostile 2^32+k
    // prefix slip past the guard as k.
    let n = buf.get_u64_le();
    if n > limits::MAX_FIELD_BYTES as u64 {
        return Err(FlError::BadConfig {
            reason: format!("{what} length {n} exceeds protocol maximum"),
        });
    }
    Ok(n as usize)
}

/// The kind tag of an [`Envelope`], one per message the protocol speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum MessageKind {
    /// [`Hello`] — version offer (server → client).
    Hello = 0,
    /// [`HelloAck`] — version choice + identity (client → server).
    HelloAck = 1,
    /// [`AttestationRequest`] (Figure 2-➊).
    AttestationRequest = 2,
    /// [`AttestationResponse`].
    AttestationResponse = 3,
    /// [`ModelDownload`] (Figure 2-➋).
    ModelDownload = 4,
    /// [`UpdateUpload`] (Figure 2-➍).
    UpdateUpload = 5,
    /// Session teardown; carries no payload and expects no reply.
    Goodbye = 6,
    /// [`ErrorReply`] — the peer could not produce the expected reply.
    Error = 7,
    /// A [`gradsec_tee::tiop::Frame`] sealing a whole inner envelope
    /// (the trusted I/O path; see `transport::sealed`).
    Sealed = 8,
    /// [`ShardHello`] — shard-server → coordinator session opener
    /// (protocol v3, the shard-control plane).
    ShardHello = 9,
    /// [`ShardHelloAck`] — coordinator → shard-server: negotiated version
    /// plus the shard index this connection will serve.
    ShardHelloAck = 10,
    /// [`ShardConfig`] — coordinator → shard-server: everything the shard
    /// needs to host its client range deterministically.
    ShardConfig = 11,
    /// [`ShardConfigAck`] — shard-server → coordinator: ready report.
    ShardConfigAck = 12,
    /// [`ShardScreen`] — coordinator → shard-server: this round's
    /// attestation fan-out for the shard's screening candidates.
    ShardScreen = 13,
    /// [`ShardScreenReply`] — shard-server → coordinator: raw attestation
    /// evidence, index-aligned with the request (verification stays on
    /// the coordinator).
    ShardScreenReply = 14,
    /// [`ShardRound`] — coordinator → shard-server: one round's model
    /// download plus the shard's local pick list.
    ShardRound = 15,
    /// [`ShardRoundReply`] — shard-server → coordinator: slot-tagged
    /// partial aggregate, non-completed outcomes and the shard ledger.
    ShardRoundReply = 16,
    /// [`EncodedModelDownload`] — a [`ModelDownload`] whose weights
    /// travel as a codec payload (protocol v4).
    EncodedModelDownload = 17,
    /// [`EncodedUpdateUpload`] — an [`UpdateUpload`] whose weights
    /// travel as a codec payload (protocol v4).
    EncodedUpdateUpload = 18,
}

impl MessageKind {
    pub(crate) fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => MessageKind::Hello,
            1 => MessageKind::HelloAck,
            2 => MessageKind::AttestationRequest,
            3 => MessageKind::AttestationResponse,
            4 => MessageKind::ModelDownload,
            5 => MessageKind::UpdateUpload,
            6 => MessageKind::Goodbye,
            7 => MessageKind::Error,
            8 => MessageKind::Sealed,
            9 => MessageKind::ShardHello,
            10 => MessageKind::ShardHelloAck,
            11 => MessageKind::ShardConfig,
            12 => MessageKind::ShardConfigAck,
            13 => MessageKind::ShardScreen,
            14 => MessageKind::ShardScreenReply,
            15 => MessageKind::ShardRound,
            16 => MessageKind::ShardRoundReply,
            17 => MessageKind::EncodedModelDownload,
            18 => MessageKind::EncodedUpdateUpload,
            other => {
                return Err(FlError::Protocol {
                    reason: format!("unknown message kind {other}"),
                })
            }
        })
    }
}

/// Magic bytes opening every envelope header ("GS", little-endian).
pub const ENVELOPE_MAGIC: u16 = 0x5347;

/// Fixed envelope header length: magic (2) + version (2) + kind (1) +
/// payload length (8).
pub const ENVELOPE_HEADER_LEN: usize = 13;

/// Guard against adversarial envelope lengths: no round of this protocol
/// legitimately ships more than 1 GiB in one message.
pub const MAX_ENVELOPE_PAYLOAD: usize = 1024 * 1024 * 1024;

/// Extra bytes a sealed carrier may legitimately add on top of a
/// maximum-size inner envelope: the inner envelope's own header plus the
/// frame's sequence number, two length prefixes and HMAC tag (56 bytes),
/// rounded up. Envelope decoding admits this slack so the sealed
/// transport never caps a message the plain transports carry fine.
pub const SEAL_OVERHEAD: usize = ENVELOPE_HEADER_LEN + 115;

/// A validated envelope header: everything a socket reader needs to pull
/// the rest of the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeHead {
    /// Protocol version the sender stamped on the envelope.
    pub version: u16,
    /// What the payload will decode as.
    pub kind: MessageKind,
    /// How many payload bytes follow the header.
    pub payload_len: usize,
}

/// Parses and validates one fixed-size envelope header from raw bytes —
/// the single header decoder shared by the blocking socket reader, the
/// mux frame reassembler and [`Envelope::decode_from`], so every path
/// rejects bad magic and hostile lengths identically (and none of them
/// allocates to do it).
///
/// # Errors
///
/// Returns [`FlError::Protocol`] on bad magic, an unknown kind tag, or a
/// payload length beyond [`MAX_ENVELOPE_PAYLOAD`] +
/// [`SEAL_OVERHEAD`]. The length bound is checked on the raw `u64` — a
/// `usize` cast first would truncate on 32-bit targets and defeat the
/// guard.
pub fn parse_envelope_head(header: &[u8; ENVELOPE_HEADER_LEN]) -> Result<EnvelopeHead> {
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != ENVELOPE_MAGIC {
        return Err(FlError::Protocol {
            reason: format!("bad envelope magic {magic:#06x}"),
        });
    }
    let version = u16::from_le_bytes([header[2], header[3]]);
    let kind = MessageKind::from_u8(header[4])?;
    let len = u64::from_le_bytes([
        header[5], header[6], header[7], header[8], header[9], header[10], header[11], header[12],
    ]);
    if len > (MAX_ENVELOPE_PAYLOAD + SEAL_OVERHEAD) as u64 {
        return Err(FlError::Protocol {
            reason: format!("envelope payload length {len} exceeds protocol maximum"),
        });
    }
    Ok(EnvelopeHead {
        version,
        kind,
        payload_len: len as usize,
    })
}

/// The typed, versioned wrapper every message travels in.
///
/// Its binary layout — magic, version, kind, payload length, payload —
/// doubles as the length-prefixed TCP frame: a socket reader pulls the
/// fixed [`ENVELOPE_HEADER_LEN`] bytes, learns the payload length, then
/// pulls exactly that many more.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Protocol version the sender speaks (negotiated after Hello).
    pub version: u16,
    /// What the payload decodes as.
    pub kind: MessageKind,
    /// The encoded message bytes.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Wraps a message in an envelope at the current protocol version.
    pub fn pack<T: Wire>(kind: MessageKind, msg: &T) -> Envelope {
        Envelope {
            version: PROTOCOL_VERSION,
            kind,
            payload: encode(msg),
        }
    }

    /// A payload-less envelope (Goodbye).
    pub fn control(kind: MessageKind) -> Envelope {
        Envelope {
            version: PROTOCOL_VERSION,
            kind,
            payload: Vec::new(),
        }
    }

    /// An error-reply envelope.
    pub fn error(reason: impl Into<String>) -> Envelope {
        Envelope::pack(
            MessageKind::Error,
            &ErrorReply {
                reason: reason.into(),
            },
        )
    }

    /// Decodes the payload as `T`, after checking the kind tag.
    ///
    /// # Errors
    ///
    /// [`FlError::ClientFailure`]-free by design: a kind mismatch or an
    /// [`ErrorReply`] in place of the expected kind becomes
    /// [`FlError::Protocol`]; payload corruption surfaces the codec error.
    pub fn open<T: Wire>(&self, expect: MessageKind) -> Result<T> {
        if self.kind == MessageKind::Error && expect != MessageKind::Error {
            return Err(FlError::Protocol {
                reason: format!("peer reported: {}", self.error_reason()),
            });
        }
        if self.kind != expect {
            return Err(FlError::Protocol {
                reason: format!("expected {expect:?}, got {:?}", self.kind),
            });
        }
        decode(&self.payload)
    }

    /// Best-effort extraction of an [`ErrorReply`] reason (for envelopes
    /// whose kind is [`MessageKind::Error`]).
    pub fn error_reason(&self) -> String {
        decode::<ErrorReply>(&self.payload)
            .map(|e| e.reason)
            .unwrap_or_else(|_| "malformed error reply".to_owned())
    }

    /// Whether the sender's version is one this build can speak.
    pub fn version_supported(&self) -> bool {
        (MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION).contains(&self.version)
    }
}

impl Wire for Envelope {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16_le(ENVELOPE_MAGIC);
        buf.put_u16_le(self.version);
        buf.put_u8(self.kind as u8);
        buf.put_u64_le(self.payload.len() as u64);
        buf.put_slice(&self.payload);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, ENVELOPE_HEADER_LEN, "envelope header")?;
        let mut header = [0u8; ENVELOPE_HEADER_LEN];
        buf.copy_to_slice(&mut header);
        let head = parse_envelope_head(&header)?;
        need(buf, head.payload_len, "envelope payload")?;
        let mut payload = vec![0u8; head.payload_len];
        buf.copy_to_slice(&mut payload);
        Ok(Envelope {
            version: head.version,
            kind: head.kind,
            payload,
        })
    }
}

impl Wire for Tensor {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.dims().len() as u64);
        for &d in self.dims() {
            buf.put_u64_le(d as u64);
        }
        buf.put_u64_le(self.numel() as u64);
        for &x in self.data() {
            buf.put_f32_le(x);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let ndim = decode_len(buf, "tensor rank")?;
        if ndim > limits::MAX_TENSOR_RANK {
            return Err(FlError::BadConfig {
                reason: format!("tensor rank {ndim} exceeds protocol maximum"),
            });
        }
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(decode_len(buf, "tensor dim")?);
        }
        let n = decode_len(buf, "tensor data")?;
        if dims.iter().product::<usize>() != n {
            return Err(FlError::BadConfig {
                reason: "tensor dims disagree with element count".to_owned(),
            });
        }
        need(buf, 4 * n, "tensor elements")?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(buf.get_f32_le());
        }
        Tensor::from_vec(data, &dims).map_err(|e| FlError::BadConfig {
            reason: format!("tensor decode: {e}"),
        })
    }
}

impl Wire for ModelWeights {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.num_layers() as u64);
        for lw in self.iter() {
            lw.w.encode_into(buf);
            lw.b.encode_into(buf);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let n = decode_len(buf, "layer count")?;
        if n > limits::MAX_LAYERS {
            return Err(FlError::BadConfig {
                reason: format!("layer count {n} exceeds protocol maximum"),
            });
        }
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            let w = Tensor::decode_from(buf)?;
            let b = Tensor::decode_from(buf)?;
            layers.push(LayerWeights { w, b });
        }
        Ok(ModelWeights::new(layers))
    }
}

impl Wire for TrainingPlan {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.rounds);
        buf.put_u64_le(self.clients_per_round as u64);
        buf.put_u64_le(self.batches_per_cycle as u64);
        buf.put_u64_le(self.batch_size as u64);
        buf.put_f32_le(self.learning_rate);
        buf.put_u64_le(self.seed);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8 * 5 + 4, "training plan")?;
        let rounds = buf.get_u64_le();
        let clients_per_round = buf.get_u64_le() as usize;
        let batches_per_cycle = buf.get_u64_le() as usize;
        let batch_size = buf.get_u64_le() as usize;
        let learning_rate = buf.get_f32_le();
        let seed = buf.get_u64_le();
        Ok(TrainingPlan {
            rounds,
            clients_per_round,
            batches_per_cycle,
            batch_size,
            learning_rate,
            seed,
        })
    }
}

impl Wire for Challenge {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.nonce);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 16, "challenge nonce")?;
        let mut nonce = [0u8; 16];
        buf.copy_to_slice(&mut nonce);
        Ok(Challenge::new(nonce))
    }
}

impl Wire for Quote {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_slice(self.ta.as_bytes());
        buf.put_slice(&self.measurement.0);
        buf.put_slice(&self.nonce);
        buf.put_slice(&self.signature);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 16 + 32 + 16 + 32, "attestation quote")?;
        let mut ta = [0u8; 16];
        buf.copy_to_slice(&mut ta);
        let mut m = [0u8; 32];
        buf.copy_to_slice(&mut m);
        let mut nonce = [0u8; 16];
        buf.copy_to_slice(&mut nonce);
        let mut sig = [0u8; 32];
        buf.copy_to_slice(&mut sig);
        Ok(Quote {
            ta: Uuid(ta),
            measurement: Measurement(m),
            nonce,
            signature: sig,
        })
    }
}

impl Wire for AttestationRequest {
    fn encode_into(&self, buf: &mut BytesMut) {
        self.challenge.encode_into(buf);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        Ok(AttestationRequest {
            challenge: Challenge::decode_from(buf)?,
        })
    }
}

impl Wire for AttestationResponse {
    fn encode_into(&self, buf: &mut BytesMut) {
        match &self.quote {
            Some(q) => {
                buf.put_u8(1);
                q.encode_into(buf);
            }
            None => buf.put_u8(0),
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 1, "quote presence flag")?;
        let has = buf.get_u8();
        match has {
            0 => Ok(AttestationResponse { quote: None }),
            1 => Ok(AttestationResponse {
                quote: Some(Quote::decode_from(buf)?),
            }),
            other => Err(FlError::BadConfig {
                reason: format!("bad quote presence flag {other}"),
            }),
        }
    }
}

impl Wire for ModelDownload {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.round);
        self.weights.encode_into(buf);
        self.plan.encode_into(buf);
        buf.put_u64_le(self.protected_layers.len() as u64);
        for &l in &self.protected_layers {
            buf.put_u64_le(l as u64);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8, "round")?;
        let round = buf.get_u64_le();
        let weights = ModelWeights::decode_from(buf)?;
        let plan = TrainingPlan::decode_from(buf)?;
        let n = decode_len(buf, "protected layer count")?;
        if n > limits::MAX_PROTECTED_LAYERS {
            return Err(FlError::BadConfig {
                reason: format!("protected layer count {n} exceeds protocol maximum"),
            });
        }
        let mut protected_layers = Vec::with_capacity(n);
        for _ in 0..n {
            need(buf, 8, "protected layer index")?;
            protected_layers.push(buf.get_u64_le() as usize);
        }
        Ok(ModelDownload {
            round,
            weights,
            plan,
            protected_layers,
        })
    }
}

impl Wire for UpdateUpload {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.client_id);
        buf.put_u64_le(self.round);
        self.weights.encode_into(buf);
        buf.put_u64_le(self.num_samples as u64);
        buf.put_f32_le(self.train_loss);
        self.cost.encode_into(buf);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 16, "upload header")?;
        let client_id = buf.get_u64_le();
        let round = buf.get_u64_le();
        let weights = ModelWeights::decode_from(buf)?;
        need(buf, 12, "upload footer")?;
        let num_samples = buf.get_u64_le() as usize;
        let train_loss = buf.get_f32_le();
        let cost = ClientCycleCost::decode_from(buf)?;
        Ok(UpdateUpload {
            client_id,
            round,
            weights,
            num_samples,
            train_loss,
            cost,
        })
    }
}

impl Wire for EncodedModelDownload {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.round);
        self.weights.encode_into(buf);
        self.plan.encode_into(buf);
        buf.put_u64_le(self.protected_layers.len() as u64);
        for &l in &self.protected_layers {
            buf.put_u64_le(l as u64);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8, "round")?;
        let round = buf.get_u64_le();
        let weights = EncodedWeights::decode_from(buf)?;
        let plan = TrainingPlan::decode_from(buf)?;
        let n = decode_len(buf, "protected layer count")?;
        if n > limits::MAX_PROTECTED_LAYERS {
            return Err(FlError::BadConfig {
                reason: format!("protected layer count {n} exceeds protocol maximum"),
            });
        }
        let mut protected_layers = Vec::with_capacity(n);
        for _ in 0..n {
            need(buf, 8, "protected layer index")?;
            protected_layers.push(buf.get_u64_le() as usize);
        }
        Ok(EncodedModelDownload {
            round,
            weights,
            plan,
            protected_layers,
        })
    }
}

impl Wire for EncodedUpdateUpload {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.client_id);
        buf.put_u64_le(self.round);
        self.weights.encode_into(buf);
        buf.put_u64_le(self.num_samples as u64);
        buf.put_f32_le(self.train_loss);
        self.cost.encode_into(buf);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 16, "upload header")?;
        let client_id = buf.get_u64_le();
        let round = buf.get_u64_le();
        let weights = EncodedWeights::decode_from(buf)?;
        need(buf, 12, "upload footer")?;
        let num_samples = buf.get_u64_le() as usize;
        let train_loss = buf.get_f32_le();
        let cost = ClientCycleCost::decode_from(buf)?;
        Ok(EncodedUpdateUpload {
            client_id,
            round,
            weights,
            num_samples,
            train_loss,
            cost,
        })
    }
}

impl Wire for Hello {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.min_version);
        buf.put_u16_le(self.max_version);
        buf.put_u8(self.codec.as_u8());
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 4, "hello")?;
        let min_version = buf.get_u16_le();
        let max_version = buf.get_u16_le();
        // v2/v3 hellos end here; the codec byte is a v4 tail.
        let codec = if buf.has_remaining() {
            CodecKind::from_u8(buf.get_u8())?
        } else {
            CodecKind::Identity
        };
        Ok(Hello {
            min_version,
            max_version,
            codec,
        })
    }
}

impl Wire for HelloAck {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.version);
        buf.put_u64_le(self.client_id);
        buf.put_u8(self.codec.as_u8());
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 10, "hello ack")?;
        let version = buf.get_u16_le();
        let client_id = buf.get_u64_le();
        // v2/v3 acks end here; the codec echo is a v4 tail.
        let codec = if buf.has_remaining() {
            CodecKind::from_u8(buf.get_u8())?
        } else {
            CodecKind::Identity
        };
        Ok(HelloAck {
            version,
            client_id,
            codec,
        })
    }
}

impl Wire for ErrorReply {
    fn encode_into(&self, buf: &mut BytesMut) {
        let bytes = self.reason.as_bytes();
        buf.put_u64_le(bytes.len() as u64);
        buf.put_slice(bytes);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let n = decode_len(buf, "error reason")?;
        need(buf, n, "error reason bytes")?;
        let mut bytes = vec![0u8; n];
        buf.copy_to_slice(&mut bytes);
        let reason = String::from_utf8(bytes).map_err(|_| FlError::Protocol {
            reason: "error reason is not valid UTF-8".to_owned(),
        })?;
        Ok(ErrorReply { reason })
    }
}

impl Wire for TimeBreakdown {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_f64_le(self.user_s);
        buf.put_f64_le(self.kernel_s);
        buf.put_f64_le(self.alloc_s);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 24, "time breakdown")?;
        Ok(TimeBreakdown {
            user_s: buf.get_f64_le(),
            kernel_s: buf.get_f64_le(),
            alloc_s: buf.get_f64_le(),
        })
    }
}

impl Wire for ClientCycleCost {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.client_id);
        self.time.encode_into(buf);
        buf.put_u64_le(self.crossings);
        buf.put_u64_le(self.tee_peak_bytes as u64);
        buf.put_u64_le(self.wire.download_encoded_bytes);
        buf.put_u64_le(self.wire.download_raw_bytes);
        buf.put_u64_le(self.wire.upload_encoded_bytes);
        buf.put_u64_le(self.wire.upload_raw_bytes);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8, "cost client id")?;
        let client_id = buf.get_u64_le();
        let time = TimeBreakdown::decode_from(buf)?;
        need(buf, 48, "cost footer")?;
        let crossings = buf.get_u64_le();
        let tee_peak_bytes = buf.get_u64_le() as usize;
        let wire = WireBill {
            download_encoded_bytes: buf.get_u64_le(),
            download_raw_bytes: buf.get_u64_le(),
            upload_encoded_bytes: buf.get_u64_le(),
            upload_raw_bytes: buf.get_u64_le(),
        };
        Ok(ClientCycleCost {
            client_id,
            time,
            crossings,
            tee_peak_bytes,
            wire,
        })
    }
}

impl Wire for Frame {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.seq);
        buf.put_u64_le(self.ciphertext.len() as u64);
        buf.put_slice(&self.ciphertext);
        buf.put_u64_le(self.mac.len() as u64);
        buf.put_slice(&self.mac);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8, "frame sequence")?;
        let seq = buf.get_u64_le();
        // A frame's ciphertext seals a whole envelope, so its bound is
        // the envelope maximum (plus seal slack) — not the per-field
        // maximum ordinary message fields use. Otherwise the sealed
        // transport would silently cap messages the plain transports
        // carry fine. Raw-u64 comparison for the same 32-bit-truncation
        // reason as decode_len.
        need(buf, 8, "frame ciphertext")?;
        let n = buf.get_u64_le();
        if n > (MAX_ENVELOPE_PAYLOAD + SEAL_OVERHEAD) as u64 {
            return Err(FlError::Protocol {
                reason: format!("frame ciphertext length {n} exceeds protocol maximum"),
            });
        }
        let n = n as usize;
        need(buf, n, "frame ciphertext bytes")?;
        let mut ciphertext = vec![0u8; n];
        buf.copy_to_slice(&mut ciphertext);
        let m = decode_len(buf, "frame mac")?;
        need(buf, m, "frame mac bytes")?;
        let mut mac = vec![0u8; m];
        buf.copy_to_slice(&mut mac);
        Ok(Frame {
            seq,
            ciphertext,
            mac,
        })
    }
}

// ---------------------------------------------------------------------------
// Shard-control plane (protocol v3)
// ---------------------------------------------------------------------------

fn decode_count(buf: &mut Bytes, what: &str) -> Result<usize> {
    let n = decode_len(buf, what)?;
    if n > limits::MAX_LIST_ITEMS {
        return Err(FlError::BadConfig {
            reason: format!("{what} {n} exceeds protocol maximum"),
        });
    }
    Ok(n)
}

fn encode_str(s: &str, buf: &mut BytesMut) {
    buf.put_u64_le(s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn decode_str(buf: &mut Bytes, what: &str) -> Result<String> {
    let n = decode_len(buf, what)?;
    need(buf, n, what)?;
    let mut bytes = vec![0u8; n];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| FlError::Protocol {
        reason: format!("{what} is not valid UTF-8"),
    })
}

/// Shard-server → coordinator: opens the shard-control channel with the
/// server's supported version range plus its OS process id (diagnostics
/// only — never an input to any fault or selection decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHello {
    /// Oldest protocol version the shard server accepts.
    pub min_version: u16,
    /// Newest protocol version the shard server speaks.
    pub max_version: u16,
    /// The shard server's process id.
    pub pid: u64,
}

impl ShardHello {
    /// The ShardHello this build sends.
    pub fn current() -> Self {
        ShardHello {
            min_version: MIN_SUPPORTED_VERSION,
            max_version: PROTOCOL_VERSION,
            pid: u64::from(std::process::id()),
        }
    }
}

/// Coordinator → shard-server: the negotiated version and the shard
/// index this connection will serve (assigned by connection-arrival
/// order — shard servers are symmetric until configured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHelloAck {
    /// The version the coordinator chose from the shard's range.
    pub version: u16,
    /// The shard index this channel serves.
    pub shard_index: u64,
}

/// Which synthetic dataset a shard server materialises for its clients.
///
/// The spec is the *recipe*, not the bytes: both sides construct the
/// identical deterministic dataset from `(len, classes, dim, seed)`, so a
/// shard config stays kilobytes even for million-sample fleets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// [`gradsec_data::SyntheticMicro`].
    Micro {
        /// Total samples across the whole (global) fleet dataset.
        len: u64,
        /// Class count.
        classes: u64,
        /// Feature dimension.
        dim: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`gradsec_data::SyntheticCifar100`] (via `with_classes`).
    Cifar {
        /// Total samples across the whole (global) fleet dataset.
        len: u64,
        /// Class count.
        classes: u64,
        /// Generator seed.
        seed: u64,
    },
}

/// Which model architecture a shard server builds before installing the
/// coordinator's initial weights. The seed only matters for layer
/// construction scratch (the shipped weights overwrite initialisation),
/// but carrying it keeps construction bit-reproducible anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// [`gradsec_nn::zoo::tiny_mlp`].
    TinyMlp {
        /// Input features.
        inputs: u64,
        /// Hidden width.
        hidden: u64,
        /// Output classes.
        outputs: u64,
        /// Initialisation seed.
        seed: u64,
    },
    /// [`gradsec_nn::zoo::lenet5_with`].
    LeNet5 {
        /// Output classes.
        classes: u64,
        /// Initialisation seed.
        seed: u64,
    },
}

/// Coordinator → shard-server: everything the shard needs to host its
/// contiguous client range deterministically — the global fleet shape
/// (so data sharding reproduces the flat reference), the model recipe
/// plus initial weights, the training plan, the kernel backend, the
/// engine worker count, the attestation whitelist and the fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// The shard index this config provisions (echoes the hello ack).
    pub shard_index: u64,
    /// First global client id this shard hosts (inclusive).
    pub range_start: u64,
    /// One past the last global client id this shard hosts.
    pub range_end: u64,
    /// Total clients across the whole fleet — the shard reproduces the
    /// *global* `split::shard` data partition and takes its sub-range,
    /// which is what keeps every client's local dataset bit-identical to
    /// the flat reference.
    pub total_clients: u64,
    /// The dataset recipe.
    pub dataset: DatasetSpec,
    /// The model recipe.
    pub model: ModelSpec,
    /// The initial global weights (installed over the recipe's
    /// initialisation, so bit-identity never depends on init code).
    pub init_weights: ModelWeights,
    /// The training plan.
    pub plan: TrainingPlan,
    /// Kernel backend name ([`gradsec_tensor::BackendKind::parse`]).
    pub backend: String,
    /// Update codec name ([`CodecKind::parse`]) the shard's sessions
    /// negotiate at handshake.
    pub codec: String,
    /// Engine worker threads the shard runs (`0` = one per core).
    pub workers: u64,
    /// The whitelisted TA measurement.
    pub measurement: Measurement,
    /// The fault plan, when the run injects faults.
    pub faults: Option<FaultPlan>,
    /// Dataset partition kind name
    /// ([`crate::config::PartitionKind::parse`]) — how the global data
    /// partition the shard re-derives was drawn.
    pub partition: String,
    /// The adversarial scenario, when the run hosts hostile personas.
    pub adversaries: Option<AdversaryPlan>,
}

/// Shard-server → coordinator: configuration applied, fleet wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfigAck {
    /// How many clients the shard wired (must equal the config's range).
    pub clients: u64,
}

/// One screening probe: a shard-local client index and the challenge the
/// coordinator drew for it (nonces are drawn on the coordinator, in
/// global candidate order — the shard never touches the selection RNG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScreenProbe {
    /// Shard-local client index.
    pub local: u64,
    /// The attestation challenge to send.
    pub challenge: Challenge,
}

/// Coordinator → shard-server: this round's screening fan-out for the
/// shard's slice of the candidate set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardScreen {
    /// The probes, in global candidate order.
    pub probes: Vec<ScreenProbe>,
}

/// Shard-server → coordinator: raw attestation evidence, index-aligned
/// with the request's probes. `None` means the exchange itself failed
/// (transport error or injected fault) — the coordinator screens it as
/// unreachable. Quote *verification* stays on the coordinator, against
/// its own provisioning registry, so a shard process can not vouch for
/// its clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardScreenReply {
    /// Per-probe evidence.
    pub evidence: Vec<Option<AttestationResponse>>,
}

/// Coordinator → shard-server: execute one round's cycles for the
/// shard's picks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRound {
    /// The round's model download (identical on every shard).
    pub download: ModelDownload,
    /// Shard-local indices of this shard's picked clients, in global
    /// selection order.
    pub picks: Vec<u64>,
    /// Global selection slot of the first pick: with a contiguous layout
    /// a shard's picks are contiguous in the sorted global pick list, so
    /// pick `j` occupies global slot `slot_base + j`.
    pub slot_base: u64,
}

/// How a non-completed cycle ended on a shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardOutcomeKind {
    /// The client blew the round deadline on the simulated clock.
    Straggler {
        /// Simulated elapsed seconds.
        elapsed_s: f64,
    },
    /// The exchange failed (transport fault, training error, panic).
    Failed {
        /// Rendered failure reason.
        reason: String,
    },
}

/// One non-completed outcome, tagged with its global selection slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardOutcome {
    /// Global selection slot.
    pub slot: u64,
    /// Global client id.
    pub client: u64,
    /// What happened.
    pub kind: ShardOutcomeKind,
}

/// Shard-server → coordinator: one round's results — the completed
/// updates as a [`PartialAggregate`] tagged with *global* slots, the
/// stragglers/failures, and the shard's cost ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRoundReply {
    /// Completed updates at their global selection slots.
    pub partial: PartialAggregate,
    /// Stragglers and failures, also at global slots.
    pub others: Vec<ShardOutcome>,
    /// The shard's round ledger (completed and billed-failed cycles).
    pub ledger: RoundLedger,
}

impl Wire for ShardHello {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.min_version);
        buf.put_u16_le(self.max_version);
        buf.put_u64_le(self.pid);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 12, "shard hello")?;
        Ok(ShardHello {
            min_version: buf.get_u16_le(),
            max_version: buf.get_u16_le(),
            pid: buf.get_u64_le(),
        })
    }
}

impl Wire for ShardHelloAck {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16_le(self.version);
        buf.put_u64_le(self.shard_index);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 10, "shard hello ack")?;
        Ok(ShardHelloAck {
            version: buf.get_u16_le(),
            shard_index: buf.get_u64_le(),
        })
    }
}

impl Wire for DatasetSpec {
    fn encode_into(&self, buf: &mut BytesMut) {
        match *self {
            DatasetSpec::Micro {
                len,
                classes,
                dim,
                seed,
            } => {
                buf.put_u8(0);
                buf.put_u64_le(len);
                buf.put_u64_le(classes);
                buf.put_u64_le(dim);
                buf.put_u64_le(seed);
            }
            DatasetSpec::Cifar { len, classes, seed } => {
                buf.put_u8(1);
                buf.put_u64_le(len);
                buf.put_u64_le(classes);
                buf.put_u64_le(seed);
            }
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 1, "dataset spec tag")?;
        match buf.get_u8() {
            0 => {
                need(buf, 32, "micro dataset spec")?;
                Ok(DatasetSpec::Micro {
                    len: buf.get_u64_le(),
                    classes: buf.get_u64_le(),
                    dim: buf.get_u64_le(),
                    seed: buf.get_u64_le(),
                })
            }
            1 => {
                need(buf, 24, "cifar dataset spec")?;
                Ok(DatasetSpec::Cifar {
                    len: buf.get_u64_le(),
                    classes: buf.get_u64_le(),
                    seed: buf.get_u64_le(),
                })
            }
            other => Err(FlError::BadConfig {
                reason: format!("unknown dataset spec tag {other}"),
            }),
        }
    }
}

impl Wire for ModelSpec {
    fn encode_into(&self, buf: &mut BytesMut) {
        match *self {
            ModelSpec::TinyMlp {
                inputs,
                hidden,
                outputs,
                seed,
            } => {
                buf.put_u8(0);
                buf.put_u64_le(inputs);
                buf.put_u64_le(hidden);
                buf.put_u64_le(outputs);
                buf.put_u64_le(seed);
            }
            ModelSpec::LeNet5 { classes, seed } => {
                buf.put_u8(1);
                buf.put_u64_le(classes);
                buf.put_u64_le(seed);
            }
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 1, "model spec tag")?;
        match buf.get_u8() {
            0 => {
                need(buf, 32, "tiny-mlp spec")?;
                Ok(ModelSpec::TinyMlp {
                    inputs: buf.get_u64_le(),
                    hidden: buf.get_u64_le(),
                    outputs: buf.get_u64_le(),
                    seed: buf.get_u64_le(),
                })
            }
            1 => {
                need(buf, 16, "lenet-5 spec")?;
                Ok(ModelSpec::LeNet5 {
                    classes: buf.get_u64_le(),
                    seed: buf.get_u64_le(),
                })
            }
            other => Err(FlError::BadConfig {
                reason: format!("unknown model spec tag {other}"),
            }),
        }
    }
}

impl Wire for ShardConfig {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.shard_index);
        buf.put_u64_le(self.range_start);
        buf.put_u64_le(self.range_end);
        buf.put_u64_le(self.total_clients);
        self.dataset.encode_into(buf);
        self.model.encode_into(buf);
        self.init_weights.encode_into(buf);
        self.plan.encode_into(buf);
        encode_str(&self.backend, buf);
        encode_str(&self.codec, buf);
        buf.put_u64_le(self.workers);
        buf.put_slice(&self.measurement.0);
        match &self.faults {
            Some(p) => {
                buf.put_u8(1);
                p.encode_into(buf);
            }
            None => buf.put_u8(0),
        }
        encode_str(&self.partition, buf);
        match &self.adversaries {
            Some(p) => {
                buf.put_u8(1);
                p.encode_into(buf);
            }
            None => buf.put_u8(0),
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 32, "shard config header")?;
        let shard_index = buf.get_u64_le();
        let range_start = buf.get_u64_le();
        let range_end = buf.get_u64_le();
        let total_clients = buf.get_u64_le();
        if range_start > range_end || range_end > total_clients {
            return Err(FlError::BadConfig {
                reason: format!(
                    "shard range [{range_start}, {range_end}) out of order or beyond \
                     {total_clients} clients"
                ),
            });
        }
        let dataset = DatasetSpec::decode_from(buf)?;
        let model = ModelSpec::decode_from(buf)?;
        let init_weights = ModelWeights::decode_from(buf)?;
        let plan = TrainingPlan::decode_from(buf)?;
        let backend = decode_str(buf, "backend name")?;
        let codec = decode_str(buf, "codec name")?;
        need(buf, 8 + 32 + 1, "shard config footer")?;
        let workers = buf.get_u64_le();
        let mut m = [0u8; 32];
        buf.copy_to_slice(&mut m);
        let faults = match buf.get_u8() {
            0 => None,
            1 => Some(FaultPlan::decode_from(buf)?),
            other => {
                return Err(FlError::BadConfig {
                    reason: format!("bad fault plan presence flag {other}"),
                })
            }
        };
        let partition = decode_str(buf, "partition kind name")?;
        if crate::config::PartitionKind::parse(&partition).is_none() {
            return Err(FlError::BadConfig {
                reason: format!("unknown partition kind {partition:?}"),
            });
        }
        need(buf, 1, "adversary plan presence flag")?;
        let adversaries = match buf.get_u8() {
            0 => None,
            1 => Some(AdversaryPlan::decode_from(buf)?),
            other => {
                return Err(FlError::BadConfig {
                    reason: format!("bad adversary plan presence flag {other}"),
                })
            }
        };
        Ok(ShardConfig {
            shard_index,
            range_start,
            range_end,
            total_clients,
            dataset,
            model,
            init_weights,
            plan,
            backend,
            codec,
            workers,
            measurement: Measurement(m),
            faults,
            partition,
            adversaries,
        })
    }
}

impl Wire for ShardConfigAck {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.clients);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8, "shard config ack")?;
        Ok(ShardConfigAck {
            clients: buf.get_u64_le(),
        })
    }
}

impl Wire for ShardScreen {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.probes.len() as u64);
        for p in &self.probes {
            buf.put_u64_le(p.local);
            p.challenge.encode_into(buf);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let n = decode_count(buf, "screen probe count")?;
        let mut probes = Vec::with_capacity(n);
        for _ in 0..n {
            need(buf, 8, "probe local index")?;
            let local = buf.get_u64_le();
            let challenge = Challenge::decode_from(buf)?;
            probes.push(ScreenProbe { local, challenge });
        }
        Ok(ShardScreen { probes })
    }
}

impl Wire for ShardScreenReply {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.evidence.len() as u64);
        for e in &self.evidence {
            match e {
                Some(resp) => {
                    buf.put_u8(1);
                    resp.encode_into(buf);
                }
                None => buf.put_u8(0),
            }
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let n = decode_count(buf, "screen evidence count")?;
        let mut evidence = Vec::with_capacity(n);
        for _ in 0..n {
            need(buf, 1, "evidence presence flag")?;
            evidence.push(match buf.get_u8() {
                0 => None,
                1 => Some(AttestationResponse::decode_from(buf)?),
                other => {
                    return Err(FlError::BadConfig {
                        reason: format!("bad evidence presence flag {other}"),
                    })
                }
            });
        }
        Ok(ShardScreenReply { evidence })
    }
}

impl Wire for ShardRound {
    fn encode_into(&self, buf: &mut BytesMut) {
        self.download.encode_into(buf);
        buf.put_u64_le(self.slot_base);
        buf.put_u64_le(self.picks.len() as u64);
        for &p in &self.picks {
            buf.put_u64_le(p);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let download = ModelDownload::decode_from(buf)?;
        need(buf, 8, "slot base")?;
        let slot_base = buf.get_u64_le();
        let n = decode_count(buf, "pick count")?;
        need(buf, 8 * n, "pick list")?;
        let mut picks = Vec::with_capacity(n);
        for _ in 0..n {
            picks.push(buf.get_u64_le());
        }
        Ok(ShardRound {
            download,
            picks,
            slot_base,
        })
    }
}

impl Wire for ShardOutcomeKind {
    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            ShardOutcomeKind::Straggler { elapsed_s } => {
                buf.put_u8(0);
                buf.put_f64_le(*elapsed_s);
            }
            ShardOutcomeKind::Failed { reason } => {
                buf.put_u8(1);
                encode_str(reason, buf);
            }
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 1, "outcome kind tag")?;
        match buf.get_u8() {
            0 => {
                need(buf, 8, "straggler elapsed")?;
                Ok(ShardOutcomeKind::Straggler {
                    elapsed_s: buf.get_f64_le(),
                })
            }
            1 => Ok(ShardOutcomeKind::Failed {
                reason: decode_str(buf, "failure reason")?,
            }),
            other => Err(FlError::BadConfig {
                reason: format!("unknown outcome kind tag {other}"),
            }),
        }
    }
}

impl Wire for ShardOutcome {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.slot);
        buf.put_u64_le(self.client);
        self.kind.encode_into(buf);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 16, "outcome header")?;
        Ok(ShardOutcome {
            slot: buf.get_u64_le(),
            client: buf.get_u64_le(),
            kind: ShardOutcomeKind::decode_from(buf)?,
        })
    }
}

impl Wire for PartialAggregate {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.terms().len() as u64);
        for (slot, upload) in self.terms() {
            buf.put_u64_le(*slot as u64);
            upload.encode_into(buf);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let n = decode_count(buf, "aggregate term count")?;
        let mut partial = PartialAggregate::new();
        for _ in 0..n {
            need(buf, 8, "term slot")?;
            let slot = buf.get_u64_le() as usize;
            let upload = UpdateUpload::decode_from(buf)?;
            partial.push(slot, upload);
        }
        Ok(partial)
    }
}

impl Wire for RoundLedger {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.entries().len() as u64);
        for e in self.entries() {
            e.encode_into(buf);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let n = decode_count(buf, "ledger entry count")?;
        let mut ledger = RoundLedger::new();
        for _ in 0..n {
            ledger.record(ClientCycleCost::decode_from(buf)?);
        }
        Ok(ledger)
    }
}

impl Wire for ShardRoundReply {
    fn encode_into(&self, buf: &mut BytesMut) {
        self.partial.encode_into(buf);
        buf.put_u64_le(self.others.len() as u64);
        for o in &self.others {
            o.encode_into(buf);
        }
        self.ledger.encode_into(buf);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let partial = PartialAggregate::decode_from(buf)?;
        let n = decode_count(buf, "outcome count")?;
        let mut others = Vec::with_capacity(n);
        for _ in 0..n {
            others.push(ShardOutcome::decode_from(buf)?);
        }
        let ledger = RoundLedger::decode_from(buf)?;
        Ok(ShardRoundReply {
            partial,
            others,
            ledger,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cost(client_id: u64) -> ClientCycleCost {
        ClientCycleCost {
            client_id,
            time: TimeBreakdown {
                user_s: 2.191,
                kernel_s: 0.021,
                alloc_s: 4.68,
            },
            crossings: 40,
            tee_peak_bytes: 219_576,
            wire: WireBill {
                download_encoded_bytes: 720,
                download_raw_bytes: 2368,
                upload_encoded_bytes: 630,
                upload_raw_bytes: 2368,
            },
        }
    }

    fn weights() -> ModelWeights {
        ModelWeights::new(vec![LayerWeights {
            w: Tensor::from_vec(vec![1.0, -2.5, 3.25, 0.0], &[2, 2]).unwrap(),
            b: Tensor::from_vec(vec![0.5], &[1]).unwrap(),
        }])
    }

    #[test]
    fn roundtrip_model_download() {
        let msg = ModelDownload {
            round: 3,
            weights: weights(),
            plan: TrainingPlan::default(),
            protected_layers: vec![1, 4],
        };
        let back: ModelDownload = decode(&encode(&msg)).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn roundtrip_update_upload() {
        let msg = UpdateUpload {
            client_id: 9,
            round: 1,
            weights: weights(),
            num_samples: 320,
            train_loss: 2.5,
            cost: sample_cost(9),
        };
        let back: UpdateUpload = decode(&encode(&msg)).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn roundtrip_encoded_download_and_upload() {
        use crate::codec::{encode_weights, CodecKind};
        let enc = encode_weights(CodecKind::Int8, 5, &weights(), None);
        let msg = EncodedModelDownload {
            round: 5,
            weights: enc.clone(),
            plan: TrainingPlan::default(),
            protected_layers: vec![0],
        };
        let back: EncodedModelDownload = decode(&encode(&msg)).unwrap();
        assert_eq!(msg, back);
        let up = EncodedUpdateUpload {
            client_id: 3,
            round: 5,
            weights: enc,
            num_samples: 64,
            train_loss: 1.25,
            cost: sample_cost(3),
        };
        let back: EncodedUpdateUpload = decode(&encode(&up)).unwrap();
        assert_eq!(up, back);
    }

    #[test]
    fn encoded_download_round_peek_matches_plain_layout() {
        use crate::codec::{encode_weights, CodecKind};
        // The fault layer reads the round from the first 8 payload
        // bytes without knowing which download kind it is looking at.
        let plain = encode(&ModelDownload {
            round: 77,
            weights: weights(),
            plan: TrainingPlan::default(),
            protected_layers: vec![],
        });
        let encoded = encode(&EncodedModelDownload {
            round: 77,
            weights: encode_weights(CodecKind::Identity, 0, &weights(), None),
            plan: TrainingPlan::default(),
            protected_layers: vec![],
        });
        assert_eq!(&plain[..8], &encoded[..8]);
    }

    #[test]
    fn hello_messages_accept_the_codecless_v3_tail() {
        use crate::codec::CodecKind;
        // A v3 peer's hello/ack stops before the codec byte; decoding
        // must default to identity rather than reject.
        let hello = Hello::with_codec(CodecKind::Int8);
        let mut bytes = encode(&hello);
        assert_eq!(bytes.len(), 5);
        let back: Hello = decode(&bytes).unwrap();
        assert_eq!(back.codec, CodecKind::Int8);
        bytes.truncate(4);
        let back: Hello = decode(&bytes).unwrap();
        assert_eq!(back.codec, CodecKind::Identity);
        let ack = HelloAck {
            version: PROTOCOL_VERSION,
            client_id: 12,
            codec: CodecKind::DeltaTopK,
        };
        let mut bytes = encode(&ack);
        assert_eq!(bytes.len(), 11);
        bytes.truncate(10);
        let back: HelloAck = decode(&bytes).unwrap();
        assert_eq!(back.codec, CodecKind::Identity);
        assert_eq!(back.client_id, 12);
    }

    #[test]
    fn roundtrip_plan_fields() {
        let plan = TrainingPlan {
            rounds: 12,
            clients_per_round: 5,
            batches_per_cycle: 7,
            batch_size: 16,
            learning_rate: 0.125,
            seed: 99,
        };
        let back: TrainingPlan = decode(&encode(&plan)).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn roundtrip_attestation() {
        use gradsec_tee::attestation::sign_quote;
        let ch = Challenge::new([3u8; 16]);
        let req = AttestationRequest { challenge: ch };
        let back: AttestationRequest = decode(&encode(&req)).unwrap();
        assert_eq!(req, back);
        let q = sign_quote(b"key", Uuid::from_name("ta"), Measurement([9u8; 32]), &ch);
        let resp = AttestationResponse { quote: Some(q) };
        let back: AttestationResponse = decode(&encode(&resp)).unwrap();
        assert_eq!(resp, back);
        let none = AttestationResponse { quote: None };
        let back: AttestationResponse = decode(&encode(&none)).unwrap();
        assert_eq!(none, back);
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(decode::<UpdateUpload>(b"short").is_err());
        let msg = UpdateUpload {
            client_id: 1,
            round: 1,
            weights: weights(),
            num_samples: 10,
            train_loss: 0.5,
            cost: sample_cost(1),
        };
        let mut bytes = encode(&msg);
        bytes.truncate(bytes.len() - 3);
        assert!(decode::<UpdateUpload>(&bytes).is_err());
        // Trailing bytes are rejected too.
        let mut bytes = encode(&msg);
        bytes.push(0);
        assert!(decode::<UpdateUpload>(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_hostile_lengths() {
        // A tensor claiming 2^60 elements must be rejected before any
        // allocation happens.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1); // rank 1
        buf.put_u64_le(1 << 60); // dim
        buf.put_u64_le(1 << 60); // elems
        assert!(decode::<Tensor>(&buf.to_vec()).is_err());
    }

    #[test]
    fn tensor_dims_must_match_count() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u64_le(3); // dim says 3
        buf.put_u64_le(2); // but 2 elements
        buf.put_f32_le(0.0);
        buf.put_f32_le(0.0);
        assert!(decode::<Tensor>(&buf.to_vec()).is_err());
    }
}
