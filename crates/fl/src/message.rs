//! Wire messages between the FL server and clients.
//!
//! The transport in this reproduction is in-process, but every payload has
//! a concrete binary framing (a hand-rolled little-endian codec over the
//! `bytes` crate) so the protocol could move onto a socket unchanged — and
//! so the trusted I/O path (`gradsec-tee::tiop`) has real bytes to seal.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use gradsec_nn::model::{LayerWeights, ModelWeights};
use gradsec_tee::attestation::{Challenge, Measurement, Quote};
use gradsec_tee::ta::Uuid;
use gradsec_tensor::Tensor;

use crate::config::TrainingPlan;
use crate::{FlError, Result};

/// Server → client: attestation challenge during selection (Figure 2-➊).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttestationRequest {
    /// The freshness challenge.
    pub challenge: Challenge,
}

/// Client → server: attestation evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttestationResponse {
    /// The signed quote, absent when the device has no TEE.
    pub quote: Option<Quote>,
}

/// Server → client: the global model and plan for one cycle (Figure 2-➋).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDownload {
    /// Round this download belongs to.
    pub round: u64,
    /// Global model weights.
    pub weights: ModelWeights,
    /// The training plan.
    pub plan: TrainingPlan,
    /// Indices of the layers the client must shelter this cycle (the
    /// GradSec protection configuration; empty = unprotected).
    pub protected_layers: Vec<usize>,
}

/// Client → server: the trained update (Figure 2-➍).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateUpload {
    /// Uploading client.
    pub client_id: u64,
    /// Round the update belongs to.
    pub round: u64,
    /// The client's post-training weights.
    pub weights: ModelWeights,
    /// Samples trained on (FedAvg weighting).
    pub num_samples: usize,
    /// Mean training loss over the cycle.
    pub train_loss: f32,
}

/// A type with a binary wire encoding.
pub trait Wire: Sized {
    /// Appends this value's encoding to `buf`.
    fn encode_into(&self, buf: &mut BytesMut);

    /// Decodes one value from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] on truncated or malformed input.
    fn decode_from(buf: &mut Bytes) -> Result<Self>;
}

/// Serialises a message to bytes.
pub fn encode<T: Wire>(msg: &T) -> Vec<u8> {
    let mut buf = BytesMut::new();
    msg.encode_into(&mut buf);
    buf.to_vec()
}

/// Deserialises a message from bytes, requiring full consumption.
///
/// # Errors
///
/// Returns [`FlError::BadConfig`] on malformed input or trailing bytes.
pub fn decode<T: Wire>(bytes: &[u8]) -> Result<T> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let v = T::decode_from(&mut buf)?;
    if buf.has_remaining() {
        return Err(FlError::BadConfig {
            reason: format!("{} trailing bytes after message", buf.remaining()),
        });
    }
    Ok(v)
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(FlError::BadConfig {
            reason: format!("truncated message: need {n} bytes for {what}"),
        });
    }
    Ok(())
}

/// Guard against adversarial length prefixes: no single field in this
/// protocol legitimately exceeds 256 MiB.
const MAX_FIELD: usize = 256 * 1024 * 1024;

fn decode_len(buf: &mut Bytes, what: &str) -> Result<usize> {
    need(buf, 8, what)?;
    let n = buf.get_u64_le() as usize;
    if n > MAX_FIELD {
        return Err(FlError::BadConfig {
            reason: format!("{what} length {n} exceeds protocol maximum"),
        });
    }
    Ok(n)
}

impl Wire for Tensor {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.dims().len() as u64);
        for &d in self.dims() {
            buf.put_u64_le(d as u64);
        }
        buf.put_u64_le(self.numel() as u64);
        for &x in self.data() {
            buf.put_f32_le(x);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let ndim = decode_len(buf, "tensor rank")?;
        if ndim > 16 {
            return Err(FlError::BadConfig {
                reason: format!("tensor rank {ndim} exceeds protocol maximum"),
            });
        }
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(decode_len(buf, "tensor dim")?);
        }
        let n = decode_len(buf, "tensor data")?;
        if dims.iter().product::<usize>() != n {
            return Err(FlError::BadConfig {
                reason: "tensor dims disagree with element count".to_owned(),
            });
        }
        need(buf, 4 * n, "tensor elements")?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(buf.get_f32_le());
        }
        Tensor::from_vec(data, &dims).map_err(|e| FlError::BadConfig {
            reason: format!("tensor decode: {e}"),
        })
    }
}

impl Wire for ModelWeights {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.num_layers() as u64);
        for lw in self.iter() {
            lw.w.encode_into(buf);
            lw.b.encode_into(buf);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let n = decode_len(buf, "layer count")?;
        if n > 4096 {
            return Err(FlError::BadConfig {
                reason: format!("layer count {n} exceeds protocol maximum"),
            });
        }
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            let w = Tensor::decode_from(buf)?;
            let b = Tensor::decode_from(buf)?;
            layers.push(LayerWeights { w, b });
        }
        Ok(ModelWeights::new(layers))
    }
}

impl Wire for TrainingPlan {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.rounds);
        buf.put_u64_le(self.clients_per_round as u64);
        buf.put_u64_le(self.batches_per_cycle as u64);
        buf.put_u64_le(self.batch_size as u64);
        buf.put_f32_le(self.learning_rate);
        buf.put_u64_le(self.seed);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8 * 5 + 4, "training plan")?;
        let rounds = buf.get_u64_le();
        let clients_per_round = buf.get_u64_le() as usize;
        let batches_per_cycle = buf.get_u64_le() as usize;
        let batch_size = buf.get_u64_le() as usize;
        let learning_rate = buf.get_f32_le();
        let seed = buf.get_u64_le();
        Ok(TrainingPlan {
            rounds,
            clients_per_round,
            batches_per_cycle,
            batch_size,
            learning_rate,
            seed,
        })
    }
}

impl Wire for Challenge {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.nonce);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 16, "challenge nonce")?;
        let mut nonce = [0u8; 16];
        buf.copy_to_slice(&mut nonce);
        Ok(Challenge::new(nonce))
    }
}

impl Wire for Quote {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_slice(self.ta.as_bytes());
        buf.put_slice(&self.measurement.0);
        buf.put_slice(&self.nonce);
        buf.put_slice(&self.signature);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 16 + 32 + 16 + 32, "attestation quote")?;
        let mut ta = [0u8; 16];
        buf.copy_to_slice(&mut ta);
        let mut m = [0u8; 32];
        buf.copy_to_slice(&mut m);
        let mut nonce = [0u8; 16];
        buf.copy_to_slice(&mut nonce);
        let mut sig = [0u8; 32];
        buf.copy_to_slice(&mut sig);
        Ok(Quote {
            ta: Uuid(ta),
            measurement: Measurement(m),
            nonce,
            signature: sig,
        })
    }
}

impl Wire for AttestationRequest {
    fn encode_into(&self, buf: &mut BytesMut) {
        self.challenge.encode_into(buf);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        Ok(AttestationRequest {
            challenge: Challenge::decode_from(buf)?,
        })
    }
}

impl Wire for AttestationResponse {
    fn encode_into(&self, buf: &mut BytesMut) {
        match &self.quote {
            Some(q) => {
                buf.put_u8(1);
                q.encode_into(buf);
            }
            None => buf.put_u8(0),
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 1, "quote presence flag")?;
        let has = buf.get_u8();
        match has {
            0 => Ok(AttestationResponse { quote: None }),
            1 => Ok(AttestationResponse {
                quote: Some(Quote::decode_from(buf)?),
            }),
            other => Err(FlError::BadConfig {
                reason: format!("bad quote presence flag {other}"),
            }),
        }
    }
}

impl Wire for ModelDownload {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.round);
        self.weights.encode_into(buf);
        self.plan.encode_into(buf);
        buf.put_u64_le(self.protected_layers.len() as u64);
        for &l in &self.protected_layers {
            buf.put_u64_le(l as u64);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 8, "round")?;
        let round = buf.get_u64_le();
        let weights = ModelWeights::decode_from(buf)?;
        let plan = TrainingPlan::decode_from(buf)?;
        let n = decode_len(buf, "protected layer count")?;
        if n > 4096 {
            return Err(FlError::BadConfig {
                reason: format!("protected layer count {n} exceeds protocol maximum"),
            });
        }
        let mut protected_layers = Vec::with_capacity(n);
        for _ in 0..n {
            need(buf, 8, "protected layer index")?;
            protected_layers.push(buf.get_u64_le() as usize);
        }
        Ok(ModelDownload {
            round,
            weights,
            plan,
            protected_layers,
        })
    }
}

impl Wire for UpdateUpload {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.client_id);
        buf.put_u64_le(self.round);
        self.weights.encode_into(buf);
        buf.put_u64_le(self.num_samples as u64);
        buf.put_f32_le(self.train_loss);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        need(buf, 16, "upload header")?;
        let client_id = buf.get_u64_le();
        let round = buf.get_u64_le();
        let weights = ModelWeights::decode_from(buf)?;
        need(buf, 12, "upload footer")?;
        let num_samples = buf.get_u64_le() as usize;
        let train_loss = buf.get_f32_le();
        Ok(UpdateUpload {
            client_id,
            round,
            weights,
            num_samples,
            train_loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights() -> ModelWeights {
        ModelWeights::new(vec![LayerWeights {
            w: Tensor::from_vec(vec![1.0, -2.5, 3.25, 0.0], &[2, 2]).unwrap(),
            b: Tensor::from_vec(vec![0.5], &[1]).unwrap(),
        }])
    }

    #[test]
    fn roundtrip_model_download() {
        let msg = ModelDownload {
            round: 3,
            weights: weights(),
            plan: TrainingPlan::default(),
            protected_layers: vec![1, 4],
        };
        let back: ModelDownload = decode(&encode(&msg)).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn roundtrip_update_upload() {
        let msg = UpdateUpload {
            client_id: 9,
            round: 1,
            weights: weights(),
            num_samples: 320,
            train_loss: 2.5,
        };
        let back: UpdateUpload = decode(&encode(&msg)).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn roundtrip_plan_fields() {
        let plan = TrainingPlan {
            rounds: 12,
            clients_per_round: 5,
            batches_per_cycle: 7,
            batch_size: 16,
            learning_rate: 0.125,
            seed: 99,
        };
        let back: TrainingPlan = decode(&encode(&plan)).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn roundtrip_attestation() {
        use gradsec_tee::attestation::sign_quote;
        let ch = Challenge::new([3u8; 16]);
        let req = AttestationRequest { challenge: ch };
        let back: AttestationRequest = decode(&encode(&req)).unwrap();
        assert_eq!(req, back);
        let q = sign_quote(b"key", Uuid::from_name("ta"), Measurement([9u8; 32]), &ch);
        let resp = AttestationResponse { quote: Some(q) };
        let back: AttestationResponse = decode(&encode(&resp)).unwrap();
        assert_eq!(resp, back);
        let none = AttestationResponse { quote: None };
        let back: AttestationResponse = decode(&encode(&none)).unwrap();
        assert_eq!(none, back);
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(decode::<UpdateUpload>(b"short").is_err());
        let msg = UpdateUpload {
            client_id: 1,
            round: 1,
            weights: weights(),
            num_samples: 10,
            train_loss: 0.5,
        };
        let mut bytes = encode(&msg);
        bytes.truncate(bytes.len() - 3);
        assert!(decode::<UpdateUpload>(&bytes).is_err());
        // Trailing bytes are rejected too.
        let mut bytes = encode(&msg);
        bytes.push(0);
        assert!(decode::<UpdateUpload>(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_hostile_lengths() {
        // A tensor claiming 2^60 elements must be rejected before any
        // allocation happens.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1); // rank 1
        buf.put_u64_le(1 << 60); // dim
        buf.put_u64_le(1 << 60); // elems
        assert!(decode::<Tensor>(&buf.to_vec()).is_err());
    }

    #[test]
    fn tensor_dims_must_match_count() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u64_le(3); // dim says 3
        buf.put_u64_le(2); // but 2 elements
        buf.put_f32_le(0.0);
        buf.put_f32_le(0.0);
        assert!(decode::<Tensor>(&buf.to_vec()).is_err());
    }
}
