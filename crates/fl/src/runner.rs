//! Federation orchestration: wiring server and clients through rounds.

use std::sync::Arc;

use gradsec_data::{split, Dataset};
use gradsec_nn::Sequential;
use gradsec_tee::attestation::Measurement;
use gradsec_tee::cost::RoundLedger;
use gradsec_tee::crypto::sha256::sha256;

use crate::client::{DeviceProfile, FlClient};
use crate::config::TrainingPlan;
use crate::engine::ExecutionEngine;
use crate::message::UpdateUpload;
use crate::scheduler::{NoProtection, ProtectionScheduler};
use crate::server::FlServer;
use crate::trainer::{LocalTrainer, PlainSgdTrainer};
use crate::{FlError, Result};

/// Builds the prototype model whose replicas every client trains.
pub type ModelFactory = Box<dyn Fn() -> Sequential + Send + Sync>;

/// Builds a local trainer for a client id.
pub type TrainerFactory = Box<dyn Fn(u64) -> Box<dyn LocalTrainer> + Send + Sync>;

/// Per-round outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: u64,
    /// Indices of participating clients.
    pub participants: Vec<usize>,
    /// Mean training loss across participants.
    pub mean_loss: f32,
    /// The protected layers used this round.
    pub protected_layers: Vec<usize>,
    /// Per-client TEE accounting merged over the round (id-sorted, so
    /// identical whichever worker finished first).
    pub ledger: RoundLedger,
}

/// Whole-run outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FederationReport {
    /// Rounds completed.
    pub rounds_completed: u64,
    /// Per-round reports.
    pub rounds: Vec<RoundReport>,
}

/// Builder for a [`Federation`].
pub struct FederationBuilder {
    plan: TrainingPlan,
    model_factory: Option<ModelFactory>,
    trainer_factory: TrainerFactory,
    dataset: Option<Arc<dyn Dataset>>,
    devices: Vec<DeviceProfile>,
    scheduler: Arc<dyn ProtectionScheduler>,
    engine: ExecutionEngine,
    measurement: Measurement,
}

impl FederationBuilder {
    fn new(plan: TrainingPlan) -> Self {
        FederationBuilder {
            plan,
            model_factory: None,
            trainer_factory: Box::new(|_| Box::new(PlainSgdTrainer)),
            dataset: None,
            devices: Vec::new(),
            scheduler: Arc::new(NoProtection),
            engine: ExecutionEngine::sequential(),
            measurement: Measurement(sha256(b"gradsec-ta-code-v1")),
        }
    }

    /// Sets the model architecture factory.
    pub fn model<F>(mut self, f: F) -> Self
    where
        F: Fn() -> Sequential + Send + Sync + 'static,
    {
        self.model_factory = Some(Box::new(f));
        self
    }

    /// Adds `n` TrustZone-capable clients sharing `dataset` (sharded
    /// evenly).
    pub fn clients(mut self, n: usize, dataset: Arc<dyn Dataset>) -> Self {
        self.dataset = Some(dataset);
        self.devices = (0..n as u64).map(DeviceProfile::trustzone).collect();
        self
    }

    /// Uses an explicit device mix instead of all-TrustZone (for the
    /// hybrid-deployment scenarios of the paper's future work).
    pub fn devices(mut self, devices: Vec<DeviceProfile>, dataset: Arc<dyn Dataset>) -> Self {
        self.dataset = Some(dataset);
        self.devices = devices;
        self
    }

    /// Sets the per-client trainer factory (GradSec's secure trainer hooks
    /// in here).
    pub fn trainer<F>(mut self, f: F) -> Self
    where
        F: Fn(u64) -> Box<dyn LocalTrainer> + Send + Sync + 'static,
    {
        self.trainer_factory = Box::new(f);
        self
    }

    /// Sets the protection scheduler driving every round's sheltered
    /// layer set. Policies from `gradsec-core` implement
    /// [`ProtectionScheduler`] directly; plain `Fn(u64) -> Vec<usize>`
    /// closures work too.
    pub fn scheduler<S>(mut self, s: S) -> Self
    where
        S: ProtectionScheduler + 'static,
    {
        self.scheduler = Arc::new(s);
        self
    }

    /// Sets the round-execution engine (worker pool size); defaults to
    /// sequential execution.
    pub fn engine(mut self, engine: ExecutionEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the whitelisted TA measurement.
    pub fn measurement(mut self, m: Measurement) -> Self {
        self.measurement = m;
        self
    }

    /// Assembles the federation.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] when the model factory or dataset is
    /// missing, or the plan is invalid.
    pub fn build(self) -> Result<Federation> {
        let model_factory = self.model_factory.ok_or_else(|| FlError::BadConfig {
            reason: "model factory not set".to_owned(),
        })?;
        let dataset = self.dataset.ok_or_else(|| FlError::BadConfig {
            reason: "dataset not set".to_owned(),
        })?;
        if self.devices.is_empty() {
            return Err(FlError::BadConfig {
                reason: "no clients configured".to_owned(),
            });
        }
        self.plan.validate()?;
        let shards = split::shard(dataset.len(), self.devices.len(), self.plan.seed);
        // One factory invocation builds the prototype; every client gets a
        // replica (identical weights, fresh caches) — the same mechanism
        // the engine's per-worker replicas rely on.
        let prototype = model_factory();
        let clients: Vec<FlClient> = self
            .devices
            .into_iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (device, shard))| {
                FlClient::new(
                    i as u64,
                    device,
                    dataset.clone(),
                    shard,
                    prototype.replicate(),
                    (self.trainer_factory)(i as u64),
                )
            })
            .collect();
        let server = FlServer::new(self.plan, prototype.weights(), self.measurement)?;
        Ok(Federation {
            server,
            clients,
            scheduler: self.scheduler,
            engine: self.engine,
        })
    }
}

/// A complete in-process federation: one server plus its client fleet.
pub struct Federation {
    server: FlServer,
    clients: Vec<FlClient>,
    scheduler: Arc<dyn ProtectionScheduler>,
    engine: ExecutionEngine,
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("clients", &self.clients.len())
            .field("round", &self.server.round())
            .finish()
    }
}

impl Federation {
    /// Starts a builder.
    pub fn builder(plan: TrainingPlan) -> FederationBuilder {
        FederationBuilder::new(plan)
    }

    /// The server.
    pub fn server(&self) -> &FlServer {
        &self.server
    }

    /// The clients.
    pub fn clients(&self) -> &[FlClient] {
        &self.clients
    }

    /// Mutable client access (tests inject failures through this).
    pub fn clients_mut(&mut self) -> &mut [FlClient] {
        &mut self.clients
    }

    /// The configured protection scheduler.
    pub fn scheduler(&self) -> &Arc<dyn ProtectionScheduler> {
        &self.scheduler
    }

    /// The configured execution engine.
    pub fn engine(&self) -> ExecutionEngine {
        self.engine
    }

    /// Runs one FL cycle with the builder-configured engine.
    ///
    /// # Errors
    ///
    /// Propagates selection, training and aggregation failures.
    pub fn run_round(&mut self) -> Result<RoundReport> {
        let engine = self.engine;
        self.run_round_with(&engine)
    }

    /// Runs one FL cycle — select → download → local train (fanned out by
    /// `engine`) → aggregate — and merges the clients' TEE accounting
    /// into the round ledger.
    ///
    /// # Errors
    ///
    /// Propagates selection, training and aggregation failures. When
    /// several clients fail in one round, the error of the earliest
    /// client in selection order is returned.
    pub fn run_round_with(&mut self, engine: &ExecutionEngine) -> Result<RoundReport> {
        let round = self.server.round();
        let picked = self.server.select(&self.clients)?;
        // Clamp the scheduler's draw to the global model's depth — a
        // policy configured for a deeper network shelters what exists
        // rather than failing the round (the semantics the old
        // closure hook had via `protected_for_round(round, n_layers)`).
        let n_layers = self.server.global().num_layers();
        let mut protected = self.scheduler.layers_for_round(round);
        protected.retain(|&l| l < n_layers);
        let download = self.server.download(protected.clone());
        let (results, ledger) = engine.execute_cycles(&mut self.clients, &picked, &download);
        let updates: Vec<UpdateUpload> = results.into_iter().collect::<Result<Vec<_>>>()?;
        let mean_loss =
            updates.iter().map(|u| u.train_loss).sum::<f32>() / updates.len().max(1) as f32;
        self.server.aggregate(&updates)?;
        Ok(RoundReport {
            round,
            participants: picked,
            mean_loss,
            protected_layers: protected,
            ledger,
        })
    }

    /// Runs the full plan with the builder-configured engine.
    ///
    /// # Errors
    ///
    /// Propagates round failures.
    pub fn run(&mut self) -> Result<FederationReport> {
        let engine = self.engine;
        self.run_with(&engine)
    }

    /// Runs the full plan through `engine`.
    ///
    /// # Errors
    ///
    /// Propagates round failures.
    pub fn run_with(&mut self, engine: &ExecutionEngine) -> Result<FederationReport> {
        let mut report = FederationReport::default();
        for _ in 0..self.server.plan().rounds {
            let r = self.run_round_with(engine)?;
            report.rounds.push(r);
            report.rounds_completed += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;

    fn plan() -> TrainingPlan {
        TrainingPlan {
            rounds: 3,
            clients_per_round: 2,
            batches_per_cycle: 2,
            batch_size: 4,
            learning_rate: 0.05,
            seed: 1,
        }
    }

    fn dataset() -> Arc<SyntheticCifar100> {
        Arc::new(SyntheticCifar100::with_classes(64, 2, 2))
    }

    #[test]
    fn sequential_run_completes_all_rounds() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(3, dataset())
            .build()
            .unwrap();
        let report = fed.run().unwrap();
        assert_eq!(report.rounds_completed, 3);
        assert_eq!(fed.server().history().len(), 4); // initial + 3
    }

    #[test]
    fn parallel_run_matches_round_count() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(4, dataset())
            .engine(ExecutionEngine::new(4))
            .build()
            .unwrap();
        let report = fed.run().unwrap();
        assert_eq!(report.rounds_completed, 3);
        for r in &report.rounds {
            assert_eq!(r.participants.len(), 2);
        }
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        let build = || {
            Federation::builder(plan())
                .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
                .clients(4, dataset())
                .build()
                .unwrap()
        };
        let mut seq = build();
        let seq_report = seq.run_with(&ExecutionEngine::sequential()).unwrap();
        for workers in [2usize, 4] {
            let mut par = build();
            let par_report = par.run_with(&ExecutionEngine::new(workers)).unwrap();
            assert_eq!(seq_report, par_report, "{workers}-worker report diverged");
            assert_eq!(
                seq.server().global(),
                par.server().global(),
                "{workers}-worker weights diverged"
            );
        }
    }

    #[test]
    fn out_of_range_scheduled_layers_are_clamped() {
        // A scheduler configured for a deeper model shelters what
        // exists instead of failing the round.
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(2, dataset())
            .scheduler(|_: u64| vec![1, 6])
            .build()
            .unwrap();
        let r = fed.run_round().unwrap();
        assert_eq!(r.protected_layers, vec![1]);
    }

    #[test]
    fn scheduler_reaches_downloads() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(2, dataset())
            .scheduler(|round: u64| vec![round as usize % 2])
            .build()
            .unwrap();
        let r0 = fed.run_round().unwrap();
        assert_eq!(r0.protected_layers, vec![0]);
        let r1 = fed.run_round().unwrap();
        assert_eq!(r1.protected_layers, vec![1]);
    }

    #[test]
    fn mixed_fleet_excludes_non_tee() {
        let ds = dataset();
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .devices(
                vec![
                    DeviceProfile::trustzone(0),
                    DeviceProfile::legacy(1),
                    DeviceProfile::compromised(2),
                    DeviceProfile::trustzone(3),
                ],
                ds,
            )
            .build()
            .unwrap();
        let r = fed.run_round().unwrap();
        assert!(r.participants.iter().all(|&i| i == 0 || i == 3));
    }

    #[test]
    fn builder_validates() {
        assert!(Federation::builder(plan()).build().is_err());
        let no_clients = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(4, 4, 2, 1).unwrap())
            .build();
        assert!(no_clients.is_err());
    }

    #[test]
    fn training_improves_global_accuracy() {
        // End-to-end sanity: the federated model should learn the 2-class
        // synthetic task measurably.
        let ds = dataset();
        let mut fed = Federation::builder(TrainingPlan {
            rounds: 15,
            clients_per_round: 3,
            batches_per_cycle: 4,
            batch_size: 8,
            learning_rate: 0.05,
            seed: 5,
        })
        .model(|| zoo::tiny_mlp(3 * 32 * 32, 16, 2, 21).unwrap())
        .clients(3, ds.clone())
        .build()
        .unwrap();
        fed.run().unwrap();
        let mut model = zoo::tiny_mlp(3 * 32 * 32, 16, 2, 21).unwrap();
        model.set_weights(fed.server().global()).unwrap();
        let (x, y) = gradsec_data::batch_of(ds.as_ref(), &(0..64).collect::<Vec<_>>());
        let acc = model.accuracy(&x, &y).unwrap();
        assert!(acc > 0.7, "federated accuracy only {acc}");
    }
}
