//! Federation orchestration: wiring server and clients through rounds.

use std::sync::Arc;

use gradsec_data::{split, Dataset};
use gradsec_nn::Sequential;
use gradsec_tee::attestation::Measurement;
use gradsec_tee::crypto::sha256::sha256;

use crate::client::{DeviceProfile, FlClient};
use crate::config::TrainingPlan;
use crate::message::UpdateUpload;
use crate::server::FlServer;
use crate::trainer::{LocalTrainer, PlainSgdTrainer};
use crate::{FlError, Result};

/// Builds a fresh model replica for each client.
pub type ModelFactory = Box<dyn Fn() -> Sequential + Send + Sync>;

/// Builds a local trainer for a client id.
pub type TrainerFactory = Box<dyn Fn(u64) -> Box<dyn LocalTrainer> + Send + Sync>;

/// Chooses the protected layer set for a round — the hook through which
/// GradSec's static/dynamic policies drive the federation.
pub type ProtectionSchedule = Box<dyn FnMut(u64) -> Vec<usize> + Send>;

/// Per-round outcome.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: u64,
    /// Indices of participating clients.
    pub participants: Vec<usize>,
    /// Mean training loss across participants.
    pub mean_loss: f32,
    /// The protected layers used this round.
    pub protected_layers: Vec<usize>,
}

/// Whole-run outcome.
#[derive(Debug, Clone, Default)]
pub struct FederationReport {
    /// Rounds completed.
    pub rounds_completed: u64,
    /// Per-round reports.
    pub rounds: Vec<RoundReport>,
}

/// Builder for a [`Federation`].
pub struct FederationBuilder {
    plan: TrainingPlan,
    model_factory: Option<ModelFactory>,
    trainer_factory: TrainerFactory,
    dataset: Option<Arc<dyn Dataset>>,
    devices: Vec<DeviceProfile>,
    schedule: ProtectionSchedule,
    parallel: bool,
    measurement: Measurement,
}

impl FederationBuilder {
    fn new(plan: TrainingPlan) -> Self {
        FederationBuilder {
            plan,
            model_factory: None,
            trainer_factory: Box::new(|_| Box::new(PlainSgdTrainer)),
            dataset: None,
            devices: Vec::new(),
            schedule: Box::new(|_| Vec::new()),
            parallel: false,
            measurement: Measurement(sha256(b"gradsec-ta-code-v1")),
        }
    }

    /// Sets the model architecture factory.
    pub fn model<F>(mut self, f: F) -> Self
    where
        F: Fn() -> Sequential + Send + Sync + 'static,
    {
        self.model_factory = Some(Box::new(f));
        self
    }

    /// Adds `n` TrustZone-capable clients sharing `dataset` (sharded
    /// evenly).
    pub fn clients(mut self, n: usize, dataset: Arc<dyn Dataset>) -> Self {
        self.dataset = Some(dataset);
        self.devices = (0..n as u64).map(DeviceProfile::trustzone).collect();
        self
    }

    /// Uses an explicit device mix instead of all-TrustZone (for the
    /// hybrid-deployment scenarios of the paper's future work).
    pub fn devices(mut self, devices: Vec<DeviceProfile>, dataset: Arc<dyn Dataset>) -> Self {
        self.dataset = Some(dataset);
        self.devices = devices;
        self
    }

    /// Sets the per-client trainer factory (GradSec's secure trainer hooks
    /// in here).
    pub fn trainer<F>(mut self, f: F) -> Self
    where
        F: Fn(u64) -> Box<dyn LocalTrainer> + Send + Sync + 'static,
    {
        self.trainer_factory = Box::new(f);
        self
    }

    /// Sets the per-round protection schedule.
    pub fn schedule<F>(mut self, f: F) -> Self
    where
        F: FnMut(u64) -> Vec<usize> + Send + 'static,
    {
        self.schedule = Box::new(f);
        self
    }

    /// Runs selected clients on scoped threads each round.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Overrides the whitelisted TA measurement.
    pub fn measurement(mut self, m: Measurement) -> Self {
        self.measurement = m;
        self
    }

    /// Assembles the federation.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] when the model factory or dataset is
    /// missing, or the plan is invalid.
    pub fn build(self) -> Result<Federation> {
        let model_factory = self.model_factory.ok_or_else(|| FlError::BadConfig {
            reason: "model factory not set".to_owned(),
        })?;
        let dataset = self.dataset.ok_or_else(|| FlError::BadConfig {
            reason: "dataset not set".to_owned(),
        })?;
        if self.devices.is_empty() {
            return Err(FlError::BadConfig {
                reason: "no clients configured".to_owned(),
            });
        }
        self.plan.validate()?;
        let shards = split::shard(dataset.len(), self.devices.len(), self.plan.seed);
        let clients: Vec<FlClient> = self
            .devices
            .into_iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (device, shard))| {
                FlClient::new(
                    i as u64,
                    device,
                    dataset.clone(),
                    shard,
                    model_factory(),
                    (self.trainer_factory)(i as u64),
                )
            })
            .collect();
        let initial = model_factory();
        let server = FlServer::new(self.plan, initial.weights(), self.measurement)?;
        Ok(Federation {
            server,
            clients,
            schedule: self.schedule,
            parallel: self.parallel,
        })
    }
}

/// A complete in-process federation: one server plus its client fleet.
pub struct Federation {
    server: FlServer,
    clients: Vec<FlClient>,
    schedule: ProtectionSchedule,
    parallel: bool,
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("clients", &self.clients.len())
            .field("round", &self.server.round())
            .finish()
    }
}

impl Federation {
    /// Starts a builder.
    pub fn builder(plan: TrainingPlan) -> FederationBuilder {
        FederationBuilder::new(plan)
    }

    /// The server.
    pub fn server(&self) -> &FlServer {
        &self.server
    }

    /// The clients.
    pub fn clients(&self) -> &[FlClient] {
        &self.clients
    }

    /// Mutable client access (tests inject failures through this).
    pub fn clients_mut(&mut self) -> &mut [FlClient] {
        &mut self.clients
    }

    /// Runs one FL cycle: select → download → local train → aggregate.
    ///
    /// # Errors
    ///
    /// Propagates selection, training and aggregation failures.
    pub fn run_round(&mut self) -> Result<RoundReport> {
        let round = self.server.round();
        let picked = self.server.select(&self.clients)?;
        let protected = (self.schedule)(round);
        let download = self.server.download(protected.clone());
        let updates: Vec<UpdateUpload> = if self.parallel {
            // Scoped threads: hand each selected client (a disjoint &mut)
            // to its own worker.
            let mut refs: Vec<(usize, &mut FlClient)> = self
                .clients
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| picked.contains(i))
                .collect();
            let results = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = refs
                    .iter_mut()
                    .map(|(_, c)| {
                        let dl = &download;
                        s.spawn(move |_| c.run_cycle(dl))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("federation scope panicked");
            results.into_iter().collect::<Result<Vec<_>>>()?
        } else {
            let mut ups = Vec::with_capacity(picked.len());
            for &i in &picked {
                ups.push(self.clients[i].run_cycle(&download)?);
            }
            ups
        };
        let mean_loss =
            updates.iter().map(|u| u.train_loss).sum::<f32>() / updates.len().max(1) as f32;
        self.server.aggregate(&updates)?;
        Ok(RoundReport {
            round,
            participants: picked,
            mean_loss,
            protected_layers: protected,
        })
    }

    /// Runs the full plan.
    ///
    /// # Errors
    ///
    /// Propagates round failures.
    pub fn run(&mut self) -> Result<FederationReport> {
        let mut report = FederationReport::default();
        for _ in 0..self.server.plan().rounds {
            let r = self.run_round()?;
            report.rounds.push(r);
            report.rounds_completed += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;

    fn plan() -> TrainingPlan {
        TrainingPlan {
            rounds: 3,
            clients_per_round: 2,
            batches_per_cycle: 2,
            batch_size: 4,
            learning_rate: 0.05,
            seed: 1,
        }
    }

    fn dataset() -> Arc<SyntheticCifar100> {
        Arc::new(SyntheticCifar100::with_classes(64, 2, 2))
    }

    #[test]
    fn sequential_run_completes_all_rounds() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(3, dataset())
            .build()
            .unwrap();
        let report = fed.run().unwrap();
        assert_eq!(report.rounds_completed, 3);
        assert_eq!(fed.server().history().len(), 4); // initial + 3
    }

    #[test]
    fn parallel_run_matches_round_count() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(4, dataset())
            .parallel(true)
            .build()
            .unwrap();
        let report = fed.run().unwrap();
        assert_eq!(report.rounds_completed, 3);
        for r in &report.rounds {
            assert_eq!(r.participants.len(), 2);
        }
    }

    #[test]
    fn schedule_reaches_downloads() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(2, dataset())
            .schedule(|round| vec![round as usize % 2])
            .build()
            .unwrap();
        let r0 = fed.run_round().unwrap();
        assert_eq!(r0.protected_layers, vec![0]);
        let r1 = fed.run_round().unwrap();
        assert_eq!(r1.protected_layers, vec![1]);
    }

    #[test]
    fn mixed_fleet_excludes_non_tee() {
        let ds = dataset();
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .devices(
                vec![
                    DeviceProfile::trustzone(0),
                    DeviceProfile::legacy(1),
                    DeviceProfile::compromised(2),
                    DeviceProfile::trustzone(3),
                ],
                ds,
            )
            .build()
            .unwrap();
        let r = fed.run_round().unwrap();
        assert!(r.participants.iter().all(|&i| i == 0 || i == 3));
    }

    #[test]
    fn builder_validates() {
        assert!(Federation::builder(plan()).build().is_err());
        let no_clients = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(4, 4, 2, 1).unwrap())
            .build();
        assert!(no_clients.is_err());
    }

    #[test]
    fn training_improves_global_accuracy() {
        // End-to-end sanity: the federated model should learn the 2-class
        // synthetic task measurably.
        let ds = dataset();
        let mut fed = Federation::builder(TrainingPlan {
            rounds: 15,
            clients_per_round: 3,
            batches_per_cycle: 4,
            batch_size: 8,
            learning_rate: 0.05,
            seed: 5,
        })
        .model(|| zoo::tiny_mlp(3 * 32 * 32, 16, 2, 21).unwrap())
        .clients(3, ds.clone())
        .build()
        .unwrap();
        fed.run().unwrap();
        let mut model = zoo::tiny_mlp(3 * 32 * 32, 16, 2, 21).unwrap();
        model.set_weights(fed.server().global()).unwrap();
        let (x, y) = gradsec_data::batch_of(ds.as_ref(), &(0..64).collect::<Vec<_>>());
        let acc = model.accuracy(&x, &y).unwrap();
        assert!(acc > 0.7, "federated accuracy only {acc}");
    }
}
