//! Federation orchestration: wiring server and clients through rounds.
//!
//! The round exchange is driven exclusively through
//! [`transport`](crate::transport) endpoints: the builder assembles the
//! client fleet, wires each client onto the configured
//! [`TransportKind`] (zero-copy in-process dispatch by default; loopback
//! TCP with one service thread per client; or multiplexed loopback TCP
//! with the whole fleet served by a small event-loop pool), handshakes
//! every endpoint, and hands the resulting [`RemoteClient`]s to the
//! server and engine. The same protocol bytes flow every way, so reports
//! are bit-identical across transports.
//!
//! Two runners share that machinery:
//!
//! * [`Federation`] — one flat fleet on one [`ExecutionEngine`].
//! * [`ShardedFederation`] — the fleet partitioned into contiguous
//!   [`ShardLayout`] shards, each running its selected clients on its own
//!   engine instance, with per-shard ledgers and [`PartialAggregate`]s
//!   merged into one global round report. Screening walks shards in
//!   global client order and the merge restores canonical selection
//!   order, so for any `(shards, workers)` combination the report and
//!   final weights are bit-identical to the flat run.

use std::sync::Arc;
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};

use gradsec_data::{split, Dataset};
use gradsec_nn::{BackendKind, Sequential};
use gradsec_tee::attestation::Measurement;
use gradsec_tee::cost::RoundLedger;
use gradsec_tee::crypto::sha256::sha256;

use crate::adversary::{Adversary, AdversaryPlan, CollusionLog, ReputationBook};
use crate::aggregate::{Aggregator, PartialAggregate};
use crate::client::{DeviceProfile, FlClient};
use crate::codec::CodecKind;
use crate::config::{MuxOptions, PartitionKind, ShardLayout, TrainingPlan, TransportKind};
use crate::engine::{ClientOutcome, ExecutionEngine};
use crate::faults::{FaultPlan, FaultyEndpoint};
use crate::scheduler::{NoProtection, ProtectionScheduler};
use crate::server::FlServer;
use crate::trainer::{LocalTrainer, PlainSgdTrainer};
use crate::transport::inprocess::LocalEndpoint;
use crate::transport::mux::{MuxFleet, DEFAULT_JOIN_GRACE};
use crate::transport::{tcp, ClientSession, RemoteClient, ServerEndpoint};
use crate::{FlError, Result};

/// Builds the prototype model whose replicas every client trains.
pub type ModelFactory = Box<dyn Fn() -> Sequential + Send + Sync>;

/// Builds a local trainer for a client id.
pub type TrainerFactory = Box<dyn Fn(u64) -> Box<dyn LocalTrainer> + Send + Sync>;

fn json_usize_list(xs: &[usize]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Per-round outcome.
///
/// Under a fault plan, one round's selected cohort partitions into four
/// disjoint groups: `participants` (committed into the aggregate),
/// `surplus` (over-provisioned spares that completed but were not
/// needed), `stragglers` (overran the round deadline on the simulated
/// clock) and `failures` (unreachable, dropped, garbled or crashed
/// exchanges). The `ledger` accounts *every* selected client — zero-cost
/// entries for failures. Without faults the last three groups are empty
/// and `participants` is the whole selection, exactly as before.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: u64,
    /// Indices of the clients whose updates were committed.
    pub participants: Vec<usize>,
    /// Over-provisioned clients that completed but were not needed (the
    /// first `clients_per_round` survivors in canonical order win).
    pub surplus: Vec<usize>,
    /// Clients whose simulated elapsed time overran the round deadline.
    pub stragglers: Vec<usize>,
    /// Clients whose exchange failed this round.
    pub failures: Vec<usize>,
    /// Mean training loss across committed participants.
    pub mean_loss: f32,
    /// The protected layers used this round.
    pub protected_layers: Vec<usize>,
    /// Per-client TEE accounting merged over the round (id-sorted, so
    /// identical whichever worker finished first) — one entry per
    /// selected client, success or not.
    pub ledger: RoundLedger,
}

impl RoundReport {
    /// Renders the report as a JSON object (hand-rolled: the vendored
    /// serde is a derive marker only), so repro binaries can export
    /// per-round results.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"round":{},"participants":{},"surplus":{},"stragglers":{},"failures":{},"mean_loss":{},"protected_layers":{},"ledger":{}}}"#,
            self.round,
            json_usize_list(&self.participants),
            json_usize_list(&self.surplus),
            json_usize_list(&self.stragglers),
            json_usize_list(&self.failures),
            gradsec_tee::cost::json_number(f64::from(self.mean_loss)),
            json_usize_list(&self.protected_layers),
            self.ledger.to_json(),
        )
    }
}

/// Whole-run outcome.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FederationReport {
    /// Rounds completed.
    pub rounds_completed: u64,
    /// Per-round reports.
    pub rounds: Vec<RoundReport>,
}

impl FederationReport {
    /// Renders the whole run as a JSON object.
    pub fn to_json(&self) -> String {
        let rounds: Vec<String> = self.rounds.iter().map(RoundReport::to_json).collect();
        format!(
            r#"{{"rounds_completed":{},"rounds":[{}]}}"#,
            self.rounds_completed,
            rounds.join(",")
        )
    }
}

/// Builder for a [`Federation`].
pub struct FederationBuilder {
    plan: TrainingPlan,
    model_factory: Option<ModelFactory>,
    trainer_factory: TrainerFactory,
    dataset: Option<Arc<dyn Dataset>>,
    devices: Vec<DeviceProfile>,
    scheduler: Arc<dyn ProtectionScheduler>,
    engine: ExecutionEngine,
    measurement: Measurement,
    transport: TransportKind,
    mux: MuxOptions,
    shards: usize,
    faults: Option<Arc<FaultPlan>>,
    backend: BackendKind,
    codec: CodecKind,
    screening_sample: Option<usize>,
    adversaries: Option<Arc<AdversaryPlan>>,
    aggregator: Aggregator,
    partition: PartitionKind,
    reputation: Option<ReputationBook>,
}

impl FederationBuilder {
    fn new(plan: TrainingPlan) -> Self {
        FederationBuilder {
            plan,
            model_factory: None,
            trainer_factory: Box::new(|_| Box::new(PlainSgdTrainer)),
            dataset: None,
            devices: Vec::new(),
            scheduler: Arc::new(NoProtection),
            engine: ExecutionEngine::sequential(),
            measurement: Measurement(sha256(b"gradsec-ta-code-v1")),
            transport: TransportKind::InProcess,
            mux: MuxOptions::default(),
            shards: 1,
            faults: None,
            backend: BackendKind::from_env(),
            codec: CodecKind::from_env(),
            screening_sample: None,
            adversaries: None,
            aggregator: Aggregator::FedAvg,
            partition: PartitionKind::Iid,
            reputation: None,
        }
    }

    /// Sets the model architecture factory.
    pub fn model<F>(mut self, f: F) -> Self
    where
        F: Fn() -> Sequential + Send + Sync + 'static,
    {
        self.model_factory = Some(Box::new(f));
        self
    }

    /// Adds `n` TrustZone-capable clients sharing `dataset` (sharded
    /// evenly).
    pub fn clients(mut self, n: usize, dataset: Arc<dyn Dataset>) -> Self {
        self.dataset = Some(dataset);
        self.devices = (0..n as u64).map(DeviceProfile::trustzone).collect();
        self
    }

    /// Uses an explicit device mix instead of all-TrustZone (for the
    /// hybrid-deployment scenarios of the paper's future work).
    pub fn devices(mut self, devices: Vec<DeviceProfile>, dataset: Arc<dyn Dataset>) -> Self {
        self.dataset = Some(dataset);
        self.devices = devices;
        self
    }

    /// Sets the per-client trainer factory (GradSec's secure trainer hooks
    /// in here).
    pub fn trainer<F>(mut self, f: F) -> Self
    where
        F: Fn(u64) -> Box<dyn LocalTrainer> + Send + Sync + 'static,
    {
        self.trainer_factory = Box::new(f);
        self
    }

    /// Sets the protection scheduler driving every round's sheltered
    /// layer set. Policies from `gradsec-core` implement
    /// [`ProtectionScheduler`] directly; plain `Fn(u64) -> Vec<usize>`
    /// closures work too.
    pub fn scheduler<S>(mut self, s: S) -> Self
    where
        S: ProtectionScheduler + 'static,
    {
        self.scheduler = Arc::new(s);
        self
    }

    /// Sets the round-execution engine (worker pool size); defaults to
    /// sequential execution.
    pub fn engine(mut self, engine: ExecutionEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the whitelisted TA measurement.
    pub fn measurement(mut self, m: Measurement) -> Self {
        self.measurement = m;
        self
    }

    /// Selects the transport the fleet is wired onto (in-process by
    /// default; [`TransportKind::Tcp`] runs every client behind a
    /// loopback socket with its own service thread;
    /// [`TransportKind::TcpMux`] multiplexes every client session onto a
    /// small event-loop pool — see [`mux`](Self::mux) for its knobs).
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Tunes the [`TransportKind::TcpMux`] transport: event-loop count
    /// (0 = one per core), read-chunk size and the per-session
    /// write-queue bound. Ignored by the other transports.
    pub fn mux(mut self, options: MuxOptions) -> Self {
        self.mux = options;
        self
    }

    /// Installs a deterministic fault plan: every client endpoint is
    /// wrapped in a [`FaultyEndpoint`] injecting the plan's transport
    /// faults, selection over-provisions by the plan's spare count, and
    /// rounds become fault-*tolerant* — failed and straggling clients are
    /// recorded in the round report (and billed to its ledger) instead of
    /// failing the round, as long as at least one update commits. Under
    /// the same plan seed a faulted run is bit-identical for any
    /// `(shards, workers, transport)` combination.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Selects the tensor kernel backend for the whole federation run:
    /// the prototype model is pointed at it before replication, so every
    /// client replica — and every per-worker copy the engine makes from
    /// those — trains through the same kernels on every shard and
    /// transport. Defaults to the `GRADSEC_BACKEND` environment variable
    /// (`reference`/`blocked`), falling back to
    /// [`BackendKind::Reference`], the bit-identical-to-seed kernels.
    /// Runs are bit-identical *within* a backend for any
    /// `(shards, workers, transport)` combination; switching backends
    /// changes f32 rounding, not semantics.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the update codec every session negotiates at handshake:
    /// how model downloads and update uploads are packed on the wire.
    /// [`CodecKind::Identity`] (the default) is bit-identical to the
    /// uncompressed payloads; [`CodecKind::Int8`] and
    /// [`CodecKind::DeltaTopK`] trade a pinned, deterministic amount of
    /// precision for 3×+ smaller rounds. Defaults to the `GRADSEC_CODEC`
    /// environment variable (`identity`/`int8`/`delta-topk`). The codec
    /// is part of the run's reproducibility key: runs with the same
    /// codec are bit-identical across shards, workers, transports and
    /// process boundaries.
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Partitions the fleet into `shards` contiguous engine shards
    /// (clamped to the client count; defaults to 1). Build the result
    /// with [`build_sharded`](Self::build_sharded) — sharding changes
    /// wall-clock scaling, never results.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Caps per-round screening at `m` uniformly-sampled candidates
    /// instead of the whole fleet (see
    /// [`FlServer::set_screening_sample`]), so per-round selection cost
    /// stops being O(fleet). The default — no cap — screens everyone
    /// with an RNG stream bit-identical to pre-cap builds. Runs with the
    /// same cap are bit-identical across shards, workers, transports and
    /// process boundaries; changing the cap changes which clients are
    /// screened, so it is part of the run's reproducibility key.
    pub fn screening_sample(mut self, m: usize) -> Self {
        self.screening_sample = Some(m);
        self
    }

    /// Installs a deterministic adversarial scenario: each client's
    /// persona is a pure function of `(scenario seed, client id)` (see
    /// [`AdversaryPlan::persona_of`]), applied entirely client-side at
    /// cycle time — screening, selection and the transport exchange
    /// stay untouched, so a hostile run is bit-identical for any
    /// `(shards, workers, transport)` combination under the same
    /// scenario seed, and a quiet plan changes nothing at all.
    pub fn adversaries(mut self, plan: AdversaryPlan) -> Self {
        self.adversaries = Some(Arc::new(plan));
        self
    }

    /// Selects the aggregation rule rounds commit with (see
    /// [`Aggregator`]); defaults to plain FedAvg. Coordinator-side
    /// state: it never crosses the wire, so flat, sharded and
    /// distributed runs of the same rule are bit-identical.
    pub fn aggregator(mut self, aggregator: Aggregator) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Selects how the dataset is partitioned across clients (see
    /// [`PartitionKind`]); defaults to IID. Part of the run's
    /// reproducibility key.
    pub fn partition(mut self, partition: PartitionKind) -> Self {
        self.partition = partition;
        self
    }

    /// Enables reputation-filtered selection: round outcomes accumulate
    /// per-client scores (+1 completed, −1 straggled/failed) and
    /// clients below `threshold` are excluded from future eligibility
    /// (see [`ReputationBook`]). The filter is a deterministic retain
    /// before the selection shuffle — it consumes no server RNG.
    pub fn reputation(mut self, threshold: i64) -> Self {
        self.reputation = Some(ReputationBook::new(threshold));
        self
    }

    /// Assembles a flat (single-shard) federation: builds the fleet,
    /// wires it onto the configured transport and handshakes every
    /// endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] when the model factory or dataset is
    /// missing, the plan is invalid, or a shard count above 1 was
    /// configured (use [`build_sharded`](Self::build_sharded)); transport/
    /// handshake failures propagate as
    /// [`FlError::Transport`]/[`FlError::Protocol`].
    pub fn build(self) -> Result<Federation> {
        if self.shards > 1 {
            return Err(FlError::BadConfig {
                reason: format!(
                    "builder configured {} shards; use build_sharded()",
                    self.shards
                ),
            });
        }
        let fleet = self.assemble()?;
        Ok(Federation {
            server: fleet.server,
            clients: fleet.clients,
            scheduler: fleet.scheduler,
            engine: fleet.engine,
            sessions: fleet.sessions,
            faults: fleet.faults,
            aggregator: fleet.aggregator,
            collusion: fleet.collusion,
        })
    }

    /// Assembles a sharded federation: the same fleet, wired the same
    /// way, then partitioned into the configured number of contiguous
    /// shards. `shards(1)` (the default) yields a one-shard federation
    /// whose rounds are bit-identical to [`build`](Self::build)'s.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](Self::build), minus the shard-count
    /// restriction.
    pub fn build_sharded(self) -> Result<ShardedFederation> {
        let shards = self.shards;
        let fleet = self.assemble()?;
        let mut clients = fleet.clients;
        let layout = ShardLayout::new(clients.len(), shards);
        let mut fleet_shards = Vec::with_capacity(layout.num_shards());
        for s in 0..layout.num_shards() {
            let rest = clients.split_off(layout.range(s).len());
            fleet_shards.push(std::mem::replace(&mut clients, rest));
        }
        Ok(ShardedFederation {
            server: fleet.server,
            shards: fleet_shards,
            layout,
            scheduler: fleet.scheduler,
            engine: fleet.engine,
            sessions: fleet.sessions,
            faults: fleet.faults,
            aggregator: fleet.aggregator,
            collusion: fleet.collusion,
        })
    }

    fn assemble(self) -> Result<AssembledFleet> {
        let model_factory = self.model_factory.ok_or_else(|| FlError::BadConfig {
            reason: "model factory not set".to_owned(),
        })?;
        let dataset = self.dataset.ok_or_else(|| FlError::BadConfig {
            reason: "dataset not set".to_owned(),
        })?;
        if self.devices.is_empty() {
            return Err(FlError::BadConfig {
                reason: "no clients configured".to_owned(),
            });
        }
        self.plan.validate()?;
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        if let Some(plan) = &self.adversaries {
            plan.validate()?;
        }
        self.aggregator.validate()?;
        let shards = partition_dataset(
            dataset.as_ref(),
            self.devices.len(),
            self.partition,
            self.plan.seed,
        );
        // One factory invocation builds the prototype; every client gets a
        // replica (identical weights, fresh caches) — the same mechanism
        // the engine's per-worker replicas rely on. The run's kernel
        // backend is set once here and rides along in every replica.
        let mut prototype = model_factory();
        prototype.set_backend(self.backend);
        let collusion = self
            .adversaries
            .as_ref()
            .map(|_| Arc::new(CollusionLog::default()));
        let fleet: Vec<FlClient> = self
            .devices
            .into_iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (device, shard))| {
                let mut client = FlClient::new(
                    i as u64,
                    device,
                    dataset.clone(),
                    shard,
                    prototype.replicate(),
                    (self.trainer_factory)(i as u64),
                );
                if let Some(plan) = &self.adversaries {
                    if let Some(persona) = plan.persona_of(i as u64) {
                        client.set_adversary(Adversary {
                            persona,
                            plan: plan.clone(),
                            log: collusion.clone(),
                        });
                    }
                }
                client
            })
            .collect();
        let mut server = FlServer::new(self.plan, prototype.weights(), self.measurement)?;
        if let Some(plan) = &self.faults {
            server.overprovision(plan.spare_count());
        }
        server.set_screening_sample(self.screening_sample);
        server.set_reputation(self.reputation);
        let (clients, sessions) = wire_fleet(
            fleet,
            self.transport,
            &self.mux,
            self.faults.as_ref(),
            self.codec,
        )?;
        Ok(AssembledFleet {
            server,
            clients,
            sessions,
            scheduler: self.scheduler,
            engine: self.engine,
            faults: self.faults,
            aggregator: self.aggregator,
            collusion,
        })
    }
}

/// Derives the per-client data partition for `kind` — the one function
/// both the in-process assemblers and the distributed shard servers call,
/// so every execution path hands client `i` the identical local shard.
pub(crate) fn partition_dataset(
    dataset: &dyn Dataset,
    clients: usize,
    kind: PartitionKind,
    seed: u64,
) -> Vec<Vec<usize>> {
    match kind {
        PartitionKind::Iid => split::shard(dataset.len(), clients, seed),
        PartitionKind::ByLabel => {
            let labels: Vec<usize> = (0..dataset.len())
                .map(|i| dataset.sample(i).label)
                .collect();
            split::shard_by_label(&labels, clients, seed)
        }
    }
}

/// Everything `assemble` produces: the handshaken fleet plus the run
/// configuration the builder carried.
struct AssembledFleet {
    server: FlServer,
    clients: Vec<RemoteClient>,
    sessions: SessionBackend,
    scheduler: Arc<dyn ProtectionScheduler>,
    engine: ExecutionEngine,
    faults: Option<Arc<FaultPlan>>,
    aggregator: Aggregator,
    collusion: Option<Arc<CollusionLog>>,
}

/// The client-side machinery a socket-backed transport left running
/// behind the handshaken endpoints — whatever teardown must reap.
enum SessionBackend {
    /// Thread-per-client service threads ([`TransportKind::Tcp`]); each
    /// returns its `FlClient` when the session ends. The in-process
    /// transport leaves this empty.
    Threads(Vec<JoinHandle<Result<FlClient>>>),
    /// The event-loop pool serving a multiplexed fleet
    /// ([`TransportKind::TcpMux`]).
    Mux(MuxFleet),
}

/// Wires a built fleet onto `transport`, returning the handshaken
/// endpoints (id-ordered) plus the client-side session backend to reap
/// at teardown. With a fault plan, every endpoint — whatever the
/// backend — is wrapped in a [`FaultyEndpoint`] before the handshake, so
/// transport faults inject identically over in-process pipes, threaded
/// sockets and multiplexed sockets (the fault layer lives server-side,
/// above the pipe).
fn wire_fleet(
    fleet: Vec<FlClient>,
    transport: TransportKind,
    mux: &MuxOptions,
    faults: Option<&Arc<FaultPlan>>,
    codec: CodecKind,
) -> Result<(Vec<RemoteClient>, SessionBackend)> {
    let wrap = move |endpoint: Box<dyn ServerEndpoint>| -> Box<dyn ServerEndpoint> {
        match faults {
            Some(plan) => Box::new(FaultyEndpoint::new(endpoint, plan.clone())),
            None => endpoint,
        }
    };
    match transport {
        TransportKind::InProcess => {
            let remotes = fleet
                .into_iter()
                .map(|c| RemoteClient::connect_with(wrap(Box::new(LocalEndpoint::new(c))), codec))
                .collect::<Result<Vec<_>>>()?;
            Ok((remotes, SessionBackend::Threads(Vec::new())))
        }
        TransportKind::Tcp => {
            let listener = tcp::bind(("127.0.0.1", 0))?;
            let addr = listener.local_addr()?;
            let n = fleet.len();
            // Every session thread connects at once; outgrow the std
            // 128-slot backlog before the SYN storm starts.
            listener.deepen_backlog(n as u32 + 128);
            let mut sessions: Vec<JoinHandle<Result<FlClient>>> = fleet
                .into_iter()
                .map(|client| {
                    std::thread::spawn(move || {
                        let endpoint = tcp::connect(addr)?;
                        ClientSession::new(client, endpoint).serve()
                    })
                })
                .collect();
            // Poll for the n connections rather than blocking in accept:
            // a session thread that failed to connect would otherwise
            // leave build() waiting forever for a connection that will
            // never arrive.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            let mut remotes = Vec::with_capacity(n);
            while remotes.len() < n {
                match listener.try_accept()? {
                    Some(endpoint) => {
                        remotes.push(RemoteClient::connect_with(wrap(Box::new(endpoint)), codec)?)
                    }
                    None => {
                        if let Some(dead) = sessions.iter().position(JoinHandle::is_finished) {
                            let outcome = sessions.remove(dead).join();
                            let reason = match outcome {
                                Ok(Ok(_)) => continue, // clean early exit; keep accepting
                                Ok(Err(e)) => return Err(e),
                                Err(_) => "client session thread panicked".to_owned(),
                            };
                            return Err(FlError::Protocol { reason });
                        }
                        if std::time::Instant::now() > deadline {
                            return Err(FlError::disconnected(
                                "waiting for client connections during federation build",
                            ));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            }
            // Connections are accepted in arrival order; the handshake
            // told us who is who, so restore fleet order by id.
            remotes.sort_by_key(RemoteClient::id);
            Ok((remotes, SessionBackend::Threads(sessions)))
        }
        TransportKind::TcpMux => {
            let listener = tcp::bind(("127.0.0.1", 0))?;
            let addr = listener.local_addr()?;
            let n = fleet.len();
            // The event loops connect their whole share before the
            // accepts below drain anything; outgrow the 128-slot
            // backlog so no connect lands in kernel retry backoff.
            listener.deepen_backlog(n as u32 + 128);
            let fleet_handle = MuxFleet::launch(addr, fleet, mux)?;
            // Accept ALL n connections before handshaking any of them.
            // The event loops connect their whole share before they start
            // polling, so a handshake attempted early would block on a
            // session nobody is serving yet — while the un-accepted
            // remainder overflows the listener backlog and stalls the
            // loops' own connects: a deadlock. Draining the backlog first
            // breaks the cycle.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            let mut endpoints = Vec::with_capacity(n);
            while endpoints.len() < n {
                match listener.try_accept()? {
                    Some(endpoint) => endpoints.push(endpoint),
                    None => {
                        if let Some(e) = fleet_handle.take_early_error() {
                            return Err(e);
                        }
                        if std::time::Instant::now() > deadline {
                            return Err(FlError::disconnected(
                                "waiting for mux client connections during federation build",
                            ));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            }
            let mut remotes = endpoints
                .into_iter()
                .map(|endpoint| RemoteClient::connect_with(wrap(Box::new(endpoint)), codec))
                .collect::<Result<Vec<_>>>()?;
            remotes.sort_by_key(RemoteClient::id);
            Ok((remotes, SessionBackend::Mux(fleet_handle)))
        }
    }
}

/// A complete federation: one server plus its client fleet, reachable
/// only through transport endpoints.
pub struct Federation {
    server: FlServer,
    clients: Vec<RemoteClient>,
    scheduler: Arc<dyn ProtectionScheduler>,
    engine: ExecutionEngine,
    sessions: SessionBackend,
    faults: Option<Arc<FaultPlan>>,
    aggregator: Aggregator,
    collusion: Option<Arc<CollusionLog>>,
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("clients", &self.clients.len())
            .field("round", &self.server.round())
            .finish()
    }
}

impl Federation {
    /// Starts a builder.
    pub fn builder(plan: TrainingPlan) -> FederationBuilder {
        FederationBuilder::new(plan)
    }

    /// The server.
    pub fn server(&self) -> &FlServer {
        &self.server
    }

    /// The clients' endpoint handles.
    pub fn clients(&self) -> &[RemoteClient] {
        &self.clients
    }

    /// Mutable endpoint access (tests drive exchanges through this).
    pub fn clients_mut(&mut self) -> &mut [RemoteClient] {
        &mut self.clients
    }

    /// The configured protection scheduler.
    pub fn scheduler(&self) -> &Arc<dyn ProtectionScheduler> {
        &self.scheduler
    }

    /// The configured execution engine.
    pub fn engine(&self) -> ExecutionEngine {
        self.engine
    }

    /// The colluding coalition's observation log, present when an
    /// adversarial scenario is installed (empty until a colluder
    /// participates in a round).
    pub fn collusion_log(&self) -> Option<&Arc<CollusionLog>> {
        self.collusion.as_ref()
    }

    /// Runs one FL cycle with the builder-configured engine.
    ///
    /// # Errors
    ///
    /// Propagates selection, training and aggregation failures.
    pub fn run_round(&mut self) -> Result<RoundReport> {
        let engine = self.engine;
        self.run_round_with(&engine)
    }

    /// Runs one FL cycle — select → download → local train (fanned out by
    /// `engine` over the endpoints) → aggregate — and merges the TEE
    /// accounting carried on the uploads into the round ledger.
    ///
    /// # Errors
    ///
    /// Propagates selection, training and aggregation failures. Without a
    /// fault plan, when several clients fail in one round the error of the
    /// earliest client in selection order is returned; with one, failures
    /// and stragglers are tolerated and recorded on the report as long as
    /// at least one update commits.
    pub fn run_round_with(&mut self, engine: &ExecutionEngine) -> Result<RoundReport> {
        let round = self.server.round();
        let picked = self.server.select(&mut self.clients)?;
        // Clamp the scheduler's draw to the global model's depth — a
        // policy configured for a deeper network shelters what exists
        // rather than failing the round (the semantics the old
        // closure hook had via `protected_for_round(round, n_layers)`).
        let n_layers = self.server.global().num_layers();
        let mut protected = self.scheduler.layers_for_round(round);
        protected.retain(|&l| l < n_layers);
        let download = self.server.download(protected.clone());
        let (outcomes, ledger) = engine.execute_cycles_with(
            &mut self.clients,
            &picked,
            &download,
            self.faults.as_deref(),
        )?;
        finish_round(
            &mut self.server,
            round,
            picked,
            outcomes,
            ledger,
            protected,
            self.faults.is_some(),
            self.aggregator,
        )
    }

    /// Runs the full plan with the builder-configured engine.
    ///
    /// # Errors
    ///
    /// Propagates round failures.
    pub fn run(&mut self) -> Result<FederationReport> {
        let engine = self.engine;
        self.run_with(&engine)
    }

    /// Runs the full plan through `engine`.
    ///
    /// # Errors
    ///
    /// Propagates round failures.
    pub fn run_with(&mut self, engine: &ExecutionEngine) -> Result<FederationReport> {
        let mut report = FederationReport::default();
        for _ in 0..self.server.plan().rounds {
            let r = self.run_round_with(engine)?;
            report.rounds.push(r);
            report.rounds_completed += 1;
        }
        Ok(report)
    }

    /// Tears the fleet down: says goodbye over every endpoint and joins
    /// any client service threads. Called automatically on drop (best
    /// effort); call explicitly to observe teardown errors.
    ///
    /// # Errors
    ///
    /// Returns the first goodbye/join failure encountered.
    pub fn shutdown(mut self) -> Result<()> {
        self.teardown()
    }

    fn teardown(&mut self) -> Result<()> {
        teardown_fleet(std::mem::take(&mut self.clients), &mut self.sessions)
    }
}

impl Drop for Federation {
    fn drop(&mut self) {
        let _ = self.teardown();
    }
}

/// Commits one executed round: walks the outcomes in canonical
/// (selection) order, aggregates the first `clients_per_round` completed
/// updates, classifies the rest into surplus/straggler/failure groups and
/// installs the new global model. Both runners bottom out here — sharing
/// the commit path is part of the flat/sharded bit-identity guarantee.
///
/// Without fault tolerance (`tolerate == false`, no fault plan
/// configured) any failed outcome fails the round with the earliest
/// failure in selection order — the strict contract healthy fleets always
/// had. With tolerance, failures and stragglers are merely recorded, and
/// the round only errors when *no* update committed.
#[allow(clippy::too_many_arguments)] // the round's full classification context, one commit path
pub(crate) fn finish_round(
    server: &mut FlServer,
    round: u64,
    picked: Vec<usize>,
    outcomes: Vec<ClientOutcome>,
    ledger: RoundLedger,
    protected: Vec<usize>,
    tolerate: bool,
    aggregator: Aggregator,
) -> Result<RoundReport> {
    let k = server.plan().clients_per_round;
    let mut agg = PartialAggregate::new();
    let mut participants = Vec::new();
    let mut surplus = Vec::new();
    let mut stragglers = Vec::new();
    let mut failures = Vec::new();
    let mut first_err: Option<FlError> = None;
    for (slot, (outcome, &ci)) in outcomes.into_iter().zip(picked.iter()).enumerate() {
        match outcome {
            ClientOutcome::Completed(upload) => {
                if participants.len() < k {
                    agg.push(slot, upload);
                    participants.push(ci);
                } else {
                    surplus.push(ci);
                }
            }
            ClientOutcome::Straggler { .. } => stragglers.push(ci),
            ClientOutcome::Failed { error, .. } => {
                failures.push(ci);
                first_err.get_or_insert(error);
            }
        }
    }
    if !tolerate {
        if let Some(e) = first_err {
            return Err(e);
        }
    }
    if participants.is_empty() {
        // Prefer the earliest concrete failure; a collapse with no
        // failure at all means every survivor straggled — name that
        // rather than misdiagnosing it as a selection problem.
        return Err(first_err.unwrap_or(FlError::RoundCollapsed {
            round,
            stragglers: stragglers.len(),
            failures: failures.len(),
        }));
    }
    // Robust variants need the previous global as a reference point (norm
    // clipping measures drift against it); the immutable borrow ends
    // before the commit below takes the server mutably.
    let outcome = {
        let reference = server.global();
        agg.finish_with(aggregator, Some(reference))?
    };
    // Reputation accrues from outcome history: committed updates earn
    // credit, shed ones (stragglers and failures alike) earn debit. A
    // no-op unless a `ReputationBook` is installed on the server.
    let completed: Vec<usize> = participants.iter().chain(surplus.iter()).copied().collect();
    let shed: Vec<usize> = stragglers.iter().chain(failures.iter()).copied().collect();
    server.note_round_outcomes(&completed, &shed);
    server.commit(outcome.weights);
    Ok(RoundReport {
        round,
        participants,
        surplus,
        stragglers,
        failures,
        mean_loss: outcome.mean_loss,
        protected_layers: protected,
        ledger,
    })
}

/// Says goodbye over every endpoint, *drops* every endpoint, then reaps
/// the client-side session backend, returning the first failure
/// encountered (both runners tear down this way).
///
/// The order matters: dropping the server-side endpoints closes their
/// sockets/channels before the joins below, so a session whose goodbye
/// was lost (dead peer, injected fault, broken pipe) observes a
/// disconnect — the threaded path wakes from its blocking `recv`, the
/// mux path sees EOF on its next readiness event — and exits instead of
/// hanging the join forever. The mux join is additionally bounded by
/// [`DEFAULT_JOIN_GRACE`] plus the loops' shutdown flag, the same
/// watchdog discipline in a form one thread can apply to thousands of
/// sessions.
fn teardown_fleet(clients: Vec<RemoteClient>, sessions: &mut SessionBackend) -> Result<()> {
    let mut first_err = None;
    for mut client in clients {
        if let Err(e) = client.goodbye() {
            first_err.get_or_insert(e);
        }
        // `client` drops here, hanging up its transport.
    }
    match sessions {
        SessionBackend::Threads(handles) => {
            for session in handles.drain(..) {
                match session.join() {
                    Ok(Ok(_client)) => {}
                    Ok(Err(e)) => {
                        first_err.get_or_insert(e);
                    }
                    Err(_) => {
                        first_err.get_or_insert(FlError::Protocol {
                            reason: "client session thread panicked".to_owned(),
                        });
                    }
                }
            }
        }
        SessionBackend::Mux(fleet) => {
            if let Err(e) = fleet.join(DEFAULT_JOIN_GRACE) {
                first_err.get_or_insert(e);
            }
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// A federation whose client fleet is partitioned across independent
/// engine shards — the scale-out runner for 10⁴+ simulated clients.
///
/// One [`FlServer`] still owns the global model, RNG and history; what
/// shards is the *fleet*: each contiguous [`ShardLayout`] shard holds its
/// own `Vec<RemoteClient>` and runs its selected clients on its own
/// [`ExecutionEngine`] worker pool (shards execute concurrently). Per
/// round the server screens shard-by-shard in global client order,
/// samples globally, and the per-shard outcomes come back as slot-tagged
/// [`PartialAggregate`]s plus per-shard [`RoundLedger`]s that merge into
/// one canonical report — bit-identical to the flat [`Federation`] for
/// any `(shards, workers)` combination (asserted by
/// `tests/integration_sharding.rs`).
pub struct ShardedFederation {
    server: FlServer,
    shards: Vec<Vec<RemoteClient>>,
    layout: ShardLayout,
    scheduler: Arc<dyn ProtectionScheduler>,
    engine: ExecutionEngine,
    sessions: SessionBackend,
    faults: Option<Arc<FaultPlan>>,
    aggregator: Aggregator,
    collusion: Option<Arc<CollusionLog>>,
}

impl std::fmt::Debug for ShardedFederation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFederation")
            .field("shards", &self.shards.len())
            .field("clients", &self.layout.num_clients())
            .field("round", &self.server.round())
            .finish()
    }
}

impl ShardedFederation {
    /// The server.
    pub fn server(&self) -> &FlServer {
        &self.server
    }

    /// The shard layout.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Number of engine shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total clients across all shards.
    pub fn num_clients(&self) -> usize {
        self.layout.num_clients()
    }

    /// The configured execution engine (each shard runs its own pool of
    /// this size).
    pub fn engine(&self) -> ExecutionEngine {
        self.engine
    }

    /// The colluding coalition's observation log, present when an
    /// adversarial scenario is installed (empty until a colluder
    /// participates in a round).
    pub fn collusion_log(&self) -> Option<&Arc<CollusionLog>> {
        self.collusion.as_ref()
    }

    /// Runs one FL cycle with the builder-configured engine.
    ///
    /// # Errors
    ///
    /// Propagates selection, training and aggregation failures.
    pub fn run_round(&mut self) -> Result<RoundReport> {
        let engine = self.engine;
        self.run_round_with(&engine)
    }

    /// Runs one FL cycle — shard-scoped screening, global sampling,
    /// concurrent per-shard execution, canonical merge — through
    /// `engine`.
    ///
    /// # Errors
    ///
    /// Propagates selection, training and aggregation failures under the
    /// same tolerance contract as the flat runner: strict without a fault
    /// plan (earliest failure in selection order fails the round),
    /// fault-tolerant with one.
    pub fn run_round_with(&mut self, engine: &ExecutionEngine) -> Result<RoundReport> {
        let round = self.server.round();
        let picked = self.server.select_sharded(&mut self.shards)?;
        let n_layers = self.server.global().num_layers();
        let mut protected = self.scheduler.layers_for_round(round);
        protected.retain(|&l| l < n_layers);
        let download = self.server.download(protected.clone());
        let local_picks = self.layout.split_picks(&picked);
        let jobs: Vec<(&mut [RemoteClient], Vec<usize>)> = self
            .shards
            .iter_mut()
            .map(Vec::as_mut_slice)
            .zip(local_picks)
            .collect();
        let per_shard = engine.execute_shards_with(jobs, &download, self.faults.as_deref())?;
        // Merge: ledgers fold id-sorted; outcomes concatenate in shard
        // order, which — the layout being contiguous — restores exactly
        // the canonical global selection order the commit walks.
        let mut ledger = RoundLedger::new();
        let mut outcomes = Vec::with_capacity(picked.len());
        for (shard_outcomes, shard_ledger) in per_shard {
            outcomes.extend(shard_outcomes);
            ledger.merge(&shard_ledger);
        }
        finish_round(
            &mut self.server,
            round,
            picked,
            outcomes,
            ledger,
            protected,
            self.faults.is_some(),
            self.aggregator,
        )
    }

    /// Runs the full plan with the builder-configured engine.
    ///
    /// # Errors
    ///
    /// Propagates round failures.
    pub fn run(&mut self) -> Result<FederationReport> {
        let engine = self.engine;
        self.run_with(&engine)
    }

    /// Runs the full plan through `engine`.
    ///
    /// # Errors
    ///
    /// Propagates round failures.
    pub fn run_with(&mut self, engine: &ExecutionEngine) -> Result<FederationReport> {
        let mut report = FederationReport::default();
        for _ in 0..self.server.plan().rounds {
            let r = self.run_round_with(engine)?;
            report.rounds.push(r);
            report.rounds_completed += 1;
        }
        Ok(report)
    }

    /// Tears the fleet down: says goodbye over every endpoint and joins
    /// any client service threads. Called automatically on drop (best
    /// effort); call explicitly to observe teardown errors.
    ///
    /// # Errors
    ///
    /// Returns the first goodbye/join failure encountered.
    pub fn shutdown(mut self) -> Result<()> {
        self.teardown()
    }

    fn teardown(&mut self) -> Result<()> {
        let clients: Vec<RemoteClient> = self.shards.drain(..).flatten().collect();
        teardown_fleet(clients, &mut self.sessions)
    }
}

impl Drop for ShardedFederation {
    fn drop(&mut self) {
        let _ = self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;

    fn plan() -> TrainingPlan {
        TrainingPlan {
            rounds: 3,
            clients_per_round: 2,
            batches_per_cycle: 2,
            batch_size: 4,
            learning_rate: 0.05,
            seed: 1,
        }
    }

    fn dataset() -> Arc<SyntheticCifar100> {
        Arc::new(SyntheticCifar100::with_classes(64, 2, 2))
    }

    #[test]
    fn sequential_run_completes_all_rounds() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(3, dataset())
            .build()
            .unwrap();
        let report = fed.run().unwrap();
        assert_eq!(report.rounds_completed, 3);
        assert_eq!(fed.server().history().len(), 4); // initial + 3
        fed.shutdown().unwrap();
    }

    #[test]
    fn parallel_run_matches_round_count() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(4, dataset())
            .engine(ExecutionEngine::new(4))
            .build()
            .unwrap();
        let report = fed.run().unwrap();
        assert_eq!(report.rounds_completed, 3);
        for r in &report.rounds {
            assert_eq!(r.participants.len(), 2);
        }
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        let build = || {
            Federation::builder(plan())
                .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
                .clients(4, dataset())
                .build()
                .unwrap()
        };
        let mut seq = build();
        let seq_report = seq.run_with(&ExecutionEngine::sequential()).unwrap();
        for workers in [2usize, 4] {
            let mut par = build();
            let par_report = par.run_with(&ExecutionEngine::new(workers)).unwrap();
            assert_eq!(seq_report, par_report, "{workers}-worker report diverged");
            assert_eq!(
                seq.server().global(),
                par.server().global(),
                "{workers}-worker weights diverged"
            );
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_to_flat() {
        let mut flat = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(5, dataset())
            .build()
            .unwrap();
        let flat_report = flat.run().unwrap();
        for shards in [1usize, 2, 5, 9] {
            let mut sharded = Federation::builder(plan())
                .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
                .clients(5, dataset())
                .shards(shards)
                .engine(ExecutionEngine::new(2))
                .build_sharded()
                .unwrap();
            assert_eq!(sharded.num_shards(), shards.min(5));
            assert_eq!(sharded.num_clients(), 5);
            let report = sharded.run().unwrap();
            assert_eq!(report, flat_report, "{shards}-shard report diverged");
            assert_eq!(
                sharded.server().global(),
                flat.server().global(),
                "{shards}-shard weights diverged"
            );
            sharded.shutdown().unwrap();
        }
    }

    #[test]
    fn an_all_straggler_round_reports_collapse_not_selection_failure() {
        use crate::faults::{FaultPlan, LatencyModel};
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(3, dataset())
            .faults(
                FaultPlan::seeded(1)
                    .latency(LatencyModel::Fixed(10.0))
                    .deadline_s(1.0),
            )
            .build()
            .unwrap();
        let err = fed.run_round().unwrap_err();
        match err {
            FlError::RoundCollapsed {
                round: 0,
                stragglers,
                failures: 0,
            } => assert!(stragglers > 0),
            other => panic!("expected RoundCollapsed, got {other:?}"),
        }
    }

    #[test]
    fn backend_selection_reaches_every_replica() {
        let run = |backend: Option<BackendKind>| {
            let mut b = Federation::builder(plan())
                .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
                .clients(3, dataset());
            if let Some(kind) = backend {
                b = b.backend(kind);
            }
            let mut fed = b.build().unwrap();
            let report = fed.run().unwrap();
            let weights = fed.server().global().clone();
            fed.shutdown().unwrap();
            (report, weights)
        };
        // The builder default is whatever GRADSEC_BACKEND selects
        // (Reference when unset) — bit-identical to passing that kind
        // explicitly, so the comparison holds even when the suite runs
        // under a GRADSEC_BACKEND override.
        let (r_default, w_default) = run(None);
        let (r_env, w_env) = run(Some(BackendKind::from_env()));
        assert_eq!(r_default, r_env);
        assert_eq!(w_default, w_env);
        let (r_ref, w_ref) = run(Some(BackendKind::Reference));
        // The blocked backend completes the same plan and lands within
        // kernel-rounding distance of the reference run.
        let (r_blk, w_blk) = run(Some(BackendKind::Blocked));
        assert_eq!(r_blk.rounds_completed, r_ref.rounds_completed);
        for (a, b) in w_ref.iter().zip(w_blk.iter()) {
            assert!(a.w.approx_eq(&b.w, 1e-2));
            assert!(a.b.approx_eq(&b.b, 1e-2));
        }
    }

    #[test]
    fn build_rejects_multi_shard_config() {
        let err = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(4, dataset())
            .shards(3)
            .build()
            .unwrap_err();
        assert!(matches!(err, FlError::BadConfig { .. }), "{err}");
        assert!(err.to_string().contains("build_sharded"));
    }

    #[test]
    fn out_of_range_scheduled_layers_are_clamped() {
        // A scheduler configured for a deeper model shelters what
        // exists instead of failing the round.
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(2, dataset())
            .scheduler(|_: u64| vec![1, 6])
            .build()
            .unwrap();
        let r = fed.run_round().unwrap();
        assert_eq!(r.protected_layers, vec![1]);
    }

    #[test]
    fn scheduler_reaches_downloads() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(2, dataset())
            .scheduler(|round: u64| vec![round as usize % 2])
            .build()
            .unwrap();
        let r0 = fed.run_round().unwrap();
        assert_eq!(r0.protected_layers, vec![0]);
        let r1 = fed.run_round().unwrap();
        assert_eq!(r1.protected_layers, vec![1]);
    }

    #[test]
    fn mixed_fleet_excludes_non_tee() {
        let ds = dataset();
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .devices(
                vec![
                    DeviceProfile::trustzone(0),
                    DeviceProfile::legacy(1),
                    DeviceProfile::compromised(2),
                    DeviceProfile::trustzone(3),
                ],
                ds,
            )
            .build()
            .unwrap();
        let r = fed.run_round().unwrap();
        assert!(r.participants.iter().all(|&i| i == 0 || i == 3));
    }

    #[test]
    fn builder_validates() {
        assert!(Federation::builder(plan()).build().is_err());
        let no_clients = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(4, 4, 2, 1).unwrap())
            .build();
        assert!(no_clients.is_err());
    }

    #[test]
    fn round_report_exports_json() {
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(2, dataset())
            .build()
            .unwrap();
        let r = fed.run_round().unwrap();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains(r#""round":0"#));
        assert!(json.contains(r#""participants":[0,1]"#));
        assert!(json.contains(r#""ledger":{"#));
        let report = FederationReport {
            rounds_completed: 1,
            rounds: vec![r],
        };
        assert!(report.to_json().contains(r#""rounds_completed":1"#));
    }

    #[test]
    fn clean_fleet_consumes_no_server_rng() {
        // Installing the adversary layer with a quiet plan (all
        // fractions zero) must leave every report and weight
        // bit-identical to a run that never heard of adversaries:
        // persona assignment draws from its own salted streams, never
        // the server's selection/screening RNG.
        let mut plain = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(4, dataset())
            .build()
            .unwrap();
        let plain_report = plain.run().unwrap();
        let mut quiet = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(4, dataset())
            .adversaries(AdversaryPlan::seeded(11))
            .build()
            .unwrap();
        let quiet_report = quiet.run().unwrap();
        assert_eq!(plain_report, quiet_report);
        assert_eq!(plain.server().global(), quiet.server().global());
        // A hostile fleet with reputation off still picks the same
        // participants every round: personas alter uploads, never the
        // server's sampling stream.
        let mut hostile = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(4, dataset())
            .adversaries(AdversaryPlan::seeded(11).poisoners(0.5))
            .build()
            .unwrap();
        let hostile_report = hostile.run().unwrap();
        for (clean, dirty) in plain_report.rounds.iter().zip(hostile_report.rounds.iter()) {
            assert_eq!(clean.participants, dirty.participants);
        }
    }

    #[test]
    fn hostile_fleet_with_robust_aggregation_runs() {
        // End-to-end wiring check: personas, a robust aggregator, a
        // label-skewed partition and reputation all active at once.
        let mut fed = Federation::builder(plan())
            .model(|| zoo::tiny_mlp(3 * 32 * 32, 8, 2, 9).unwrap())
            .clients(4, dataset())
            .adversaries(AdversaryPlan::seeded(3).poisoners(0.3).colluders(0.3))
            .aggregator(Aggregator::Median)
            .partition(PartitionKind::ByLabel)
            .reputation(-2)
            .build()
            .unwrap();
        let report = fed.run().unwrap();
        assert_eq!(report.rounds_completed, 3);
        let log = fed.collusion_log().expect("adversarial run keeps a log");
        // With a 30% colluder band over 4 clients the coalition may be
        // empty; either way the log observes at most one snapshot per
        // round.
        assert!(log.rounds_observed() <= 3);
    }

    #[test]
    fn training_improves_global_accuracy() {
        // End-to-end sanity: the federated model should learn the 2-class
        // synthetic task measurably.
        let ds = dataset();
        let mut fed = Federation::builder(TrainingPlan {
            rounds: 15,
            clients_per_round: 3,
            batches_per_cycle: 4,
            batch_size: 8,
            learning_rate: 0.05,
            seed: 5,
        })
        .model(|| zoo::tiny_mlp(3 * 32 * 32, 16, 2, 21).unwrap())
        .clients(3, ds.clone())
        .build()
        .unwrap();
        fed.run().unwrap();
        let mut model = zoo::tiny_mlp(3 * 32 * 32, 16, 2, 21).unwrap();
        model.set_weights(fed.server().global()).unwrap();
        let (x, y) = gradsec_data::batch_of(ds.as_ref(), &(0..64).collect::<Vec<_>>());
        let acc = model.accuracy(&x, &y).unwrap();
        assert!(acc > 0.7, "federated accuracy only {acc}");
    }
}
