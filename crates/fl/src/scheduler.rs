//! The protection scheduler — the hook through which GradSec's policies
//! drive the federation.
//!
//! Earlier revisions wired protection through an ad-hoc
//! `Box<dyn FnMut(u64) -> Vec<usize>>` closure. That shape cannot be
//! shared across the round engine's workers (`FnMut` needs exclusive
//! access) and hides *what* is scheduling behind an opaque closure. The
//! [`ProtectionScheduler`] trait replaces it: a stateless, `Send + Sync`
//! per-round draw that policies implement directly (see
//! `gradsec-core::policy`, which implements it for `ProtectionPolicy` and
//! the DarkneTZ baseline), so the same scheduler value can be consulted
//! concurrently by the server, every worker and any attacker simulation,
//! and all agree on a cycle's configuration.

/// Chooses the protected layer set for each FL cycle.
///
/// Implementations must be pure per round: calling
/// [`layers_for_round`](ProtectionScheduler::layers_for_round) twice with
/// the same round yields the same set. This is what makes federation runs
/// replayable and lets the parallel engine hand one scheduler to many
/// workers without synchronisation.
///
/// Indices past the global model's depth are clamped away by the
/// federation before the download is built, so a scheduler configured
/// for a deeper network degrades to sheltering the layers that exist.
pub trait ProtectionScheduler: Send + Sync {
    /// The layer indices to shelter during FL cycle `round`.
    fn layers_for_round(&self, round: u64) -> Vec<usize>;
}

/// Plain functions and closures schedule directly (the migration path for
/// code written against the old closure hook).
impl<F> ProtectionScheduler for F
where
    F: Fn(u64) -> Vec<usize> + Send + Sync,
{
    fn layers_for_round(&self, round: u64) -> Vec<usize> {
        self(round)
    }
}

/// The no-protection schedule (the unprotected baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProtection;

impl ProtectionScheduler for NoProtection {
    fn layers_for_round(&self, _round: u64) -> Vec<usize> {
        Vec::new()
    }
}

/// A fixed layer set sheltered every round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixedSchedule {
    layers: Vec<usize>,
}

impl FixedSchedule {
    /// Shelters `layers` on every cycle.
    pub fn new(layers: Vec<usize>) -> Self {
        FixedSchedule { layers }
    }
}

impl ProtectionScheduler for FixedSchedule {
    fn layers_for_round(&self, _round: u64) -> Vec<usize> {
        self.layers.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_scheduler<S: ProtectionScheduler>(s: &S, round: u64) -> Vec<usize> {
        s.layers_for_round(round)
    }

    #[test]
    fn closures_schedule() {
        let s = |round: u64| vec![round as usize % 3];
        assert_eq!(assert_scheduler(&s, 0), vec![0]);
        assert_eq!(assert_scheduler(&s, 7), vec![1]);
    }

    #[test]
    fn fixed_and_none() {
        assert!(NoProtection.layers_for_round(9).is_empty());
        let f = FixedSchedule::new(vec![1, 4]);
        assert_eq!(f.layers_for_round(0), vec![1, 4]);
        assert_eq!(f.layers_for_round(99), vec![1, 4]);
    }

    #[test]
    fn schedulers_are_shareable_across_threads() {
        let s = std::sync::Arc::new(FixedSchedule::new(vec![2]));
        let draws: Vec<Vec<usize>> = std::thread::scope(|scope| {
            (0..4)
                .map(|r| {
                    let s = s.clone();
                    scope.spawn(move || s.layers_for_round(r))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(draws.iter().all(|d| d == &vec![2]));
    }
}
