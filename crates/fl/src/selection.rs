//! TEE-aware client selection (Figure 2-➊).
//!
//! > "The FL server only samples clients with a TEE-compatible device,
//! > discarding those without a TEE. [...] The FL server can ensure the
//! > trustworthiness of the FL client code leveraging novel remote
//! > attestation support."
//!
//! Since the transport redesign, screening is an *endpoint* exchange: the
//! challenge travels to each client as an encoded
//! [`AttestationRequest`](crate::message::AttestationRequest) envelope
//! and the quote comes back the same way, so selection works identically
//! whether the client is a struct in this process or a device across a
//! socket.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

use gradsec_tee::attestation::{verify_quote, Challenge, Measurement};

use crate::transport::RemoteClient;
use crate::{FlError, Result};

/// Outcome of screening one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreeningOutcome {
    /// TEE present and quote verified against the whitelist.
    Eligible,
    /// Device reported no TEE / produced no quote.
    NoTee,
    /// Quote present but failed verification (bad key, stale nonce, or
    /// non-whitelisted TA measurement).
    FailedAttestation,
    /// The attestation exchange itself failed (transport error or a
    /// client-side failure report) — the device cannot participate this
    /// round.
    Unreachable,
}

/// Screens one client against an already-drawn challenge (the
/// coordinator-side half of the attestation exchange). Pure with respect
/// to the server RNG: challenge drawing and screening are split so that
/// sub-sampled and distributed screening consume the selection RNG
/// stream identically to the flat reference.
pub fn screen_one(
    client: &mut RemoteClient,
    expected: Measurement,
    challenge: &Challenge,
) -> ScreeningOutcome {
    let response = match client.attest(challenge) {
        Ok(r) => r,
        Err(_) => return ScreeningOutcome::Unreachable,
    };
    verify_evidence(
        client.attestation_key(),
        response.quote,
        expected,
        challenge,
    )
}

/// Turns raw attestation evidence into a screening verdict, verifying the
/// quote against the provisioning registry's key for the device. This is
/// the same judgement for an in-process client and for evidence relayed
/// by a shard-server process — verification always happens server-side.
pub fn verify_evidence(
    key: &[u8],
    quote: Option<gradsec_tee::attestation::Quote>,
    expected: Measurement,
    challenge: &Challenge,
) -> ScreeningOutcome {
    match quote {
        None => ScreeningOutcome::NoTee,
        Some(quote) => match verify_quote(key, &quote, expected, challenge) {
            Ok(()) => ScreeningOutcome::Eligible,
            Err(_) => ScreeningOutcome::FailedAttestation,
        },
    }
}

/// Screens every client with a fresh challenge and returns the verdicts,
/// index-aligned with `clients`.
///
/// One nonce is drawn per client in slice order, so the server's RNG
/// stream — and therefore the round's sampling — is identical across
/// transports.
pub fn screen_clients(
    clients: &mut [RemoteClient],
    expected: Measurement,
    rng: &mut StdRng,
) -> Vec<ScreeningOutcome> {
    clients
        .iter_mut()
        .map(|c| {
            let challenge = draw_challenge(rng);
            screen_one(c, expected, &challenge)
        })
        .collect()
}

/// Draws one 16-byte attestation nonce — the single point every
/// screening path consumes the selection RNG through, so nonce streams
/// cannot drift between flat, sharded and distributed runs.
pub fn draw_challenge(rng: &mut StdRng) -> Challenge {
    let mut nonce = [0u8; 16];
    rng.fill(&mut nonce[..]);
    Challenge::new(nonce)
}

/// Samples `m` distinct indices from `0..n` uniformly without
/// replacement (Floyd's algorithm), returned sorted. `m >= n` returns
/// every index without consuming the RNG — the sub-sampled screening
/// path degrades to full screening with an untouched stream.
pub fn sample_indices(n: usize, m: usize, rng: &mut StdRng) -> Vec<usize> {
    if m >= n {
        return (0..n).collect();
    }
    let mut chosen = std::collections::BTreeSet::new();
    for i in (n - m)..n {
        // The vendored RNG only samples half-open ranges; `i + 1` cannot
        // overflow because `i < n <= usize::MAX - 1` (a fleet of
        // usize::MAX clients is unrepresentable in memory).
        let j = rng.random_range(0..i + 1);
        if !chosen.insert(j) {
            chosen.insert(i);
        }
    }
    chosen.into_iter().collect()
}

/// One round's screening plan: which global client indices to challenge
/// (sorted — global client order) and the challenge each gets,
/// index-aligned. Built by
/// [`FlServer::screen_plan`](crate::server::FlServer::screen_plan); with
/// full screening the candidates are simply `0..n`, with sub-sampled
/// screening they are a uniform sample, so per-round selection cost is
/// O(candidates), not O(fleet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenPlan {
    /// Global client indices to screen, sorted ascending.
    pub candidates: Vec<usize>,
    /// The challenge for each candidate, index-aligned.
    pub challenges: Vec<Challenge>,
}

/// Validates a round schedule before it reaches the engine: every index
/// must address a registered client and no client may appear twice (a
/// client trains at most once per round, and a duplicated slot used to
/// leave the engine's result vector with a hole — and a panic).
///
/// Runs in O(`n_clients` + `picked`) with a one-bit-per-client seen map.
///
/// # Errors
///
/// Returns [`FlError::InvalidSelection`] naming the offending index.
pub fn validate_picks(picked: &[usize], n_clients: usize) -> Result<()> {
    let mut seen = vec![false; n_clients];
    for &p in picked {
        if p >= n_clients {
            return Err(FlError::InvalidSelection {
                reason: format!("picked index {p} out of range for {n_clients} clients"),
            });
        }
        if seen[p] {
            return Err(FlError::InvalidSelection {
                reason: format!("client {p} picked twice in one round"),
            });
        }
        seen[p] = true;
    }
    Ok(())
}

/// Samples up to `k` eligible client indices uniformly without
/// replacement, returned in canonical (sorted) order.
///
/// Over-provisioned selection is this same function with
/// `k = clients_per_round + spare` (see
/// [`FlServer::overprovision`](crate::server::FlServer::overprovision)):
/// the runner later commits the first `clients_per_round` *survivors* of
/// the returned canonical order, so faulted rounds keep aggregating a
/// full cohort deterministically.
pub fn sample_eligible(outcomes: &[ScreeningOutcome], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut eligible: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| **o == ScreeningOutcome::Eligible)
        .map(|(i, _)| i)
        .collect();
    eligible.shuffle(rng);
    eligible.truncate(k);
    eligible.sort_unstable();
    eligible
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DeviceProfile, FlClient};
    use crate::trainer::PlainSgdTrainer;
    use crate::transport::inprocess::LocalEndpoint;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use gradsec_tee::crypto::sha256::sha256;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn make_client(id: u64, device: DeviceProfile) -> RemoteClient {
        let ds = Arc::new(SyntheticCifar100::with_classes(8, 2, 1));
        let client = FlClient::new(
            id,
            device,
            ds,
            (0..8).collect(),
            zoo::tiny_mlp(3 * 32 * 32, 4, 2, id).unwrap(),
            Box::new(PlainSgdTrainer),
        );
        RemoteClient::connect(Box::new(LocalEndpoint::new(client))).unwrap()
    }

    fn whitelist() -> Measurement {
        Measurement(sha256(b"gradsec-ta-code-v1"))
    }

    #[test]
    fn screening_partitions_device_kinds() {
        let mut clients = vec![
            make_client(0, DeviceProfile::trustzone(0)),
            make_client(1, DeviceProfile::legacy(1)),
            make_client(2, DeviceProfile::compromised(2)),
            make_client(3, DeviceProfile::trustzone(3)),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let outcomes = screen_clients(&mut clients, whitelist(), &mut rng);
        assert_eq!(
            outcomes,
            vec![
                ScreeningOutcome::Eligible,
                ScreeningOutcome::NoTee,
                ScreeningOutcome::FailedAttestation,
                ScreeningOutcome::Eligible,
            ]
        );
    }

    #[test]
    fn hung_up_clients_screen_as_unreachable() {
        let (server_ep, client_ep) = crate::transport::inprocess::channel_pair();
        // The session thread answers the handshake then exits without a
        // Goodbye, hanging up the channel.
        let handle = std::thread::spawn(move || {
            let mut ep = client_ep;
            use crate::transport::{ClientEndpoint, ClientHandler};
            let ds = Arc::new(SyntheticCifar100::with_classes(8, 2, 1));
            let mut handler = ClientHandler::new(FlClient::new(
                5,
                DeviceProfile::trustzone(5),
                ds,
                (0..8).collect(),
                zoo::tiny_mlp(3 * 32 * 32, 4, 2, 5).unwrap(),
                Box::new(PlainSgdTrainer),
            ));
            let req = ep.recv().unwrap();
            let reply = handler.handle(req).unwrap();
            ep.send(reply).unwrap();
        });
        let mut clients = vec![RemoteClient::connect(Box::new(server_ep)).unwrap()];
        handle.join().unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let outcomes = screen_clients(&mut clients, whitelist(), &mut rng);
        assert_eq!(outcomes, vec![ScreeningOutcome::Unreachable]);
    }

    #[test]
    fn unprovisioned_keys_fail_screening() {
        // The server verifies quotes against its provisioning registry
        // (provisioned_key of the handshake-reported id), so a device
        // signing with any other key screens out — the same fate an
        // unprovisioned device meets in the field.
        let mut device = DeviceProfile::trustzone(0);
        device.attestation_key = b"some-other-key".to_vec();
        let mut clients = vec![make_client(0, device)];
        let mut rng = StdRng::seed_from_u64(2);
        let outcomes = screen_clients(&mut clients, whitelist(), &mut rng);
        assert_eq!(outcomes, vec![ScreeningOutcome::FailedAttestation]);
    }

    #[test]
    fn sampling_respects_eligibility_and_k() {
        let outcomes = vec![
            ScreeningOutcome::Eligible,
            ScreeningOutcome::NoTee,
            ScreeningOutcome::Eligible,
            ScreeningOutcome::Eligible,
            ScreeningOutcome::FailedAttestation,
        ];
        let mut rng = StdRng::seed_from_u64(2);
        let picked = sample_eligible(&outcomes, 2, &mut rng);
        assert_eq!(picked.len(), 2);
        assert!(picked.iter().all(|&i| [0usize, 2, 3].contains(&i)));
        // Requesting more than available returns all eligible.
        let mut rng = StdRng::seed_from_u64(3);
        let all = sample_eligible(&outcomes, 10, &mut rng);
        assert_eq!(all, vec![0, 2, 3]);
    }

    #[test]
    fn validate_picks_accepts_legal_schedules() {
        validate_picks(&[], 4).unwrap();
        validate_picks(&[2], 4).unwrap();
        validate_picks(&[3, 0, 2, 1], 4).unwrap();
    }

    #[test]
    fn validate_picks_rejects_duplicates_and_out_of_range() {
        let dup = validate_picks(&[1, 3, 1], 4).unwrap_err();
        assert!(matches!(dup, FlError::InvalidSelection { .. }), "{dup}");
        assert!(dup.to_string().contains("picked twice"));
        let oor = validate_picks(&[0, 4], 4).unwrap_err();
        assert!(matches!(oor, FlError::InvalidSelection { .. }), "{oor}");
        assert!(oor.to_string().contains("out of range"));
    }

    #[test]
    fn injected_faults_screen_as_unreachable() {
        // A fault plan that takes a client down (here: crashed from round
        // 0) surfaces through screening as Unreachable — the same verdict
        // a genuinely dead device earns — so faulted selection needs no
        // special cases downstream.
        use crate::faults::{FaultPlan, FaultyEndpoint};
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::seeded(3).crash_at(1, 0));
        let mut clients: Vec<RemoteClient> = (0..3u64)
            .map(|id| {
                let ds = Arc::new(SyntheticCifar100::with_classes(8, 2, 1));
                let client = FlClient::new(
                    id,
                    DeviceProfile::trustzone(id),
                    ds,
                    (0..8).collect(),
                    zoo::tiny_mlp(3 * 32 * 32, 4, 2, id).unwrap(),
                    Box::new(PlainSgdTrainer),
                );
                let inner: Box<dyn crate::transport::ServerEndpoint> =
                    Box::new(LocalEndpoint::new(client));
                RemoteClient::connect(Box::new(FaultyEndpoint::new(inner, plan.clone()))).unwrap()
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let outcomes = screen_clients(&mut clients, whitelist(), &mut rng);
        assert_eq!(
            outcomes,
            vec![
                ScreeningOutcome::Eligible,
                ScreeningOutcome::Unreachable,
                ScreeningOutcome::Eligible,
            ]
        );
    }

    #[test]
    fn sampling_none_when_no_eligible() {
        let outcomes = vec![
            ScreeningOutcome::NoTee,
            ScreeningOutcome::FailedAttestation,
            ScreeningOutcome::Unreachable,
        ];
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample_eligible(&outcomes, 3, &mut rng).is_empty());
    }
}
