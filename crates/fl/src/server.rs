//! The FL server.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gradsec_nn::model::ModelWeights;
use gradsec_tee::attestation::Measurement;

use crate::adversary::ReputationBook;
use crate::aggregate::fedavg;
use crate::config::TrainingPlan;
use crate::history::SnapshotHistory;
use crate::message::{ModelDownload, UpdateUpload};
use crate::selection::{
    draw_challenge, sample_indices, screen_clients, screen_one, ScreenPlan, ScreeningOutcome,
};
use crate::{FlError, Result};

/// The central FL server: owns the global model, screens and samples
/// clients, aggregates updates and records history.
#[derive(Debug)]
pub struct FlServer {
    plan: TrainingPlan,
    global: ModelWeights,
    history: SnapshotHistory,
    expected_measurement: Measurement,
    rng: StdRng,
    round: u64,
    spare: usize,
    screening_sample: Option<usize>,
    reputation: Option<ReputationBook>,
}

impl FlServer {
    /// Creates a server with the initial global model.
    ///
    /// `expected_measurement` is the whitelisted hash of the genuine
    /// GradSec TA; quotes reporting anything else are rejected during
    /// selection.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for an invalid plan.
    pub fn new(
        plan: TrainingPlan,
        initial: ModelWeights,
        expected_measurement: Measurement,
    ) -> Result<Self> {
        plan.validate()?;
        let mut history = SnapshotHistory::new();
        history.push(initial.clone());
        Ok(FlServer {
            rng: StdRng::seed_from_u64(plan.seed),
            plan,
            global: initial,
            history,
            expected_measurement,
            round: 0,
            spare: 0,
            screening_sample: None,
            reputation: None,
        })
    }

    /// Over-provisions every round's selection by `spare` extra clients:
    /// [`select`](Self::select) samples `clients_per_round + spare`, and
    /// the runner commits the first `clients_per_round` *survivors* in
    /// canonical order — the slack that keeps faulted rounds aggregating
    /// a full cohort. Zero (the default) restores exact-`k` sampling.
    pub fn overprovision(&mut self, spare: usize) {
        self.spare = spare;
    }

    /// The configured selection spare count.
    pub fn spare(&self) -> usize {
        self.spare
    }

    /// Caps per-round screening at `m` uniformly-sampled candidates
    /// instead of the whole fleet, so selection cost stops being
    /// O(fleet). `None` (the default) or `m >= fleet` restores full
    /// screening with a bit-identical RNG stream — the sub-sample draw
    /// consumes nothing in that case.
    pub fn set_screening_sample(&mut self, m: Option<usize>) {
        self.screening_sample = m;
    }

    /// The configured screening sample cap, if any.
    pub fn screening_sample(&self) -> Option<usize> {
        self.screening_sample
    }

    /// Enables (or disables) reputation-based selection filtering.
    /// Clients whose accumulated score sinks below the book's threshold
    /// are removed from the eligible set before the selection shuffle —
    /// a deterministic `retain`, so the server's RNG stream is
    /// untouched by the feature being on.
    pub fn set_reputation(&mut self, book: Option<ReputationBook>) {
        self.reputation = book;
    }

    /// The reputation book, if selection filtering is enabled.
    pub fn reputation(&self) -> Option<&ReputationBook> {
        self.reputation.as_ref()
    }

    /// Feeds one round's outcome classes into the reputation book (a
    /// no-op when reputation is disabled). Deterministic: outcome
    /// classes are already canonical, ascending lists in every path.
    /// Besides crediting/debiting the touched clients, the book decays
    /// every *untouched* score toward zero, so churned devices recover
    /// eligibility while persistent stragglers stay caught (see
    /// [`ReputationBook::note_round`]).
    pub fn note_round_outcomes(&mut self, completed: &[usize], shed: &[usize]) {
        if let Some(book) = &mut self.reputation {
            let completed: Vec<u64> = completed.iter().map(|&g| g as u64).collect();
            let shed: Vec<u64> = shed.iter().map(|&g| g as u64).collect();
            book.note_round(&completed, &shed);
        }
    }

    /// The training plan.
    pub fn plan(&self) -> &TrainingPlan {
        &self.plan
    }

    /// The current global model.
    pub fn global(&self) -> &ModelWeights {
        &self.global
    }

    /// The snapshot history (the DPIA observable).
    pub fn history(&self) -> &SnapshotHistory {
        &self.history
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Draws this round's screening plan for a fleet of `n` clients: the
    /// candidate set (all of `0..n`, or a uniform sub-sample when
    /// [`set_screening_sample`](Self::set_screening_sample) caps it) plus
    /// one challenge per candidate, in global candidate order.
    ///
    /// With full screening no sub-sample draw happens and the nonce
    /// stream is exactly what [`select`](Self::select) always consumed,
    /// so existing flat/sharded runs stay bit-identical; with a cap, the
    /// same plan drives flat and distributed runs alike, so they cannot
    /// drift from each other.
    pub fn screen_plan(&mut self, n: usize) -> ScreenPlan {
        let candidates = match self.screening_sample {
            Some(m) if m < n => sample_indices(n, m, &mut self.rng),
            _ => (0..n).collect(),
        };
        let challenges = candidates
            .iter()
            .map(|_| draw_challenge(&mut self.rng))
            .collect();
        ScreenPlan {
            candidates,
            challenges,
        }
    }

    /// The sampling tail every selection path shares — keeping it single
    /// is part of the flat/sharded/distributed bit-identity guarantee.
    /// `outcomes` is index-aligned with the plan's candidates; samples
    /// `clients_per_round + spare` eligible *global* indices, returned in
    /// canonical (sorted) order.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoEligibleClients`] when nobody passes.
    pub fn sample_screened(
        &mut self,
        plan: &ScreenPlan,
        outcomes: &[ScreeningOutcome],
    ) -> Result<Vec<usize>> {
        use rand::seq::SliceRandom;
        let k = self.plan.clients_per_round + self.spare;
        let mut eligible: Vec<usize> = plan
            .candidates
            .iter()
            .zip(outcomes.iter())
            .filter(|(_, o)| **o == ScreeningOutcome::Eligible)
            .map(|(&g, _)| g)
            .collect();
        if let Some(book) = &self.reputation {
            // Reputation exclusion happens *before* the shuffle and is a
            // plain retain: no RNG is consumed whether or not the book
            // filters anyone, so enabling the feature on a clean fleet
            // leaves the selection stream bit-identical.
            eligible.retain(|&g| book.eligible(g as u64));
        }
        eligible.shuffle(&mut self.rng);
        eligible.truncate(k);
        eligible.sort_unstable();
        if eligible.is_empty() {
            return Err(FlError::NoEligibleClients { round: self.round });
        }
        Ok(eligible)
    }

    /// Screens all clients over their endpoints and samples this round's
    /// participants (Figure 2-➊).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoEligibleClients`] when nobody passes.
    pub fn select(&mut self, clients: &mut [crate::transport::RemoteClient]) -> Result<Vec<usize>> {
        let plan = self.screen_plan(clients.len());
        let expected = self.expected_measurement;
        let outcomes: Vec<ScreeningOutcome> = plan
            .candidates
            .iter()
            .zip(plan.challenges.iter())
            .map(|(&i, ch)| screen_one(&mut clients[i], expected, ch))
            .collect();
        self.sample_screened(&plan, &outcomes)
    }

    /// Screens and samples a *sharded* fleet (Figure 2-➊ at fleet scale).
    ///
    /// Candidates are walked in global order, so with the contiguous
    /// [`ShardLayout`](crate::config::ShardLayout) the server's RNG
    /// consumes nonces in exactly the global client order — the returned
    /// pick set (global indices, sorted) is bit-identical to
    /// [`select`](Self::select) over the flattened fleet.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoEligibleClients`] when nobody passes.
    pub fn select_sharded(
        &mut self,
        shards: &mut [Vec<crate::transport::RemoteClient>],
    ) -> Result<Vec<usize>> {
        let total = shards.iter().map(Vec::len).sum();
        let plan = self.screen_plan(total);
        let mut offsets = Vec::with_capacity(shards.len() + 1);
        let mut at = 0usize;
        offsets.push(at);
        for shard in shards.iter() {
            at += shard.len();
            offsets.push(at);
        }
        let expected = self.expected_measurement;
        let outcomes: Vec<ScreeningOutcome> = plan
            .candidates
            .iter()
            .zip(plan.challenges.iter())
            .map(|(&g, ch)| {
                // partition_point (not binary_search) so empty shards'
                // duplicated offsets can never misroute a candidate.
                let s = offsets.partition_point(|&o| o <= g) - 1;
                screen_one(&mut shards[s][g - offsets[s]], expected, ch)
            })
            .collect();
        self.sample_screened(&plan, &outcomes)
    }

    /// Screens all clients, returning the per-client verdicts (used by
    /// examples and tests to show who was filtered and why).
    pub fn screen(
        &mut self,
        clients: &mut [crate::transport::RemoteClient],
    ) -> Vec<ScreeningOutcome> {
        screen_clients(clients, self.expected_measurement, &mut self.rng)
    }

    /// Builds the model download for the current round (Figure 2-➋).
    ///
    /// `protected_layers` is the GradSec configuration for this cycle
    /// (supplied by the protection scheduler in `gradsec-core`).
    pub fn download(&self, protected_layers: Vec<usize>) -> ModelDownload {
        ModelDownload {
            round: self.round,
            weights: self.global.clone(),
            plan: self.plan,
            protected_layers,
        }
    }

    /// Aggregates the round's updates into the next global model
    /// (Figure 2-➍) and records the snapshot.
    ///
    /// # Errors
    ///
    /// Propagates aggregation failures (empty set, mismatches).
    pub fn aggregate(&mut self, updates: &[UpdateUpload]) -> Result<()> {
        let next = fedavg(updates)?;
        self.commit(next);
        Ok(())
    }

    /// Installs an already-aggregated global model — the commit half of
    /// [`aggregate`](Self::aggregate), used by the sharded runner after
    /// merging per-shard [`PartialAggregate`]s — records the snapshot and
    /// advances the round counter.
    ///
    /// [`PartialAggregate`]: crate::aggregate::PartialAggregate
    pub fn commit(&mut self, next: ModelWeights) {
        self.global = next.clone();
        self.history.push(next);
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DeviceProfile, FlClient};
    use crate::trainer::PlainSgdTrainer;
    use crate::transport::inprocess::LocalEndpoint;
    use crate::transport::RemoteClient;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use gradsec_tee::crypto::sha256::sha256;
    use std::sync::Arc;

    fn measurement() -> Measurement {
        Measurement(sha256(b"gradsec-ta-code-v1"))
    }

    fn plan() -> TrainingPlan {
        TrainingPlan {
            rounds: 2,
            clients_per_round: 2,
            batches_per_cycle: 1,
            batch_size: 4,
            learning_rate: 0.05,
            seed: 3,
        }
    }

    fn make_clients(devices: Vec<DeviceProfile>) -> Vec<RemoteClient> {
        let ds = Arc::new(SyntheticCifar100::with_classes(16, 2, 1));
        devices
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let client = FlClient::new(
                    i as u64,
                    d,
                    ds.clone(),
                    (0..16).collect(),
                    zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap(),
                    Box::new(PlainSgdTrainer),
                );
                RemoteClient::connect(Box::new(LocalEndpoint::new(client))).unwrap()
            })
            .collect()
    }

    #[test]
    fn selection_filters_and_samples() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut clients = make_clients(vec![
            DeviceProfile::trustzone(0),
            DeviceProfile::legacy(1),
            DeviceProfile::compromised(2),
            DeviceProfile::trustzone(3),
        ]);
        let picked = server.select(&mut clients).unwrap();
        assert_eq!(picked, vec![0, 3]);
    }

    #[test]
    fn empty_reputation_book_changes_nothing_including_the_rng_stream() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let devices = || (0..6).map(DeviceProfile::trustzone).collect::<Vec<_>>();
        let mut plain = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut with_book = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        with_book.set_reputation(Some(ReputationBook::new(-2)));
        // Several consecutive rounds of selection: the retain consumes
        // no RNG, so the streams stay aligned across rounds.
        for _ in 0..3 {
            let a = plain.select(&mut make_clients(devices())).unwrap();
            let b = with_book.select(&mut make_clients(devices())).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reputation_excludes_clients_below_threshold() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut book = ReputationBook::new(0);
        book.debit(0);
        book.debit(3);
        server.set_reputation(Some(book));
        let picked = server
            .select(&mut make_clients(
                (0..6).map(DeviceProfile::trustzone).collect(),
            ))
            .unwrap();
        assert!(!picked.contains(&0) && !picked.contains(&3), "{picked:?}");
        // Outcome recording feeds back in.
        server.note_round_outcomes(&picked, &[]);
        for &g in &picked {
            assert_eq!(server.reputation().unwrap().score(g as u64), 1);
        }
    }

    #[test]
    fn sharded_selection_matches_flat_selection() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let devices = || {
            vec![
                DeviceProfile::trustzone(0),
                DeviceProfile::legacy(1),
                DeviceProfile::trustzone(2),
                DeviceProfile::trustzone(3),
                DeviceProfile::compromised(4),
            ]
        };
        let mut flat_server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut flat = make_clients(devices());
        let flat_picked = flat_server.select(&mut flat).unwrap();
        // The same fleet cut into contiguous shards consumes the same RNG
        // stream and picks the same global indices.
        for cuts in [vec![2usize, 3], vec![1, 1, 3], vec![5]] {
            let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
            let mut clients = make_clients(devices());
            let mut shards: Vec<Vec<RemoteClient>> = Vec::new();
            for n in cuts {
                let rest = clients.split_off(n);
                shards.push(std::mem::replace(&mut clients, rest));
            }
            let picked = server.select_sharded(&mut shards).unwrap();
            assert_eq!(picked, flat_picked);
        }
    }

    #[test]
    fn overprovisioned_selection_samples_k_plus_spare() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        assert_eq!(server.spare(), 0);
        server.overprovision(1);
        assert_eq!(server.spare(), 1);
        let mut clients = make_clients(vec![
            DeviceProfile::trustzone(0),
            DeviceProfile::trustzone(1),
            DeviceProfile::trustzone(2),
            DeviceProfile::trustzone(3),
        ]);
        // k = 2, spare = 1 -> 3 sampled, sorted canonical order.
        let picked = server.select(&mut clients).unwrap();
        assert_eq!(picked.len(), 3);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn screening_sample_at_or_above_fleet_matches_full_screening() {
        // A cap that doesn't bind must consume the exact same RNG stream
        // as no cap at all — the sub-sample draw is skipped entirely — so
        // legacy runs and capped runs stay bit-identical.
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let devices = || (0..5).map(DeviceProfile::trustzone).collect::<Vec<_>>();
        let mut reference = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let reference_picked = reference.select(&mut make_clients(devices())).unwrap();
        for cap in [5usize, 6, 64] {
            let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
            server.set_screening_sample(Some(cap));
            assert_eq!(server.screening_sample(), Some(cap));
            let picked = server.select(&mut make_clients(devices())).unwrap();
            assert_eq!(picked, reference_picked, "cap {cap} diverged from full");
        }
    }

    #[test]
    fn screening_sample_caps_candidates_and_picks_within_them() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        server.set_screening_sample(Some(3));
        let plan = server.screen_plan(64);
        assert_eq!(plan.candidates.len(), 3);
        assert_eq!(plan.challenges.len(), 3);
        // Candidates are a sorted subset of the fleet (global order).
        assert!(plan.candidates.windows(2).all(|w| w[0] < w[1]));
        assert!(plan.candidates.iter().all(|&g| g < 64));
        // Picks can only come from the screened candidates.
        let outcomes = vec![ScreeningOutcome::Eligible; 3];
        let picked = server.sample_screened(&plan, &outcomes).unwrap();
        assert!(picked.iter().all(|g| plan.candidates.contains(g)));
    }

    #[test]
    fn screen_plan_is_deterministic_across_servers() {
        // Same seed + same cap => same candidates and the same nonce for
        // each — the property the distributed coordinator leans on to
        // keep remote screening bit-identical to the flat reference.
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        for cap in [None, Some(7), Some(100)] {
            let mut a = FlServer::new(plan(), model.weights(), measurement()).unwrap();
            let mut b = FlServer::new(plan(), model.weights(), measurement()).unwrap();
            a.set_screening_sample(cap);
            b.set_screening_sample(cap);
            assert_eq!(a.screen_plan(40), b.screen_plan(40), "cap {cap:?}");
        }
    }

    #[test]
    fn sharded_selection_matches_flat_under_screening_cap() {
        // The binding cap routes only the sampled candidates to their
        // shards; the pick set must still match the flat fleet's.
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let devices = || {
            (0..8)
                .map(|i| {
                    if i == 2 {
                        DeviceProfile::legacy(i)
                    } else {
                        DeviceProfile::trustzone(i)
                    }
                })
                .collect::<Vec<_>>()
        };
        let mut flat_server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        flat_server.set_screening_sample(Some(5));
        let flat_picked = flat_server.select(&mut make_clients(devices())).unwrap();
        for cuts in [vec![4usize, 4], vec![2, 3, 3], vec![8]] {
            let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
            server.set_screening_sample(Some(5));
            let mut clients = make_clients(devices());
            let mut shards: Vec<Vec<RemoteClient>> = Vec::new();
            for n in cuts {
                let rest = clients.split_off(n);
                shards.push(std::mem::replace(&mut clients, rest));
            }
            let picked = server.select_sharded(&mut shards).unwrap();
            assert_eq!(picked, flat_picked);
        }
    }

    #[test]
    fn selection_fails_without_tee_clients() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut clients = make_clients(vec![DeviceProfile::legacy(0)]);
        assert!(matches!(
            server.select(&mut clients),
            Err(FlError::NoEligibleClients { .. })
        ));
    }

    #[test]
    fn full_round_advances_history() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut clients = make_clients(vec![
            DeviceProfile::trustzone(0),
            DeviceProfile::trustzone(1),
        ]);
        let picked = server.select(&mut clients).unwrap();
        let download = server.download(vec![]);
        let updates: Vec<_> = picked
            .into_iter()
            .map(|i| clients[i].train(&download).unwrap())
            .collect();
        server.aggregate(&updates).unwrap();
        assert_eq!(server.round(), 1);
        assert_eq!(server.history().len(), 2);
        // The global model moved.
        assert_ne!(server.global(), server.history().snapshot(0).unwrap());
    }

    #[test]
    fn invalid_plan_rejected() {
        let model = zoo::tiny_mlp(4, 4, 2, 1).unwrap();
        let bad = TrainingPlan {
            rounds: 0,
            ..plan()
        };
        assert!(FlServer::new(bad, model.weights(), measurement()).is_err());
    }
}
