//! The FL server.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gradsec_nn::model::ModelWeights;
use gradsec_tee::attestation::Measurement;

use crate::aggregate::fedavg;
use crate::config::TrainingPlan;
use crate::history::SnapshotHistory;
use crate::message::{ModelDownload, UpdateUpload};
use crate::selection::{sample_eligible, screen_clients, ScreeningOutcome};
use crate::{FlError, Result};

/// The central FL server: owns the global model, screens and samples
/// clients, aggregates updates and records history.
#[derive(Debug)]
pub struct FlServer {
    plan: TrainingPlan,
    global: ModelWeights,
    history: SnapshotHistory,
    expected_measurement: Measurement,
    rng: StdRng,
    round: u64,
    spare: usize,
}

impl FlServer {
    /// Creates a server with the initial global model.
    ///
    /// `expected_measurement` is the whitelisted hash of the genuine
    /// GradSec TA; quotes reporting anything else are rejected during
    /// selection.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for an invalid plan.
    pub fn new(
        plan: TrainingPlan,
        initial: ModelWeights,
        expected_measurement: Measurement,
    ) -> Result<Self> {
        plan.validate()?;
        let mut history = SnapshotHistory::new();
        history.push(initial.clone());
        Ok(FlServer {
            rng: StdRng::seed_from_u64(plan.seed),
            plan,
            global: initial,
            history,
            expected_measurement,
            round: 0,
            spare: 0,
        })
    }

    /// Over-provisions every round's selection by `spare` extra clients:
    /// [`select`](Self::select) samples `clients_per_round + spare`, and
    /// the runner commits the first `clients_per_round` *survivors* in
    /// canonical order — the slack that keeps faulted rounds aggregating
    /// a full cohort. Zero (the default) restores exact-`k` sampling.
    pub fn overprovision(&mut self, spare: usize) {
        self.spare = spare;
    }

    /// The configured selection spare count.
    pub fn spare(&self) -> usize {
        self.spare
    }

    /// The training plan.
    pub fn plan(&self) -> &TrainingPlan {
        &self.plan
    }

    /// The current global model.
    pub fn global(&self) -> &ModelWeights {
        &self.global
    }

    /// The snapshot history (the DPIA observable).
    pub fn history(&self) -> &SnapshotHistory {
        &self.history
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Screens all clients over their endpoints and samples this round's
    /// participants (Figure 2-➊).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoEligibleClients`] when nobody passes.
    pub fn select(&mut self, clients: &mut [crate::transport::RemoteClient]) -> Result<Vec<usize>> {
        let outcomes = screen_clients(clients, self.expected_measurement, &mut self.rng);
        self.sample_from(&outcomes)
    }

    /// The sampling tail both selection paths share — keeping it single
    /// is part of the flat/sharded bit-identity guarantee. Samples
    /// `clients_per_round + spare` so over-provisioned fleets carry the
    /// slack faulted rounds commit from.
    fn sample_from(&mut self, outcomes: &[ScreeningOutcome]) -> Result<Vec<usize>> {
        let k = self.plan.clients_per_round + self.spare;
        let picked = sample_eligible(outcomes, k, &mut self.rng);
        if picked.is_empty() {
            return Err(FlError::NoEligibleClients { round: self.round });
        }
        Ok(picked)
    }

    /// Screens and samples a *sharded* fleet (Figure 2-➊ at fleet scale).
    ///
    /// Shards are walked in order, so with the contiguous
    /// [`ShardLayout`](crate::config::ShardLayout) the server's RNG
    /// consumes nonces in exactly the global client order — the returned
    /// pick set (global indices, sorted) is bit-identical to
    /// [`select`](Self::select) over the flattened fleet.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoEligibleClients`] when nobody passes.
    pub fn select_sharded(
        &mut self,
        shards: &mut [Vec<crate::transport::RemoteClient>],
    ) -> Result<Vec<usize>> {
        let mut outcomes = Vec::with_capacity(shards.iter().map(Vec::len).sum());
        for shard in shards.iter_mut() {
            outcomes.extend(screen_clients(
                shard,
                self.expected_measurement,
                &mut self.rng,
            ));
        }
        self.sample_from(&outcomes)
    }

    /// Screens all clients, returning the per-client verdicts (used by
    /// examples and tests to show who was filtered and why).
    pub fn screen(
        &mut self,
        clients: &mut [crate::transport::RemoteClient],
    ) -> Vec<ScreeningOutcome> {
        screen_clients(clients, self.expected_measurement, &mut self.rng)
    }

    /// Builds the model download for the current round (Figure 2-➋).
    ///
    /// `protected_layers` is the GradSec configuration for this cycle
    /// (supplied by the protection scheduler in `gradsec-core`).
    pub fn download(&self, protected_layers: Vec<usize>) -> ModelDownload {
        ModelDownload {
            round: self.round,
            weights: self.global.clone(),
            plan: self.plan,
            protected_layers,
        }
    }

    /// Aggregates the round's updates into the next global model
    /// (Figure 2-➍) and records the snapshot.
    ///
    /// # Errors
    ///
    /// Propagates aggregation failures (empty set, mismatches).
    pub fn aggregate(&mut self, updates: &[UpdateUpload]) -> Result<()> {
        let next = fedavg(updates)?;
        self.commit(next);
        Ok(())
    }

    /// Installs an already-aggregated global model — the commit half of
    /// [`aggregate`](Self::aggregate), used by the sharded runner after
    /// merging per-shard [`PartialAggregate`]s — records the snapshot and
    /// advances the round counter.
    ///
    /// [`PartialAggregate`]: crate::aggregate::PartialAggregate
    pub fn commit(&mut self, next: ModelWeights) {
        self.global = next.clone();
        self.history.push(next);
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DeviceProfile, FlClient};
    use crate::trainer::PlainSgdTrainer;
    use crate::transport::inprocess::LocalEndpoint;
    use crate::transport::RemoteClient;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use gradsec_tee::crypto::sha256::sha256;
    use std::sync::Arc;

    fn measurement() -> Measurement {
        Measurement(sha256(b"gradsec-ta-code-v1"))
    }

    fn plan() -> TrainingPlan {
        TrainingPlan {
            rounds: 2,
            clients_per_round: 2,
            batches_per_cycle: 1,
            batch_size: 4,
            learning_rate: 0.05,
            seed: 3,
        }
    }

    fn make_clients(devices: Vec<DeviceProfile>) -> Vec<RemoteClient> {
        let ds = Arc::new(SyntheticCifar100::with_classes(16, 2, 1));
        devices
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let client = FlClient::new(
                    i as u64,
                    d,
                    ds.clone(),
                    (0..16).collect(),
                    zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap(),
                    Box::new(PlainSgdTrainer),
                );
                RemoteClient::connect(Box::new(LocalEndpoint::new(client))).unwrap()
            })
            .collect()
    }

    #[test]
    fn selection_filters_and_samples() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut clients = make_clients(vec![
            DeviceProfile::trustzone(0),
            DeviceProfile::legacy(1),
            DeviceProfile::compromised(2),
            DeviceProfile::trustzone(3),
        ]);
        let picked = server.select(&mut clients).unwrap();
        assert_eq!(picked, vec![0, 3]);
    }

    #[test]
    fn sharded_selection_matches_flat_selection() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let devices = || {
            vec![
                DeviceProfile::trustzone(0),
                DeviceProfile::legacy(1),
                DeviceProfile::trustzone(2),
                DeviceProfile::trustzone(3),
                DeviceProfile::compromised(4),
            ]
        };
        let mut flat_server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut flat = make_clients(devices());
        let flat_picked = flat_server.select(&mut flat).unwrap();
        // The same fleet cut into contiguous shards consumes the same RNG
        // stream and picks the same global indices.
        for cuts in [vec![2usize, 3], vec![1, 1, 3], vec![5]] {
            let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
            let mut clients = make_clients(devices());
            let mut shards: Vec<Vec<RemoteClient>> = Vec::new();
            for n in cuts {
                let rest = clients.split_off(n);
                shards.push(std::mem::replace(&mut clients, rest));
            }
            let picked = server.select_sharded(&mut shards).unwrap();
            assert_eq!(picked, flat_picked);
        }
    }

    #[test]
    fn overprovisioned_selection_samples_k_plus_spare() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        assert_eq!(server.spare(), 0);
        server.overprovision(1);
        assert_eq!(server.spare(), 1);
        let mut clients = make_clients(vec![
            DeviceProfile::trustzone(0),
            DeviceProfile::trustzone(1),
            DeviceProfile::trustzone(2),
            DeviceProfile::trustzone(3),
        ]);
        // k = 2, spare = 1 -> 3 sampled, sorted canonical order.
        let picked = server.select(&mut clients).unwrap();
        assert_eq!(picked.len(), 3);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn selection_fails_without_tee_clients() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut clients = make_clients(vec![DeviceProfile::legacy(0)]);
        assert!(matches!(
            server.select(&mut clients),
            Err(FlError::NoEligibleClients { .. })
        ));
    }

    #[test]
    fn full_round_advances_history() {
        let model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 100).unwrap();
        let mut server = FlServer::new(plan(), model.weights(), measurement()).unwrap();
        let mut clients = make_clients(vec![
            DeviceProfile::trustzone(0),
            DeviceProfile::trustzone(1),
        ]);
        let picked = server.select(&mut clients).unwrap();
        let download = server.download(vec![]);
        let updates: Vec<_> = picked
            .into_iter()
            .map(|i| clients[i].train(&download).unwrap())
            .collect();
        server.aggregate(&updates).unwrap();
        assert_eq!(server.round(), 1);
        assert_eq!(server.history().len(), 2);
        // The global model moved.
        assert_ne!(server.global(), server.history().snapshot(0).unwrap());
    }

    #[test]
    fn invalid_plan_rejected() {
        let model = zoo::tiny_mlp(4, 4, 2, 1).unwrap();
        let bad = TrainingPlan {
            rounds: 0,
            ..plan()
        };
        assert!(FlServer::new(bad, model.weights(), measurement()).is_err());
    }
}
