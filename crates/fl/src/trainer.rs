//! Pluggable local-training strategies.
//!
//! The FL client delegates its per-cycle training loop to a
//! [`LocalTrainer`]. The plain strategy here trains entirely in the
//! normal world; the GradSec secure trainer (in `gradsec-core`) implements
//! the same trait but partitions layers across the TrustZone worlds.

use gradsec_data::{batch_of, Dataset};
use gradsec_nn::optim::Sgd;
use gradsec_nn::Sequential;
use gradsec_tee::cost::{ClientCycleCost, TimeBreakdown, WireBill};

use crate::Result;

/// Statistics of one local training cycle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CycleStats {
    /// Mean training loss over the cycle's batches.
    pub mean_loss: f32,
    /// Batches processed.
    pub batches: usize,
    /// Samples processed.
    pub samples: usize,
    /// Simulated time breakdown (all-zero for the plain trainer — only the
    /// enclave-partitioned trainer charges the cost model).
    pub time: TimeBreakdown,
    /// Peak TEE memory in bytes (0 for the plain trainer).
    pub tee_peak_bytes: usize,
    /// Secure-monitor crossings taken during the cycle (0 for the plain
    /// trainer) — feeds the round ledger's per-client accounting.
    pub crossings: u64,
}

impl CycleStats {
    /// The ledger entry for this cycle, attributed to `client_id`. This is
    /// what an [`UpdateUpload`](crate::message::UpdateUpload) carries over
    /// the wire so remote clients stay accountable.
    pub fn cost(&self, client_id: u64) -> ClientCycleCost {
        ClientCycleCost {
            client_id,
            time: self.time,
            crossings: self.crossings,
            tee_peak_bytes: self.tee_peak_bytes,
            // The wire bill is filled in server-side: only the endpoint
            // that framed the payloads knows the observed byte counts.
            wire: WireBill::default(),
        }
    }
}

/// A strategy that trains a model for one FL cycle on a client.
pub trait LocalTrainer: Send {
    /// Trains `model` in place over the given batches.
    ///
    /// `protected_layers` carries the server's GradSec configuration for
    /// this cycle; the plain trainer ignores it (and thereby *leaks* all
    /// gradients — it is the unprotected baseline).
    ///
    /// # Errors
    ///
    /// Propagates model/TEE failures.
    fn train_cycle(
        &mut self,
        model: &mut Sequential,
        dataset: &dyn Dataset,
        batches: &[Vec<usize>],
        learning_rate: f32,
        protected_layers: &[usize],
    ) -> Result<CycleStats>;
}

/// The unprotected baseline trainer: plain SGD in the normal world.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainSgdTrainer;

impl LocalTrainer for PlainSgdTrainer {
    fn train_cycle(
        &mut self,
        model: &mut Sequential,
        dataset: &dyn Dataset,
        batches: &[Vec<usize>],
        learning_rate: f32,
        _protected_layers: &[usize],
    ) -> Result<CycleStats> {
        let mut opt = Sgd::new(learning_rate);
        let mut loss_sum = 0.0f32;
        let mut samples = 0usize;
        for idx in batches {
            let (x, y) = batch_of(dataset, idx);
            let stats = model.train_batch(&x, &y, &mut opt)?;
            loss_sum += stats.loss;
            samples += idx.len();
        }
        Ok(CycleStats {
            mean_loss: if batches.is_empty() {
                0.0
            } else {
                loss_sum / batches.len() as f32
            },
            batches: batches.len(),
            samples,
            time: TimeBreakdown::default(),
            tee_peak_bytes: 0,
            crossings: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;

    #[test]
    fn plain_trainer_reduces_loss() {
        let ds = SyntheticCifar100::with_classes(64, 2, 5);
        let mut model = zoo::tiny_mlp(3 * 32 * 32, 16, 2, 1).unwrap();
        let batches: Vec<Vec<usize>> = (0..8).map(|b| (b * 8..(b + 1) * 8).collect()).collect();
        let mut t = PlainSgdTrainer;
        let first = t.train_cycle(&mut model, &ds, &batches, 0.05, &[]).unwrap();
        let mut last = first;
        for _ in 0..10 {
            last = t.train_cycle(&mut model, &ds, &batches, 0.05, &[]).unwrap();
        }
        assert!(last.mean_loss < first.mean_loss, "{last:?} vs {first:?}");
        assert_eq!(last.batches, 8);
        assert_eq!(last.samples, 64);
        assert_eq!(last.tee_peak_bytes, 0);
    }

    #[test]
    fn empty_cycle_is_a_noop() {
        let ds = SyntheticCifar100::with_classes(8, 2, 5);
        let mut model = zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap();
        let before = model.weights();
        let stats = PlainSgdTrainer
            .train_cycle(&mut model, &ds, &[], 0.05, &[])
            .unwrap();
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.mean_loss, 0.0);
        let after = model.weights();
        assert_eq!(before, after);
    }
}
