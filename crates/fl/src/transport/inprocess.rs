//! In-process transports.
//!
//! Two flavours, both moving [`Envelope`]s without copying their payload
//! bytes *in flight* (the envelope is moved, never re-buffered between
//! endpoints). Encoding/decoding still happens once per side — that is
//! the point of the seam: every transport carries the identical protocol
//! bytes, so the trusted I/O path can seal them and a TCP deployment is
//! bit-identical. The `transport_overhead` bench tracks what that codec
//! pass costs relative to the training compute it rides with.
//!
//! * [`LocalEndpoint`] — synchronous dispatch: the server's `exchange`
//!   *is* the client's request handling, on the calling thread. This is
//!   the default federation transport; the execution engine's worker pool
//!   fans `exchange` calls out exactly as it used to fan direct
//!   `run_cycle` calls, so determinism and parallel speedup carry over
//!   bit-for-bit.
//! * [`channel_pair`] — a duplex built from two `std::sync::mpsc`
//!   channels, for running [`ClientSession`](super::ClientSession) serve
//!   loops on their own threads inside one process (the closest in-process
//!   analogue of the TCP deployment).

use std::sync::mpsc::{channel, Receiver, Sender};

use crate::client::FlClient;
use crate::message::Envelope;
use crate::transport::{ClientEndpoint, ClientHandler, ServerEndpoint};
use crate::{FlError, Result};

/// A synchronous, zero-copy in-process endpoint: requests are dispatched
/// to the wrapped client's [`ClientHandler`] on the calling thread.
pub struct LocalEndpoint {
    handler: ClientHandler,
}

impl LocalEndpoint {
    /// Wraps a client for direct dispatch.
    pub fn new(client: FlClient) -> Self {
        LocalEndpoint {
            handler: ClientHandler::new(client),
        }
    }

    /// The wrapped client.
    pub fn client(&self) -> &FlClient {
        self.handler.client()
    }

    /// Mutable access to the wrapped client.
    pub fn client_mut(&mut self) -> &mut FlClient {
        self.handler.client_mut()
    }
}

impl std::fmt::Debug for LocalEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalEndpoint")
            .field("client", &self.handler.client().id())
            .finish()
    }
}

impl ServerEndpoint for LocalEndpoint {
    fn exchange(&mut self, request: Envelope) -> Result<Envelope> {
        self.handler.handle(request).ok_or_else(|| {
            FlError::disconnected("exchanging with an in-process client that said goodbye")
        })
    }

    fn notify(&mut self, message: Envelope) -> Result<()> {
        // Goodbye (and any other fire-and-forget message) is absorbed by
        // the handler; a reply, if produced, has nobody waiting for it.
        let _ = self.handler.handle(message);
        Ok(())
    }

    fn descriptor(&self) -> String {
        format!("in-process:client-{}", self.handler.client().id())
    }
}

/// The server half of a channel-backed in-process duplex.
#[derive(Debug)]
pub struct ChannelServerEndpoint {
    tx: Sender<Envelope>,
    rx: Receiver<Envelope>,
}

/// The client half of a channel-backed in-process duplex.
#[derive(Debug)]
pub struct ChannelClientEndpoint {
    tx: Sender<Envelope>,
    rx: Receiver<Envelope>,
}

/// Builds a connected (server, client) endpoint pair over two unbounded
/// channels. Envelopes are moved through the channels — payload bytes are
/// never copied in flight.
pub fn channel_pair() -> (ChannelServerEndpoint, ChannelClientEndpoint) {
    let (to_client, from_server) = channel();
    let (to_server, from_client) = channel();
    (
        ChannelServerEndpoint {
            tx: to_client,
            rx: from_client,
        },
        ChannelClientEndpoint {
            tx: to_server,
            rx: from_server,
        },
    )
}

impl ServerEndpoint for ChannelServerEndpoint {
    fn exchange(&mut self, request: Envelope) -> Result<Envelope> {
        self.tx
            .send(request)
            .map_err(|_| FlError::disconnected("sending request to in-process channel"))?;
        self.rx
            .recv()
            .map_err(|_| FlError::disconnected("awaiting reply from in-process channel"))
    }

    fn notify(&mut self, message: Envelope) -> Result<()> {
        self.tx
            .send(message)
            .map_err(|_| FlError::disconnected("notifying in-process channel"))
    }

    fn descriptor(&self) -> String {
        "in-process:channel".to_owned()
    }
}

impl ClientEndpoint for ChannelClientEndpoint {
    fn recv(&mut self) -> Result<Envelope> {
        self.rx
            .recv()
            .map_err(|_| FlError::disconnected("awaiting request from in-process channel"))
    }

    fn send(&mut self, reply: Envelope) -> Result<()> {
        self.tx
            .send(reply)
            .map_err(|_| FlError::disconnected("sending reply to in-process channel"))
    }

    fn descriptor(&self) -> String {
        "in-process:channel".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DeviceProfile;
    use crate::message::{Hello, HelloAck, MessageKind};
    use crate::trainer::PlainSgdTrainer;
    use crate::transport::{ClientSession, RemoteClient};
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use std::sync::Arc;

    fn fl_client(id: u64) -> FlClient {
        let ds = Arc::new(SyntheticCifar100::with_classes(16, 2, 1));
        FlClient::new(
            id,
            DeviceProfile::trustzone(id),
            ds,
            (0..16).collect(),
            zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap(),
            Box::new(PlainSgdTrainer),
        )
    }

    #[test]
    fn channel_pair_serves_a_session_on_a_thread() {
        let (server_ep, client_ep) = channel_pair();
        let session = ClientSession::new(fl_client(3), client_ep);
        let handle = std::thread::spawn(move || session.serve());
        let mut remote = RemoteClient::connect(Box::new(server_ep)).unwrap();
        assert_eq!(remote.id(), 3);
        remote.goodbye().unwrap();
        let client = handle.join().unwrap().unwrap();
        assert_eq!(client.id(), 3);
    }

    #[test]
    fn hung_up_channel_is_a_transport_error_with_io_source() {
        let (mut server_ep, client_ep) = channel_pair();
        drop(client_ep);
        let err = server_ep
            .exchange(Envelope::pack(MessageKind::Hello, &Hello::current()))
            .unwrap_err();
        match &err {
            FlError::Transport { source, .. } => {
                assert_eq!(source.kind(), std::io::ErrorKind::BrokenPipe);
            }
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn local_endpoint_answers_hello_inline() {
        let mut ep = LocalEndpoint::new(fl_client(9));
        let reply = ep
            .exchange(Envelope::pack(MessageKind::Hello, &Hello::current()))
            .unwrap();
        let ack: HelloAck = reply.open(MessageKind::HelloAck).unwrap();
        assert_eq!(ack.client_id, 9);
    }
}
