//! Pluggable transports for the federation round exchange.
//!
//! The paper's protocol (Figure 2 ➊–➍) is a strict request/response
//! pattern: the server initiates every exchange, the client answers. This
//! module lifts that pattern onto a narrow byte-level seam so one protocol
//! implementation serves every deployment scenario:
//!
//! * [`ServerEndpoint`] — the server's handle to one client: send an
//!   [`Envelope`], block for the reply envelope.
//! * [`ClientEndpoint`] — the client's side: block for the next request,
//!   send the reply.
//!
//! Four backends implement the seam:
//!
//! * [`inprocess::LocalEndpoint`] — in-process dispatch, zero-copy in
//!   flight (the envelope is moved between endpoints, never re-buffered;
//!   each side pays the codec once, as on every transport); the default,
//!   and bit-identical to the pre-transport direct-call federation.
//! * [`inprocess::channel_pair`] — a channel-backed duplex for client
//!   service threads inside one process.
//! * [`tcp`] — the same envelopes over real sockets, the envelope header
//!   doubling as the length-prefixed frame; one blocking service thread
//!   per client session.
//! * [`mux`] — the same sockets, but client sessions multiplexed onto a
//!   small fixed pool of event-loop threads via nonblocking readiness
//!   polling ([`poller`]) — the fan-in shape for tens of thousands of
//!   sessions on one host.
//!
//! [`sealed`] wraps any of the three in the trusted I/O path
//! (`gradsec-tee::tiop`), sealing exactly the bytes that cross the wire.
//!
//! Above the byte seam sit the two protocol roles: [`RemoteClient`] (the
//! server's typed view of a client behind any endpoint, beginning with the
//! [`Hello`]/[`HelloAck`] version handshake) and [`ClientHandler`] /
//! [`ClientSession`] (the client-side request dispatcher and its serve
//! loop).

pub mod inprocess;
pub mod mux;
pub mod poller;
pub mod sealed;
pub mod tcp;

use gradsec_tee::attestation::Challenge;

use crate::client::{DeviceProfile, FlClient};
use crate::message::{
    negotiate_version, AttestationRequest, AttestationResponse, Envelope, Hello, HelloAck,
    MessageKind, ModelDownload, UpdateUpload, Wire, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use crate::{FlError, Result};

/// The server's byte-level handle to one client.
///
/// Implementations deliver a request envelope and block until the
/// client's reply envelope arrives (the protocol is strictly
/// request/response, so no reordering can occur within one endpoint).
pub trait ServerEndpoint: Send {
    /// Sends `request` and blocks for the reply.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the underlying pipe fails and
    /// [`FlError::Protocol`] on framing violations.
    fn exchange(&mut self, request: Envelope) -> Result<Envelope>;

    /// Sends `message` without waiting for a reply (session teardown).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the underlying pipe fails.
    fn notify(&mut self, message: Envelope) -> Result<()>;

    /// A human-readable description of the peer ("in-process",
    /// "tcp:127.0.0.1:40812", …) for error context.
    fn descriptor(&self) -> String;
}

/// The client's byte-level side of the exchange.
pub trait ClientEndpoint: Send {
    /// Blocks for the next request envelope.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the underlying pipe fails and
    /// [`FlError::Protocol`] on framing violations.
    fn recv(&mut self) -> Result<Envelope>;

    /// Sends a reply envelope.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the underlying pipe fails.
    fn send(&mut self, reply: Envelope) -> Result<()>;

    /// A human-readable description of the peer, for error context.
    fn descriptor(&self) -> String;
}

impl ServerEndpoint for Box<dyn ServerEndpoint> {
    fn exchange(&mut self, request: Envelope) -> Result<Envelope> {
        (**self).exchange(request)
    }

    fn notify(&mut self, message: Envelope) -> Result<()> {
        (**self).notify(message)
    }

    fn descriptor(&self) -> String {
        (**self).descriptor()
    }
}

/// The client-side protocol logic, independent of any transport: decodes
/// request envelopes, drives the wrapped [`FlClient`], encodes replies.
///
/// Failures never tear the session down silently — they are reported back
/// to the server as [`MessageKind::Error`] envelopes, so the server's
/// round logic can decide what a failed client costs.
pub struct ClientHandler {
    client: FlClient,
    negotiated: Option<u16>,
}

impl std::fmt::Debug for ClientHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientHandler")
            .field("client", &self.client.id())
            .field("negotiated", &self.negotiated)
            .finish()
    }
}

impl ClientHandler {
    /// Wraps a client.
    pub fn new(client: FlClient) -> Self {
        ClientHandler {
            client,
            negotiated: None,
        }
    }

    /// The wrapped client.
    pub fn client(&self) -> &FlClient {
        &self.client
    }

    /// Mutable access to the wrapped client (tests inject failures here).
    pub fn client_mut(&mut self) -> &mut FlClient {
        &mut self.client
    }

    /// Unwraps the client.
    pub fn into_client(self) -> FlClient {
        self.client
    }

    /// The protocol version agreed during the handshake, if one happened.
    pub fn negotiated_version(&self) -> Option<u16> {
        self.negotiated
    }

    /// Handles one request, returning the reply — or `None` for
    /// [`MessageKind::Goodbye`], which ends the session without a reply.
    ///
    /// Replies are stamped with the session's negotiated version once a
    /// handshake has happened, so both directions keep speaking the
    /// agreed dialect.
    pub fn handle(&mut self, request: Envelope) -> Option<Envelope> {
        if request.kind == MessageKind::Goodbye {
            return None;
        }
        let mut reply = self.reply_to(request);
        if let Some(version) = self.negotiated {
            reply.version = version;
        }
        Some(reply)
    }

    fn reply_to(&mut self, request: Envelope) -> Envelope {
        // The handshake is the one exchange allowed to carry a version we
        // don't speak — that's what it exists to discover.
        if request.kind == MessageKind::Hello {
            return self.handle_hello(&request);
        }
        if !request.version_supported() {
            return Envelope::error(format!(
                "unsupported protocol version {} (this build speaks {}..={})",
                request.version, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION
            ));
        }
        match request.kind {
            MessageKind::AttestationRequest => {
                match request.open::<AttestationRequest>(MessageKind::AttestationRequest) {
                    Ok(req) => Envelope::pack(
                        MessageKind::AttestationResponse,
                        &self.client.attest(&req.challenge),
                    ),
                    Err(e) => Envelope::error(format!("malformed attestation request: {e}")),
                }
            }
            MessageKind::ModelDownload => {
                match request.open::<ModelDownload>(MessageKind::ModelDownload) {
                    Ok(download) => match self.client.run_cycle(&download) {
                        Ok(upload) => Envelope::pack(MessageKind::UpdateUpload, &upload),
                        Err(e) => Envelope::error(format!("training cycle failed: {e}")),
                    },
                    Err(e) => Envelope::error(format!("malformed model download: {e}")),
                }
            }
            other => Envelope::error(format!("unexpected request kind {other:?}")),
        }
    }

    fn handle_hello(&mut self, request: &Envelope) -> Envelope {
        let hello = match request.open::<Hello>(MessageKind::Hello) {
            Ok(h) => h,
            Err(e) => return Envelope::error(format!("malformed hello: {e}")),
        };
        match negotiate_version(hello.min_version, hello.max_version) {
            Some(version) => {
                self.negotiated = Some(version);
                Envelope::pack(
                    MessageKind::HelloAck,
                    &HelloAck {
                        version,
                        client_id: self.client.id(),
                    },
                )
            }
            None => Envelope::error(format!(
                "no common protocol version: peer speaks {}..={}, this build {}..={}",
                hello.min_version, hello.max_version, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION
            )),
        }
    }
}

/// A [`ClientHandler`] bound to a [`ClientEndpoint`]: the serve loop a
/// client device runs (typically on its own thread or process).
pub struct ClientSession<E: ClientEndpoint> {
    handler: ClientHandler,
    endpoint: E,
}

impl<E: ClientEndpoint> ClientSession<E> {
    /// Binds a client to its endpoint.
    pub fn new(client: FlClient, endpoint: E) -> Self {
        ClientSession {
            handler: ClientHandler::new(client),
            endpoint,
        }
    }

    /// Serves requests until the server says goodbye, returning the client
    /// (with its trained model and last-cycle stats) to the caller.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the pipe breaks mid-session.
    pub fn serve(mut self) -> Result<FlClient> {
        loop {
            let request = self.endpoint.recv()?;
            match self.handler.handle(request) {
                Some(reply) => self.endpoint.send(reply)?,
                None => return Ok(self.handler.into_client()),
            }
        }
    }
}

/// The server's typed view of one client behind a [`ServerEndpoint`].
///
/// Construction performs the protocol handshake: the server offers its
/// version range, the client picks one and identifies itself, and the
/// attestation key for that identity is looked up from the provisioning
/// registry ([`DeviceProfile::provisioned_key`]).
pub struct RemoteClient {
    id: u64,
    attestation_key: Vec<u8>,
    version: u16,
    endpoint: Box<dyn ServerEndpoint>,
}

impl std::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteClient")
            .field("id", &self.id)
            .field("version", &self.version)
            .field("endpoint", &self.endpoint.descriptor())
            .finish()
    }
}

impl RemoteClient {
    /// Handshakes with the client behind `endpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Protocol`] when no common version exists or the
    /// ack is malformed, and [`FlError::Transport`] on pipe failures.
    pub fn connect(mut endpoint: Box<dyn ServerEndpoint>) -> Result<Self> {
        let reply = endpoint.exchange(Envelope::pack(MessageKind::Hello, &Hello::current()))?;
        let ack: HelloAck = reply.open(MessageKind::HelloAck)?;
        if !(MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION).contains(&ack.version) {
            return Err(FlError::Protocol {
                reason: format!("client acked unsupported version {}", ack.version),
            });
        }
        Ok(RemoteClient {
            id: ack.client_id,
            attestation_key: DeviceProfile::provisioned_key(ack.client_id),
            version: ack.version,
            endpoint,
        })
    }

    /// The client's id (learned during the handshake).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The provisioned attestation key for this client's identity.
    pub fn attestation_key(&self) -> &[u8] {
        &self.attestation_key
    }

    /// The negotiated protocol version.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// The endpoint's peer description.
    pub fn descriptor(&self) -> String {
        self.endpoint.descriptor()
    }

    fn request<Req: Wire, Resp: Wire>(
        &mut self,
        kind: MessageKind,
        msg: &Req,
        expect: MessageKind,
    ) -> Result<Resp> {
        // Speak the *negotiated* version, not the build's newest: a peer
        // that acked an older version must keep seeing that version.
        let mut envelope = Envelope::pack(kind, msg);
        envelope.version = self.version;
        let reply = self.endpoint.exchange(envelope)?;
        if reply.kind == MessageKind::Error {
            return Err(FlError::ClientFailure {
                client: self.id,
                reason: reply.error_reason(),
            });
        }
        reply.open(expect)
    }

    /// Challenges the client for attestation evidence (Figure 2-➊).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures; a client-side failure surfaces as
    /// [`FlError::ClientFailure`].
    pub fn attest(&mut self, challenge: &Challenge) -> Result<AttestationResponse> {
        self.request(
            MessageKind::AttestationRequest,
            &AttestationRequest {
                challenge: *challenge,
            },
            MessageKind::AttestationResponse,
        )
    }

    /// Ships the global model and plan, blocking for the trained update
    /// (Figure 2-➋/➌/➍).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures; a failed training cycle surfaces as
    /// [`FlError::ClientFailure`].
    pub fn train(&mut self, download: &ModelDownload) -> Result<UpdateUpload> {
        self.request(
            MessageKind::ModelDownload,
            download,
            MessageKind::UpdateUpload,
        )
    }

    /// Ends the session (best effort — the client does not reply).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the pipe already broke.
    pub fn goodbye(&mut self) -> Result<()> {
        self.endpoint
            .notify(Envelope::control(MessageKind::Goodbye))
    }
}

#[cfg(test)]
mod tests {
    use super::inprocess::LocalEndpoint;
    use super::*;
    use crate::trainer::PlainSgdTrainer;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use std::sync::Arc;

    fn fl_client(id: u64) -> FlClient {
        let ds = Arc::new(SyntheticCifar100::with_classes(16, 2, 1));
        FlClient::new(
            id,
            DeviceProfile::trustzone(id),
            ds,
            (0..16).collect(),
            zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap(),
            Box::new(PlainSgdTrainer),
        )
    }

    #[test]
    fn handshake_negotiates_current_version_and_identity() {
        let remote = RemoteClient::connect(Box::new(LocalEndpoint::new(fl_client(42)))).unwrap();
        assert_eq!(remote.id(), 42);
        assert_eq!(remote.protocol_version(), PROTOCOL_VERSION);
        assert_eq!(
            remote.attestation_key(),
            DeviceProfile::provisioned_key(42).as_slice()
        );
    }

    #[test]
    fn handler_rejects_disjoint_version_ranges() {
        let mut handler = ClientHandler::new(fl_client(1));
        let futuristic = Envelope::pack(
            MessageKind::Hello,
            &Hello {
                min_version: PROTOCOL_VERSION + 7,
                max_version: PROTOCOL_VERSION + 9,
            },
        );
        let reply = handler.handle(futuristic).expect("hello gets a reply");
        assert_eq!(reply.kind, MessageKind::Error);
        assert!(reply.error_reason().contains("no common protocol version"));
        assert_eq!(handler.negotiated_version(), None);
    }

    #[test]
    fn handler_rejects_unsupported_envelope_versions_after_handshake() {
        let mut handler = ClientHandler::new(fl_client(1));
        let mut req = Envelope::pack(
            MessageKind::AttestationRequest,
            &AttestationRequest {
                challenge: Challenge::new([0u8; 16]),
            },
        );
        req.version = 0;
        let reply = handler.handle(req).expect("a reply");
        assert_eq!(reply.kind, MessageKind::Error);
        assert!(reply
            .error_reason()
            .contains("unsupported protocol version"));
    }

    #[test]
    fn replies_carry_the_negotiated_version() {
        let mut handler = ClientHandler::new(fl_client(1));
        let ack = handler
            .handle(Envelope::pack(MessageKind::Hello, &Hello::current()))
            .expect("hello gets a reply");
        assert_eq!(ack.version, PROTOCOL_VERSION);
        assert_eq!(handler.negotiated_version(), Some(PROTOCOL_VERSION));
        // Post-handshake replies are stamped with the agreed version —
        // the dialect both sides keep speaking even when a newer build
        // talks to an older peer.
        let reply = handler
            .handle(Envelope::pack(
                MessageKind::AttestationRequest,
                &AttestationRequest {
                    challenge: Challenge::new([0u8; 16]),
                },
            ))
            .expect("a reply");
        assert_eq!(reply.kind, MessageKind::AttestationResponse);
        assert_eq!(reply.version, PROTOCOL_VERSION);
    }

    #[test]
    fn goodbye_ends_the_session_without_a_reply() {
        let mut handler = ClientHandler::new(fl_client(1));
        assert!(handler
            .handle(Envelope::control(MessageKind::Goodbye))
            .is_none());
    }

    #[test]
    fn unexpected_kinds_get_error_replies_not_panics() {
        let mut handler = ClientHandler::new(fl_client(1));
        let reply = handler
            .handle(Envelope::control(MessageKind::UpdateUpload))
            .expect("a reply");
        assert_eq!(reply.kind, MessageKind::Error);
    }
}
