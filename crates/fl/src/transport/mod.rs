//! Pluggable transports for the federation round exchange.
//!
//! The paper's protocol (Figure 2 ➊–➍) is a strict request/response
//! pattern: the server initiates every exchange, the client answers. This
//! module lifts that pattern onto a narrow byte-level seam so one protocol
//! implementation serves every deployment scenario:
//!
//! * [`ServerEndpoint`] — the server's handle to one client: send an
//!   [`Envelope`], block for the reply envelope.
//! * [`ClientEndpoint`] — the client's side: block for the next request,
//!   send the reply.
//!
//! Four backends implement the seam:
//!
//! * [`inprocess::LocalEndpoint`] — in-process dispatch, zero-copy in
//!   flight (the envelope is moved between endpoints, never re-buffered;
//!   each side pays the codec once, as on every transport); the default,
//!   and bit-identical to the pre-transport direct-call federation.
//! * [`inprocess::channel_pair`] — a channel-backed duplex for client
//!   service threads inside one process.
//! * [`tcp`] — the same envelopes over real sockets, the envelope header
//!   doubling as the length-prefixed frame; one blocking service thread
//!   per client session.
//! * [`mux`] — the same sockets, but client sessions multiplexed onto a
//!   small fixed pool of event-loop threads via nonblocking readiness
//!   polling ([`poller`]) — the fan-in shape for tens of thousands of
//!   sessions on one host.
//!
//! [`sealed`] wraps any of the three in the trusted I/O path
//! (`gradsec-tee::tiop`), sealing exactly the bytes that cross the wire.
//!
//! Above the byte seam sit the two protocol roles: [`RemoteClient`] (the
//! server's typed view of a client behind any endpoint, beginning with the
//! [`Hello`]/[`HelloAck`] version handshake) and [`ClientHandler`] /
//! [`ClientSession`] (the client-side request dispatcher and its serve
//! loop).

pub mod inprocess;
pub mod mux;
pub mod poller;
pub mod sealed;
pub mod tcp;

use gradsec_nn::model::ModelWeights;
use gradsec_tee::attestation::Challenge;
use gradsec_tee::cost::WireBill;

use crate::client::{DeviceProfile, FlClient};
use crate::codec::{decode_weights, dense_wire_bytes, encode_weights, CodecKind, BASE_MISMATCH};
use crate::message::{
    negotiate_version, AttestationRequest, AttestationResponse, EncodedModelDownload,
    EncodedUpdateUpload, Envelope, Hello, HelloAck, MessageKind, ModelDownload, UpdateUpload, Wire,
    MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use crate::{FlError, Result};

/// The first protocol version that speaks the encoded payload kinds.
const CODEC_VERSION: u16 = 4;

/// The server's byte-level handle to one client.
///
/// Implementations deliver a request envelope and block until the
/// client's reply envelope arrives (the protocol is strictly
/// request/response, so no reordering can occur within one endpoint).
pub trait ServerEndpoint: Send {
    /// Sends `request` and blocks for the reply.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the underlying pipe fails and
    /// [`FlError::Protocol`] on framing violations.
    fn exchange(&mut self, request: Envelope) -> Result<Envelope>;

    /// Sends `message` without waiting for a reply (session teardown).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the underlying pipe fails.
    fn notify(&mut self, message: Envelope) -> Result<()>;

    /// A human-readable description of the peer ("in-process",
    /// "tcp:127.0.0.1:40812", …) for error context.
    fn descriptor(&self) -> String;
}

/// The client's byte-level side of the exchange.
pub trait ClientEndpoint: Send {
    /// Blocks for the next request envelope.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the underlying pipe fails and
    /// [`FlError::Protocol`] on framing violations.
    fn recv(&mut self) -> Result<Envelope>;

    /// Sends a reply envelope.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the underlying pipe fails.
    fn send(&mut self, reply: Envelope) -> Result<()>;

    /// A human-readable description of the peer, for error context.
    fn descriptor(&self) -> String;
}

impl ServerEndpoint for Box<dyn ServerEndpoint> {
    fn exchange(&mut self, request: Envelope) -> Result<Envelope> {
        (**self).exchange(request)
    }

    fn notify(&mut self, message: Envelope) -> Result<()> {
        (**self).notify(message)
    }

    fn descriptor(&self) -> String {
        (**self).descriptor()
    }
}

/// The client-side protocol logic, independent of any transport: decodes
/// request envelopes, drives the wrapped [`FlClient`], encodes replies.
///
/// Failures never tear the session down silently — they are reported back
/// to the server as [`MessageKind::Error`] envelopes, so the server's
/// round logic can decide what a failed client costs.
pub struct ClientHandler {
    client: FlClient,
    negotiated: Option<u16>,
    /// The update codec the hello negotiated (None before a handshake;
    /// a pre-codec peer implies identity).
    codec: Option<CodecKind>,
    /// The delta codec's committed reference view: the last downloaded
    /// model this client both trained on and successfully replied to,
    /// keyed by the server's epoch stamp.
    view: Option<(u64, ModelWeights)>,
}

impl std::fmt::Debug for ClientHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientHandler")
            .field("client", &self.client.id())
            .field("negotiated", &self.negotiated)
            .field("codec", &self.codec)
            .finish()
    }
}

impl ClientHandler {
    /// Wraps a client.
    pub fn new(client: FlClient) -> Self {
        ClientHandler {
            client,
            negotiated: None,
            codec: None,
            view: None,
        }
    }

    /// The wrapped client.
    pub fn client(&self) -> &FlClient {
        &self.client
    }

    /// Mutable access to the wrapped client (tests inject failures here).
    pub fn client_mut(&mut self) -> &mut FlClient {
        &mut self.client
    }

    /// Unwraps the client.
    pub fn into_client(self) -> FlClient {
        self.client
    }

    /// The protocol version agreed during the handshake, if one happened.
    pub fn negotiated_version(&self) -> Option<u16> {
        self.negotiated
    }

    /// Handles one request, returning the reply — or `None` for
    /// [`MessageKind::Goodbye`], which ends the session without a reply.
    ///
    /// Replies are stamped with the session's negotiated version once a
    /// handshake has happened, so both directions keep speaking the
    /// agreed dialect.
    pub fn handle(&mut self, request: Envelope) -> Option<Envelope> {
        if request.kind == MessageKind::Goodbye {
            return None;
        }
        let mut reply = self.reply_to(request);
        if let Some(version) = self.negotiated {
            reply.version = version;
        }
        Some(reply)
    }

    fn reply_to(&mut self, request: Envelope) -> Envelope {
        // The handshake is the one exchange allowed to carry a version we
        // don't speak — that's what it exists to discover.
        if request.kind == MessageKind::Hello {
            return self.handle_hello(&request);
        }
        if !request.version_supported() {
            return Envelope::error(format!(
                "unsupported protocol version {} (this build speaks {}..={})",
                request.version, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION
            ));
        }
        match request.kind {
            MessageKind::AttestationRequest => {
                match request.open::<AttestationRequest>(MessageKind::AttestationRequest) {
                    Ok(req) => Envelope::pack(
                        MessageKind::AttestationResponse,
                        &self.client.attest(&req.challenge),
                    ),
                    Err(e) => Envelope::error(format!("malformed attestation request: {e}")),
                }
            }
            MessageKind::ModelDownload => {
                match request.open::<ModelDownload>(MessageKind::ModelDownload) {
                    Ok(download) => match self.client.run_cycle(&download) {
                        Ok(upload) => Envelope::pack(MessageKind::UpdateUpload, &upload),
                        Err(e) => Envelope::error(format!("training cycle failed: {e}")),
                    },
                    Err(e) => Envelope::error(format!("malformed model download: {e}")),
                }
            }
            MessageKind::EncodedModelDownload => {
                match request.open::<EncodedModelDownload>(MessageKind::EncodedModelDownload) {
                    Ok(download) => self.handle_encoded_download(download),
                    Err(e) => Envelope::error(format!("malformed encoded download: {e}")),
                }
            }
            other => Envelope::error(format!("unexpected request kind {other:?}")),
        }
    }

    /// The encoded-payload training exchange (protocol v4): decode the
    /// download through the session codec, train, and reply with the
    /// update encoded the same way. The reference view for delta rounds
    /// commits only on the success path, mirroring the server's commit
    /// rule, so a failed cycle leaves both sides on the old base.
    fn handle_encoded_download(&mut self, download: EncodedModelDownload) -> Envelope {
        let codec = self.codec.unwrap_or(download.weights.codec);
        let reference = match download.weights.base_epoch {
            Some(base) => match &self.view {
                Some((epoch, weights)) if *epoch == base => Some(weights),
                _ => {
                    return Envelope::error(format!(
                        "{BASE_MISMATCH}: server referenced epoch {base} but this \
                         client holds {:?}",
                        self.view.as_ref().map(|(e, _)| *e)
                    ))
                }
            },
            None => None,
        };
        let weights = match decode_weights(&download.weights, reference) {
            Ok(w) => w,
            Err(e) => return Envelope::error(format!("malformed encoded download: {e}")),
        };
        let epoch = download.weights.epoch;
        let plain = ModelDownload {
            round: download.round,
            weights,
            plan: download.plan,
            protected_layers: download.protected_layers,
        };
        match self.client.run_cycle(&plain) {
            Ok(upload) => {
                let encoded =
                    encode_weights(codec, epoch, &upload.weights, Some((epoch, &plain.weights)));
                if codec == CodecKind::DeltaTopK {
                    self.view = Some((epoch, plain.weights));
                }
                Envelope::pack(
                    MessageKind::EncodedUpdateUpload,
                    &EncodedUpdateUpload {
                        client_id: upload.client_id,
                        round: upload.round,
                        weights: encoded,
                        num_samples: upload.num_samples,
                        train_loss: upload.train_loss,
                        cost: upload.cost,
                    },
                )
            }
            Err(e) => Envelope::error(format!("training cycle failed: {e}")),
        }
    }

    fn handle_hello(&mut self, request: &Envelope) -> Envelope {
        let hello = match request.open::<Hello>(MessageKind::Hello) {
            Ok(h) => h,
            Err(e) => return Envelope::error(format!("malformed hello: {e}")),
        };
        match negotiate_version(hello.min_version, hello.max_version) {
            Some(version) => {
                // The codec byte is a v4 negotiation: an older dialect
                // keeps the identity semantics it always had.
                let codec = if version >= CODEC_VERSION {
                    hello.codec
                } else {
                    CodecKind::Identity
                };
                self.negotiated = Some(version);
                self.codec = Some(codec);
                Envelope::pack(
                    MessageKind::HelloAck,
                    &HelloAck {
                        version,
                        client_id: self.client.id(),
                        codec,
                    },
                )
            }
            None => Envelope::error(format!(
                "no common protocol version: peer speaks {}..={}, this build {}..={}",
                hello.min_version, hello.max_version, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION
            )),
        }
    }
}

/// A [`ClientHandler`] bound to a [`ClientEndpoint`]: the serve loop a
/// client device runs (typically on its own thread or process).
pub struct ClientSession<E: ClientEndpoint> {
    handler: ClientHandler,
    endpoint: E,
}

impl<E: ClientEndpoint> ClientSession<E> {
    /// Binds a client to its endpoint.
    pub fn new(client: FlClient, endpoint: E) -> Self {
        ClientSession {
            handler: ClientHandler::new(client),
            endpoint,
        }
    }

    /// Serves requests until the server says goodbye, returning the client
    /// (with its trained model and last-cycle stats) to the caller.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the pipe breaks mid-session.
    pub fn serve(mut self) -> Result<FlClient> {
        loop {
            let request = self.endpoint.recv()?;
            match self.handler.handle(request) {
                Some(reply) => self.endpoint.send(reply)?,
                None => return Ok(self.handler.into_client()),
            }
        }
    }
}

/// The server's typed view of one client behind a [`ServerEndpoint`].
///
/// Construction performs the protocol handshake: the server offers its
/// version range, the client picks one and identifies itself, and the
/// attestation key for that identity is looked up from the provisioning
/// registry ([`DeviceProfile::provisioned_key`]).
pub struct RemoteClient {
    id: u64,
    attestation_key: Vec<u8>,
    version: u16,
    codec: CodecKind,
    /// Epoch counter stamping each encoded download (one per train
    /// attempt, retries included, so the sequence is deterministic).
    epoch: u64,
    /// The delta codec's committed reference view: the last download
    /// this client demonstrably decoded and replied to.
    view: Option<(u64, ModelWeights)>,
    endpoint: Box<dyn ServerEndpoint>,
}

impl std::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteClient")
            .field("id", &self.id)
            .field("version", &self.version)
            .field("codec", &self.codec)
            .field("endpoint", &self.endpoint.descriptor())
            .finish()
    }
}

impl RemoteClient {
    /// Handshakes with the client behind `endpoint` at the identity
    /// codec (the bit-exact default).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Protocol`] when no common version exists or the
    /// ack is malformed, and [`FlError::Transport`] on pipe failures.
    pub fn connect(endpoint: Box<dyn ServerEndpoint>) -> Result<Self> {
        RemoteClient::connect_with(endpoint, CodecKind::Identity)
    }

    /// Handshakes with the client behind `endpoint`, proposing `codec`
    /// for the session's model payloads. A peer that negotiates a
    /// pre-codec protocol version falls back to identity.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Protocol`] when no common version exists or the
    /// ack is malformed, and [`FlError::Transport`] on pipe failures.
    pub fn connect_with(mut endpoint: Box<dyn ServerEndpoint>, codec: CodecKind) -> Result<Self> {
        let reply = endpoint.exchange(Envelope::pack(
            MessageKind::Hello,
            &Hello::with_codec(codec),
        ))?;
        let ack: HelloAck = reply.open(MessageKind::HelloAck)?;
        if !(MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION).contains(&ack.version) {
            return Err(FlError::Protocol {
                reason: format!("client acked unsupported version {}", ack.version),
            });
        }
        let codec = if ack.version >= CODEC_VERSION {
            ack.codec
        } else {
            CodecKind::Identity
        };
        Ok(RemoteClient {
            id: ack.client_id,
            attestation_key: DeviceProfile::provisioned_key(ack.client_id),
            version: ack.version,
            codec,
            epoch: 0,
            view: None,
            endpoint,
        })
    }

    /// The update codec this session negotiated.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// The client's id (learned during the handshake).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The provisioned attestation key for this client's identity.
    pub fn attestation_key(&self) -> &[u8] {
        &self.attestation_key
    }

    /// The negotiated protocol version.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// The endpoint's peer description.
    pub fn descriptor(&self) -> String {
        self.endpoint.descriptor()
    }

    fn request<Req: Wire, Resp: Wire>(
        &mut self,
        kind: MessageKind,
        msg: &Req,
        expect: MessageKind,
    ) -> Result<Resp> {
        // Speak the *negotiated* version, not the build's newest: a peer
        // that acked an older version must keep seeing that version.
        let mut envelope = Envelope::pack(kind, msg);
        envelope.version = self.version;
        let reply = self.endpoint.exchange(envelope)?;
        if reply.kind == MessageKind::Error {
            return Err(FlError::ClientFailure {
                client: self.id,
                reason: reply.error_reason(),
            });
        }
        reply.open(expect)
    }

    /// Challenges the client for attestation evidence (Figure 2-➊).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures; a client-side failure surfaces as
    /// [`FlError::ClientFailure`].
    pub fn attest(&mut self, challenge: &Challenge) -> Result<AttestationResponse> {
        self.request(
            MessageKind::AttestationRequest,
            &AttestationRequest {
                challenge: *challenge,
            },
            MessageKind::AttestationResponse,
        )
    }

    /// Ships the global model and plan, blocking for the trained update
    /// (Figure 2-➋/➌/➍).
    ///
    /// At protocol v4 both directions travel as encoded codec payloads
    /// (identity included, so every session is billed uniformly); the
    /// decoded update plus its wire-bytes bill come back as the familiar
    /// [`UpdateUpload`] — the single chokepoint every execution path
    /// (flat, sharded, distributed) funnels through.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures; a failed training cycle surfaces as
    /// [`FlError::ClientFailure`].
    pub fn train(&mut self, download: &ModelDownload) -> Result<UpdateUpload> {
        if self.version < CODEC_VERSION {
            return self.request(
                MessageKind::ModelDownload,
                download,
                MessageKind::UpdateUpload,
            );
        }
        match self.train_encoded(download) {
            Err(FlError::ClientFailure { reason, .. }) if reason.contains(BASE_MISMATCH) => {
                // The client lost the reference view this delta was coded
                // against (e.g. its previous reply never arrived, so only
                // one side committed). Drop ours and re-send dense, once.
                self.view = None;
                self.train_encoded(download)
            }
            other => other,
        }
    }

    fn train_encoded(&mut self, download: &ModelDownload) -> Result<UpdateUpload> {
        let epoch = self.epoch;
        self.epoch += 1;
        let reference = self.view.as_ref().map(|(e, w)| (*e, w));
        let encoded = encode_weights(self.codec, epoch, &download.weights, reference);
        // The client trains on the *decoded* model, so for delta commits
        // the server must mirror that decode (lossy codecs make it differ
        // from `download.weights`). Only the delta codec needs the mirror.
        let view_next = if self.codec == CodecKind::DeltaTopK {
            Some(decode_weights(
                &encoded,
                self.view.as_ref().map(|(_, w)| w),
            )?)
        } else {
            None
        };
        // The raw column is the dense payload size; Identity's body IS
        // that payload bit-for-bit (its codec envelope is constant
        // per-message overhead, not payload), so it bills the two
        // columns equal and reports a ratio of exactly 1.
        let download_raw = dense_wire_bytes(&download.weights);
        let wire = WireBill {
            download_encoded_bytes: if self.codec == CodecKind::Identity {
                download_raw
            } else {
                encoded.wire_bytes()
            },
            download_raw_bytes: download_raw,
            ..WireBill::default()
        };
        let request = EncodedModelDownload {
            round: download.round,
            weights: encoded,
            plan: download.plan,
            protected_layers: download.protected_layers.clone(),
        };
        let reply: EncodedUpdateUpload = self.request(
            MessageKind::EncodedModelDownload,
            &request,
            MessageKind::EncodedUpdateUpload,
        )?;
        if reply.weights.base_epoch.is_some_and(|base| base != epoch) {
            return Err(FlError::Protocol {
                reason: format!(
                    "client {} coded its update against epoch {:?}, expected {epoch}",
                    self.id, reply.weights.base_epoch
                ),
            });
        }
        let upload_reference = view_next.as_ref();
        let weights = decode_weights(&reply.weights, upload_reference)?;
        let upload_raw = dense_wire_bytes(&weights);
        let wire = WireBill {
            upload_encoded_bytes: if self.codec == CodecKind::Identity {
                upload_raw
            } else {
                reply.weights.wire_bytes()
            },
            upload_raw_bytes: upload_raw,
            ..wire
        };
        // Commit the reference only after a decodable reply: the client
        // commits on its success path, so the views advance in lockstep
        // (a dropped or garbled reply leaves both sides on the old base,
        // and a half-committed pair recovers via the mismatch retry).
        if let Some(view) = view_next {
            self.view = Some((epoch, view));
        }
        let mut cost = reply.cost;
        cost.wire = wire;
        Ok(UpdateUpload {
            client_id: reply.client_id,
            round: reply.round,
            weights,
            num_samples: reply.num_samples,
            train_loss: reply.train_loss,
            cost,
        })
    }

    /// Ends the session (best effort — the client does not reply).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the pipe already broke.
    pub fn goodbye(&mut self) -> Result<()> {
        self.endpoint
            .notify(Envelope::control(MessageKind::Goodbye))
    }
}

#[cfg(test)]
mod tests {
    use super::inprocess::LocalEndpoint;
    use super::*;
    use crate::trainer::PlainSgdTrainer;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use std::sync::Arc;

    fn fl_client(id: u64) -> FlClient {
        let ds = Arc::new(SyntheticCifar100::with_classes(16, 2, 1));
        FlClient::new(
            id,
            DeviceProfile::trustzone(id),
            ds,
            (0..16).collect(),
            zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap(),
            Box::new(PlainSgdTrainer),
        )
    }

    #[test]
    fn handshake_negotiates_current_version_and_identity() {
        let remote = RemoteClient::connect(Box::new(LocalEndpoint::new(fl_client(42)))).unwrap();
        assert_eq!(remote.id(), 42);
        assert_eq!(remote.protocol_version(), PROTOCOL_VERSION);
        assert_eq!(
            remote.attestation_key(),
            DeviceProfile::provisioned_key(42).as_slice()
        );
    }

    #[test]
    fn handler_rejects_disjoint_version_ranges() {
        let mut handler = ClientHandler::new(fl_client(1));
        let futuristic = Envelope::pack(
            MessageKind::Hello,
            &Hello {
                min_version: PROTOCOL_VERSION + 7,
                max_version: PROTOCOL_VERSION + 9,
                codec: CodecKind::Identity,
            },
        );
        let reply = handler.handle(futuristic).expect("hello gets a reply");
        assert_eq!(reply.kind, MessageKind::Error);
        assert!(reply.error_reason().contains("no common protocol version"));
        assert_eq!(handler.negotiated_version(), None);
    }

    #[test]
    fn handler_rejects_unsupported_envelope_versions_after_handshake() {
        let mut handler = ClientHandler::new(fl_client(1));
        let mut req = Envelope::pack(
            MessageKind::AttestationRequest,
            &AttestationRequest {
                challenge: Challenge::new([0u8; 16]),
            },
        );
        req.version = 0;
        let reply = handler.handle(req).expect("a reply");
        assert_eq!(reply.kind, MessageKind::Error);
        assert!(reply
            .error_reason()
            .contains("unsupported protocol version"));
    }

    #[test]
    fn replies_carry_the_negotiated_version() {
        let mut handler = ClientHandler::new(fl_client(1));
        let ack = handler
            .handle(Envelope::pack(MessageKind::Hello, &Hello::current()))
            .expect("hello gets a reply");
        assert_eq!(ack.version, PROTOCOL_VERSION);
        assert_eq!(handler.negotiated_version(), Some(PROTOCOL_VERSION));
        // Post-handshake replies are stamped with the agreed version —
        // the dialect both sides keep speaking even when a newer build
        // talks to an older peer.
        let reply = handler
            .handle(Envelope::pack(
                MessageKind::AttestationRequest,
                &AttestationRequest {
                    challenge: Challenge::new([0u8; 16]),
                },
            ))
            .expect("a reply");
        assert_eq!(reply.kind, MessageKind::AttestationResponse);
        assert_eq!(reply.version, PROTOCOL_VERSION);
    }

    #[test]
    fn handshake_negotiates_the_proposed_codec() {
        let remote = RemoteClient::connect_with(
            Box::new(LocalEndpoint::new(fl_client(3))),
            CodecKind::DeltaTopK,
        )
        .unwrap();
        assert_eq!(remote.codec(), CodecKind::DeltaTopK);
        let identity = RemoteClient::connect(Box::new(LocalEndpoint::new(fl_client(4)))).unwrap();
        assert_eq!(identity.codec(), CodecKind::Identity);
    }

    #[test]
    fn encoded_train_matches_plain_train_bit_for_bit() {
        use crate::config::TrainingPlan;
        // The same client trained through the v4 encoded identity path
        // and the legacy plain path must produce identical updates —
        // that is the refactor's bit-identity contract.
        let download = ModelDownload {
            round: 0,
            weights: zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap().weights(),
            plan: TrainingPlan {
                batches_per_cycle: 2,
                batch_size: 4,
                ..TrainingPlan::default()
            },
            protected_layers: vec![],
        };
        let mut encoded_path =
            RemoteClient::connect(Box::new(LocalEndpoint::new(fl_client(7)))).unwrap();
        assert!(encoded_path.protocol_version() >= CODEC_VERSION);
        let via_codec = encoded_path.train(&download).unwrap();
        assert!(via_codec.cost.wire.download_encoded_bytes > 0);
        assert_eq!(
            via_codec.cost.wire.download_encoded_bytes, via_codec.cost.wire.download_raw_bytes,
            "identity bills encoded == raw"
        );
        // Same client, same data, forced through the legacy kind.
        let mut handler = ClientHandler::new(fl_client(7));
        let reply = handler
            .handle(Envelope::pack(MessageKind::ModelDownload, &download))
            .expect("a reply");
        let legacy: UpdateUpload = reply.open(MessageKind::UpdateUpload).unwrap();
        assert_eq!(via_codec.weights, legacy.weights);
        assert_eq!(via_codec.train_loss, legacy.train_loss);
    }

    #[test]
    fn delta_sessions_recover_from_a_lost_reference_view() {
        use crate::config::TrainingPlan;
        let download = ModelDownload {
            round: 0,
            weights: zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap().weights(),
            plan: TrainingPlan {
                batches_per_cycle: 1,
                batch_size: 4,
                ..TrainingPlan::default()
            },
            protected_layers: vec![],
        };
        let mut remote = RemoteClient::connect_with(
            Box::new(LocalEndpoint::new(fl_client(9))),
            CodecKind::DeltaTopK,
        )
        .unwrap();
        remote.train(&download).unwrap();
        // Simulate one-sided state loss: the server thinks epoch 0 is
        // committed but pretends a newer epoch exists.
        remote.view = Some((99, download.weights.clone()));
        // The client rejects the unknown base, the server retries dense,
        // and the exchange still completes.
        let upload = remote.train(&download).unwrap();
        assert!(upload.cost.wire.upload_encoded_bytes > 0);
        // The session is re-synchronised afterwards: a further delta
        // round works without retry.
        remote.train(&download).unwrap();
    }

    #[test]
    fn goodbye_ends_the_session_without_a_reply() {
        let mut handler = ClientHandler::new(fl_client(1));
        assert!(handler
            .handle(Envelope::control(MessageKind::Goodbye))
            .is_none());
    }

    #[test]
    fn unexpected_kinds_get_error_replies_not_panics() {
        let mut handler = ClientHandler::new(fl_client(1));
        let reply = handler
            .handle(Envelope::control(MessageKind::UpdateUpload))
            .expect("a reply");
        assert_eq!(reply.kind, MessageKind::Error);
    }
}
