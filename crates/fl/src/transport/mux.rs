//! Multiplexed TCP transport: a fixed pool of event-loop threads driving
//! tens of thousands of client sessions over nonblocking sockets.
//!
//! The threaded TCP transport spawns one service thread per client, which
//! stalls socket-backed fleets around the OS thread limit long before the
//! sharded engine saturates. This module replaces the *client side* of
//! that wiring: [`MuxFleet`] spawns `loops` event-loop threads (one per
//! core by default), each owning its share of the fleet as nonblocking
//! sockets registered with a [`Poller`](super::poller::Poller). A
//! per-session [`Session`] state machine reassembles [`Envelope`] frames
//! from partial reads ([`FrameReassembler`]), dispatches them through the
//! ordinary [`ClientHandler`], and queues the encoded reply in a bounded
//! per-session write buffer — when the buffer backs up past the
//! configured bound, that session's reads pause until the peer drains it
//! (backpressure, never unbounded queueing).
//!
//! The server side is untouched: the engine still drives blocking
//! [`TcpServerEndpoint`](super::tcp::TcpServerEndpoint)s (optionally
//! wrapped by [`FaultyEndpoint`](crate::faults::FaultyEndpoint)), and
//! completed uploads feed the existing canonical-order commit — so a mux
//! round is bit-identical to the threaded-TCP and in-process rounds; only
//! the pipe changed. Teardown follows the protocol's `Goodbye`
//! discipline: a session that receives `Goodbye` drains its write queue
//! before closing, and [`MuxFleet::join`] bounds the event-loop join with
//! a grace deadline plus a shutdown flag every loop polls, so a lost
//! goodbye can stall teardown by at most one poll interval past the
//! grace, never forever.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;

use crate::client::FlClient;
use crate::config::MuxOptions;
use crate::message::{parse_envelope_head, Envelope, EnvelopeHead, Wire, ENVELOPE_HEADER_LEN};
use crate::transport::poller::{Interest, PollEvent, Poller};
use crate::transport::ClientHandler;
use crate::{FlError, Result};

/// How long the event loops sleep between readiness checks when idle —
/// also the latency bound on noticing the shutdown flag.
const POLL_TIMEOUT: Duration = Duration::from_millis(50);

/// Default grace [`MuxFleet::join`] waits for sessions to finish
/// naturally before forcing the shutdown flag.
pub const DEFAULT_JOIN_GRACE: Duration = Duration::from_secs(30);

/// Incremental [`Envelope`] parser for nonblocking sockets: feed it byte
/// chunks as they arrive — any split, down to one byte at a time — and it
/// emits each envelope exactly once, however the header/payload
/// boundaries straddle the chunks. Validation (magic, kind tag, hostile
/// length prefixes) is [`parse_envelope_head`], the same decoder the
/// blocking reader uses, so both paths reject garbage identically.
#[derive(Debug, Default)]
pub struct FrameReassembler {
    header: [u8; ENVELOPE_HEADER_LEN],
    header_filled: usize,
    head: Option<EnvelopeHead>,
    payload: Vec<u8>,
    payload_filled: usize,
}

impl FrameReassembler {
    /// An empty reassembler, mid-frame nowhere.
    pub fn new() -> Self {
        FrameReassembler::default()
    }

    /// `true` while a partially received frame is buffered (EOF here
    /// means the peer died mid-envelope).
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0 || self.head.is_some()
    }

    /// Consumes one received chunk, appending every envelope it completes
    /// to `out` (possibly none, possibly several when frames coalesce).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Protocol`] on bad magic, an unknown kind or a
    /// hostile payload length — after which the stream is unframeable and
    /// the session must close.
    pub fn feed(&mut self, mut chunk: &[u8], out: &mut Vec<Envelope>) -> Result<()> {
        loop {
            match self.head {
                None => {
                    if chunk.is_empty() {
                        return Ok(());
                    }
                    let want = ENVELOPE_HEADER_LEN - self.header_filled;
                    let take = want.min(chunk.len());
                    self.header[self.header_filled..self.header_filled + take]
                        .copy_from_slice(&chunk[..take]);
                    self.header_filled += take;
                    chunk = &chunk[take..];
                    if self.header_filled == ENVELOPE_HEADER_LEN {
                        let head = parse_envelope_head(&self.header)?;
                        // This buffer becomes the envelope's owned payload
                        // (moved out below), not per-frame scratch churn.
                        self.payload = vec![0u8; head.payload_len];
                        self.payload_filled = 0;
                        self.head = Some(head);
                    }
                }
                Some(head) => {
                    if self.payload_filled < head.payload_len {
                        if chunk.is_empty() {
                            return Ok(());
                        }
                        let want = head.payload_len - self.payload_filled;
                        let take = want.min(chunk.len());
                        self.payload[self.payload_filled..self.payload_filled + take]
                            .copy_from_slice(&chunk[..take]);
                        self.payload_filled += take;
                        chunk = &chunk[take..];
                    }
                    // Completion is checked whether or not input remains:
                    // a zero-payload frame (Goodbye) whose header ends a
                    // chunk must be emitted *now*, not when the next
                    // chunk arrives — there may never be one.
                    if self.payload_filled == head.payload_len {
                        out.push(Envelope {
                            version: head.version,
                            kind: head.kind,
                            payload: std::mem::take(&mut self.payload),
                        });
                        self.head = None;
                        self.header_filled = 0;
                        self.payload_filled = 0;
                    }
                }
            }
        }
    }
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Handling requests.
    Serving,
    /// `Goodbye` received: flush the remaining write queue, then close.
    Draining,
}

/// What one [`Session::advance`] call concluded.
enum Advance {
    /// The session is still live; keep it registered.
    Live,
    /// The session completed (goodbye received and write queue drained).
    Finished,
}

/// One multiplexed client session: a nonblocking socket plus the state
/// to resume it at any byte boundary.
struct Session {
    stream: TcpStream,
    peer: String,
    handler: ClientHandler,
    rx: FrameReassembler,
    /// Queued reply bytes (encode scratch reused across frames).
    wbuf: BytesMut,
    /// How much of `wbuf` has already been written to the socket.
    wpos: usize,
    phase: Phase,
    /// The interest currently registered with the poller.
    interest: Interest,
    /// Completed frames parked between feed and dispatch (reused).
    frames: Vec<Envelope>,
}

impl Session {
    fn connect(addr: SocketAddr, client: FlClient) -> Result<Session> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| FlError::transport("connecting mux session to server", e))?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_owned());
        stream
            .set_nodelay(true)
            .map_err(|e| FlError::transport(format!("configuring mux socket to {peer}"), e))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| FlError::transport(format!("configuring mux socket to {peer}"), e))?;
        Ok(Session {
            stream,
            peer,
            handler: ClientHandler::new(client),
            rx: FrameReassembler::new(),
            wbuf: BytesMut::new(),
            wpos: 0,
            phase: Phase::Serving,
            interest: Interest::READ,
            frames: Vec::new(),
        })
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// The interest this session wants *now*: reads while serving and not
    /// backpressured, writes while reply bytes are queued.
    fn desired_interest(&self, write_bound: usize) -> Interest {
        Interest {
            readable: self.phase == Phase::Serving && self.pending_write() < write_bound,
            writable: self.pending_write() > 0,
        }
    }

    /// Writes queued bytes until the socket would block or the queue
    /// empties (then the scratch resets so its capacity is reused).
    fn flush(&mut self) -> Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf.as_slice()[self.wpos..]) {
                Ok(0) => {
                    return Err(FlError::disconnected(format!(
                        "mux peer {} stopped accepting bytes",
                        self.peer
                    )))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(FlError::transport(
                        format!("writing to mux peer {}", self.peer),
                        e,
                    ))
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(())
    }

    /// Drives the session as far as the socket allows: flush queued
    /// writes, then (while serving and under the write bound) read, parse
    /// and dispatch frames, queueing replies.
    ///
    /// # Errors
    ///
    /// Propagates pipe failures and framing violations; the caller
    /// retires the session, recording the error.
    fn advance(&mut self, chunk: &mut [u8], write_bound: usize) -> Result<Advance> {
        self.flush()?;
        while self.phase == Phase::Serving && self.pending_write() < write_bound {
            match self.stream.read(chunk) {
                Ok(0) => {
                    // EOF without a goodbye: the same disconnect error the
                    // threaded serve loop reports from its blocking recv.
                    return Err(FlError::disconnected(format!(
                        "mux peer {} closed mid-session",
                        self.peer
                    )));
                }
                Ok(n) => {
                    let mut frames = std::mem::take(&mut self.frames);
                    frames.clear();
                    let fed = self.rx.feed(&chunk[..n], &mut frames);
                    for envelope in frames.drain(..) {
                        match self.handler.handle(envelope) {
                            Some(reply) => reply.encode_into(&mut self.wbuf),
                            None => self.phase = Phase::Draining,
                        }
                    }
                    self.frames = frames;
                    fed?;
                    self.flush()?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(FlError::transport(
                        format!("reading from mux peer {}", self.peer),
                        e,
                    ))
                }
            }
        }
        if self.phase == Phase::Draining {
            self.flush()?;
            if self.pending_write() == 0 {
                return Ok(Advance::Finished);
            }
        }
        Ok(Advance::Live)
    }
}

/// What one event loop returns: the clients it served (trained state
/// included) plus the first session error it saw, if any.
struct LoopOutcome {
    clients: Vec<FlClient>,
    error: Option<FlError>,
}

/// One event-loop thread: connects its share of the fleet, registers
/// every socket, then polls readiness until all sessions finish (goodbye
/// received, queue drained) or the shutdown flag trips.
fn run_loop(
    addr: SocketAddr,
    fleet: Vec<FlClient>,
    read_chunk: usize,
    write_bound: usize,
    shutdown: Arc<AtomicBool>,
    early_error: Arc<Mutex<Option<FlError>>>,
) -> LoopOutcome {
    fn record(slot: &mut Option<FlError>, e: FlError) {
        slot.get_or_insert(e);
    }
    let mut outcome = LoopOutcome {
        clients: Vec::with_capacity(fleet.len()),
        error: None,
    };
    let mut poller = Poller::new();
    let mut sessions: Vec<Option<Session>> = Vec::with_capacity(fleet.len());
    for client in fleet {
        match Session::connect(addr, client) {
            Ok(session) => {
                let token = sessions.len();
                match poller.register(&session.stream, token, session.interest) {
                    Ok(()) => sessions.push(Some(session)),
                    Err(e) => {
                        outcome.clients.push(session.handler.into_client());
                        record(&mut outcome.error, e);
                    }
                }
            }
            Err(e) => {
                // Surface connect failures to the builder immediately —
                // its accept loop is waiting for this socket and must not
                // run out its deadline discovering the failure.
                let mut early = early_error.lock().expect("mux error slot poisoned");
                early.get_or_insert_with(|| FlError::Protocol {
                    reason: format!("mux session failed to connect: {e}"),
                });
                drop(early);
                record(&mut outcome.error, e);
            }
        }
    }
    let mut live = sessions.iter().filter(|s| s.is_some()).count();
    let mut chunk = vec![0u8; read_chunk.max(ENVELOPE_HEADER_LEN)];
    let mut events: Vec<PollEvent> = Vec::new();
    while live > 0 && !shutdown.load(Ordering::Relaxed) {
        if let Err(e) = poller.wait(&mut events, POLL_TIMEOUT) {
            record(&mut outcome.error, e);
            break;
        }
        for &PollEvent { token, .. } in &events {
            let Some(slot) = sessions.get_mut(token) else {
                continue;
            };
            let Some(session) = slot.as_mut() else {
                continue;
            };
            let advanced = session.advance(&mut chunk, write_bound);
            let finished = match &advanced {
                Ok(Advance::Live) => {
                    let want = session.desired_interest(write_bound);
                    if want != session.interest {
                        if let Err(e) = poller.modify(&session.stream, token, want) {
                            record(&mut outcome.error, e);
                            true
                        } else {
                            session.interest = want;
                            false
                        }
                    } else {
                        false
                    }
                }
                Ok(Advance::Finished) | Err(_) => true,
            };
            if let Err(e) = advanced {
                record(&mut outcome.error, e);
            }
            if finished {
                let session = slot.take().expect("session checked live above");
                if let Err(e) = poller.deregister(&session.stream, token) {
                    record(&mut outcome.error, e);
                }
                outcome.clients.push(session.handler.into_client());
                live -= 1;
                // The stream drops (closes) here.
            }
        }
    }
    // Forced shutdown (or a poller failure): retire whatever remains,
    // recording the cut-off unless a more specific error already did.
    for slot in &mut sessions {
        if let Some(session) = slot.take() {
            record(
                &mut outcome.error,
                FlError::disconnected(format!(
                    "mux session to {} cut off at event-loop shutdown",
                    session.peer
                )),
            );
            outcome.clients.push(session.handler.into_client());
        }
    }
    outcome
}

/// The client side of a multiplexed fleet: a handle over the event-loop
/// threads serving every session. Created by the federation builder for
/// [`TransportKind::TcpMux`](crate::config::TransportKind::TcpMux);
/// joined (with a grace bound) at teardown.
pub struct MuxFleet {
    handles: Vec<JoinHandle<LoopOutcome>>,
    shutdown: Arc<AtomicBool>,
    early_error: Arc<Mutex<Option<FlError>>>,
    loops: usize,
    sessions: usize,
}

impl std::fmt::Debug for MuxFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxFleet")
            .field("loops", &self.loops)
            .field("sessions", &self.sessions)
            .finish()
    }
}

impl MuxFleet {
    /// Spawns the event-loop pool and hands it the fleet: clients are
    /// dealt round-robin across [`MuxOptions::effective_loops`] threads,
    /// each of which connects its share to `addr` and starts polling. The
    /// server side accepts and handshakes those connections exactly as it
    /// would threaded ones.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for invalid options. Connect
    /// failures inside the loops surface through
    /// [`take_early_error`](Self::take_early_error) and
    /// [`join`](Self::join), not here.
    pub fn launch(
        addr: SocketAddr,
        fleet: Vec<FlClient>,
        options: &MuxOptions,
    ) -> Result<MuxFleet> {
        options.validate()?;
        let sessions = fleet.len();
        let loops = options.effective_loops().min(sessions.max(1));
        let mut per_loop: Vec<Vec<FlClient>> = (0..loops).map(|_| Vec::new()).collect();
        for (i, client) in fleet.into_iter().enumerate() {
            per_loop[i % loops].push(client);
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let early_error = Arc::new(Mutex::new(None));
        let read_chunk = options.read_chunk;
        let write_bound = options.write_bound;
        let handles = per_loop
            .into_iter()
            .map(|share| {
                let shutdown = shutdown.clone();
                let early_error = early_error.clone();
                std::thread::spawn(move || {
                    run_loop(addr, share, read_chunk, write_bound, shutdown, early_error)
                })
            })
            .collect();
        Ok(MuxFleet {
            handles,
            shutdown,
            early_error,
            loops,
            sessions,
        })
    }

    /// Event-loop threads serving this fleet.
    pub fn loops(&self) -> usize {
        self.loops
    }

    /// Sessions across all loops.
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Takes the first connect-time failure a loop reported, if any —
    /// polled by the builder while it waits for the fleet's connections,
    /// so a refused connect fails the build immediately instead of
    /// timing out the accept deadline.
    pub fn take_early_error(&self) -> Option<FlError> {
        self.early_error
            .lock()
            .expect("mux error slot poisoned")
            .take()
    }

    /// Joins the event loops with watchdog discipline: waits up to
    /// `grace` for every session to finish naturally (goodbye received,
    /// write queue drained), then trips the shutdown flag — which every
    /// loop checks at least once per poll interval — and joins the
    /// now-bounded threads. Returns the served clients, or the first
    /// session/loop error.
    ///
    /// # Errors
    ///
    /// Returns the first error any session or loop recorded, a cut-off
    /// disconnect for sessions that outlived the grace, or
    /// [`FlError::Protocol`] for a panicked loop thread.
    pub fn join(&mut self, grace: Duration) -> Result<Vec<FlClient>> {
        let deadline = Instant::now() + grace;
        while !self.handles.iter().all(JoinHandle::is_finished) {
            if Instant::now() >= deadline {
                self.shutdown.store(true, Ordering::Relaxed);
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut clients = Vec::with_capacity(self.sessions);
        let mut first_err = self.take_early_error();
        for handle in self.handles.drain(..) {
            match handle.join() {
                Ok(mut outcome) => {
                    clients.append(&mut outcome.clients);
                    if let Some(e) = outcome.error {
                        first_err.get_or_insert(e);
                    }
                }
                Err(_) => {
                    first_err.get_or_insert(FlError::Protocol {
                        reason: "mux event-loop thread panicked".to_owned(),
                    });
                }
            }
        }
        match first_err {
            None => Ok(clients),
            Some(e) => Err(e),
        }
    }
}

impl Drop for MuxFleet {
    fn drop(&mut self) {
        // Best effort on abnormal paths: force the loops down and reap
        // them so no event-loop thread outlives the federation.
        if !self.handles.is_empty() {
            self.shutdown.store(true, Ordering::Relaxed);
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DeviceProfile;
    use crate::message::{encode, Hello, MessageKind};
    use crate::trainer::PlainSgdTrainer;
    use gradsec_data::SyntheticCifar100;
    use gradsec_nn::zoo;
    use std::sync::Arc;

    fn fl_client(id: u64) -> FlClient {
        let ds = Arc::new(SyntheticCifar100::with_classes(16, 2, 1));
        FlClient::new(
            id,
            DeviceProfile::trustzone(id),
            ds,
            (0..16).collect(),
            zoo::tiny_mlp(3 * 32 * 32, 4, 2, 1).unwrap(),
            Box::new(PlainSgdTrainer),
        )
    }

    fn hello_frame() -> (Envelope, Vec<u8>) {
        let envelope = Envelope::pack(MessageKind::Hello, &Hello::current());
        let bytes = encode(&envelope);
        (envelope, bytes)
    }

    #[test]
    fn reassembler_handles_one_byte_feeds() {
        let (envelope, bytes) = hello_frame();
        let mut rx = FrameReassembler::new();
        let mut out = Vec::new();
        for b in &bytes {
            rx.feed(std::slice::from_ref(b), &mut out).unwrap();
        }
        assert_eq!(out, vec![envelope]);
        assert!(!rx.mid_frame());
    }

    #[test]
    fn reassembler_handles_coalesced_frames() {
        let (envelope, bytes) = hello_frame();
        let goodbye = Envelope::control(MessageKind::Goodbye);
        let mut wire = bytes.clone();
        wire.extend_from_slice(&encode(&goodbye));
        wire.extend_from_slice(&bytes[..5]); // trailing partial header
        let mut rx = FrameReassembler::new();
        let mut out = Vec::new();
        rx.feed(&wire, &mut out).unwrap();
        assert_eq!(out, vec![envelope, goodbye]);
        assert!(rx.mid_frame());
    }

    #[test]
    fn reassembler_rejects_bad_magic() {
        let mut rx = FrameReassembler::new();
        let mut out = Vec::new();
        let err = rx.feed(&[0u8; ENVELOPE_HEADER_LEN], &mut out).unwrap_err();
        assert!(matches!(err, FlError::Protocol { .. }), "{err:?}");
    }

    #[test]
    fn fleet_serves_a_handshake_and_goodbye() {
        use crate::transport::{tcp, RemoteClient};
        let listener = tcp::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut fleet = MuxFleet::launch(
            addr,
            vec![fl_client(3), fl_client(8)],
            &MuxOptions::default(),
        )
        .unwrap();
        let mut remotes: Vec<RemoteClient> = (0..2)
            .map(|_| {
                let endpoint = listener.accept().unwrap();
                RemoteClient::connect(Box::new(endpoint)).unwrap()
            })
            .collect();
        remotes.sort_by_key(RemoteClient::id);
        assert_eq!(remotes[0].id(), 3);
        assert_eq!(remotes[1].id(), 8);
        for mut remote in remotes {
            remote.goodbye().unwrap();
        }
        let mut clients = fleet.join(DEFAULT_JOIN_GRACE).unwrap();
        clients.sort_by_key(FlClient::id);
        assert_eq!(clients.len(), 2);
        assert_eq!(clients[0].id(), 3);
    }

    #[test]
    fn join_bounds_a_lost_goodbye() {
        use crate::transport::tcp;
        let listener = tcp::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut fleet = MuxFleet::launch(addr, vec![fl_client(1)], &MuxOptions::default()).unwrap();
        // Accept but never say goodbye, and keep the endpoint alive so the
        // session cannot even observe a close.
        let endpoint = listener.accept().unwrap();
        let start = Instant::now();
        let err = fleet.join(Duration::from_millis(200)).unwrap_err();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "join was not bounded"
        );
        assert!(matches!(err, FlError::Transport { .. }), "{err:?}");
        drop(endpoint);
    }

    #[test]
    fn connect_failure_surfaces_as_early_error() {
        // A listener that is bound and immediately dropped leaves a port
        // that refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut fleet = MuxFleet::launch(addr, vec![fl_client(1)], &MuxOptions::default()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let early = loop {
            if let Some(e) = fleet.take_early_error() {
                break e;
            }
            assert!(Instant::now() < deadline, "connect failure never surfaced");
            std::thread::sleep(Duration::from_millis(2));
        };
        assert!(matches!(early, FlError::Protocol { .. }), "{early:?}");
        assert!(fleet.join(Duration::from_secs(5)).is_err());
    }
}
